//! End-to-end integration of the whole workspace: benchmark generation →
//! mapping → placement → library expansion → traditional vs aware corner
//! sign-off (the paper's Table 2 experiment in miniature).

use svt::core::{SignoffFlow, SignoffOptions, VariationBudget};
use svt::litho::Process;
use svt::netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt::place::{place, PlacementOptions};
use svt::stdcell::{expand_library, ExpandOptions, ExpandedLibrary, Library};

fn expanded_library(library: &Library) -> ExpandedLibrary {
    let sim = Process::nm90().simulator();
    expand_library(library, &sim, &ExpandOptions::fast()).expect("expansion succeeds")
}

#[test]
fn aware_signoff_reduces_uncertainty_in_the_paper_band() {
    let library = Library::svt90();
    let expanded = expanded_library(&library);
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    let placement = place(&mapped, &library, &PlacementOptions::default()).expect("placement");

    let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
    let cmp = flow.run(&mapped, &placement).expect("flow succeeds");

    // Corner ordering holds in both methodologies.
    assert!(cmp.traditional.bc_ns < cmp.traditional.nom_ns);
    assert!(cmp.traditional.nom_ns < cmp.traditional.wc_ns);
    assert!(cmp.aware.bc_ns <= cmp.aware.nom_ns);
    assert!(cmp.aware.nom_ns <= cmp.aware.wc_ns);
    // The aware WC never exceeds the traditional WC and the aware BC never
    // undershoots the traditional BC: systematics only remove pessimism.
    assert!(cmp.aware.wc_ns <= cmp.traditional.wc_ns + 1e-9);
    assert!(cmp.aware.bc_ns >= cmp.traditional.bc_ns - 1e-9);
    // Headline metric in a plausible neighborhood of the paper's 28–40%.
    let reduction = cmp.uncertainty_reduction_pct();
    assert!(
        (20.0..60.0).contains(&reduction),
        "uncertainty reduction {reduction}%"
    );
}

#[test]
fn zero_systematic_budget_makes_both_methodologies_agree() {
    let library = Library::svt90();
    let expanded = expanded_library(&library);
    let netlist = generate_benchmark(&BenchmarkProfile::custom("z", 5, 2, 20, 3));
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    let placement = place(&mapped, &library, &PlacementOptions::default()).expect("placement");

    let flow = SignoffFlow::new(
        &library,
        &expanded,
        SignoffOptions {
            budget: VariationBudget::new(0.15, 0.0, 0.0),
            use_context_library: false,
            ..SignoffOptions::default()
        },
    );
    let cmp = flow.run(&mapped, &placement).expect("flow succeeds");
    // With no systematic share the aware corners keep the full ±Δ
    // excursion; the only remaining difference from the traditional flow
    // is that corners are taken around the (slightly non-nominal)
    // library-OPC printed CDs, so the spread reduction nearly vanishes.
    assert!(
        cmp.uncertainty_reduction_pct().abs() < 10.0,
        "zero systematic budget should not tighten corners, got {:.1}%",
        cmp.uncertainty_reduction_pct()
    );
}

#[test]
fn full_context_flow_beats_or_matches_the_simplified_flow() {
    let library = Library::svt90();
    let expanded = expanded_library(&library);
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    let placement = place(&mapped, &library, &PlacementOptions::default()).expect("placement");

    let run = |use_context| {
        SignoffFlow::new(
            &library,
            &expanded,
            SignoffOptions {
                use_context_library: use_context,
                ..SignoffOptions::default()
            },
        )
        .run(&mapped, &placement)
        .expect("flow succeeds")
    };
    let full = run(true);
    let simple = run(false);
    // Both tighten; the nominal timing differs because the full flow knows
    // each instance's true printed CDs.
    assert!(full.uncertainty_reduction_pct() > 15.0);
    assert!(simple.uncertainty_reduction_pct() > 15.0);
    assert!(
        (full.aware.nom_ns - simple.aware.nom_ns).abs() > 1e-6,
        "context must influence nominal timing"
    );
}

#[test]
fn placement_seed_changes_contexts_but_not_traditional_timing() {
    let library = Library::svt90();
    let expanded = expanded_library(&library);
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());

    let run_with_seed = |seed| {
        let placement = place(
            &mapped,
            &library,
            &PlacementOptions {
                seed,
                ..PlacementOptions::default()
            },
        )
        .expect("placement");
        flow.run(&mapped, &placement).expect("flow succeeds")
    };
    let a = run_with_seed(1);
    let b = run_with_seed(42);
    // Traditional corners are placement-blind.
    assert!((a.traditional.wc_ns - b.traditional.wc_ns).abs() < 1e-12);
    // The aware flow sees the different whitespace.
    assert!(
        (a.aware.nom_ns - b.aware.nom_ns).abs() > 1e-9,
        "different placements should give different in-context timing"
    );
}
