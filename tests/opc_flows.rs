//! Integration of the two chip-scale OPC flows (full-chip vs
//! library-assembled) and their audit machinery — the substrate of the
//! paper's Table 1 and Fig. 7.

use svt::core::{compare_opc_flows, FullChipOpc, LibraryAssembledOpc};
use svt::litho::Process;
use svt::netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt::opc::OpcOptions;
use svt::place::{place, PlacementOptions};
use svt::stdcell::Library;

fn tiny_design() -> (Library, svt::netlist::MappedNetlist, svt::place::Placement) {
    let library = Library::svt90();
    let netlist = generate_benchmark(&BenchmarkProfile::custom("tiny", 6, 3, 20, 11));
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    let placement = place(&mapped, &library, &PlacementOptions::default()).expect("placement");
    (library, mapped, placement)
}

#[test]
fn both_flows_print_every_device_and_stay_close() {
    let (library, mapped, placement) = tiny_design();
    let sim = Process::nm90().simulator();

    let full = FullChipOpc::new(&sim, OpcOptions::default())
        .run(&mapped, &placement, &library)
        .expect("full-chip OPC succeeds");
    let assembler = LibraryAssembledOpc::new(&sim, OpcOptions::default());
    let (masks, _) = assembler
        .correct_masters(&mapped, &library)
        .expect("master correction succeeds");
    let lib_flow = assembler
        .run(&mapped, &placement, &library, &masks)
        .expect("assembled audit succeeds");

    assert_eq!(full.devices.len(), lib_flow.devices.len());
    assert!(full.devices.iter().all(|d| d.printed_cd_nm.is_some()));
    assert!(lib_flow.devices.iter().all(|d| d.printed_cd_nm.is_some()));

    let cmp = compare_opc_flows(&full, &lib_flow).expect("comparable");
    assert_eq!(cmp.total, full.devices.len());
    // Table 1 shape: nearly everything within 6%.
    assert!(
        cmp.pct_within(cmp.within_6pct) > 90.0,
        "N-6% = {:.1}%",
        cmp.pct_within(cmp.within_6pct)
    );
}

#[test]
fn post_opc_errors_are_bounded_and_centered() {
    let (library, mapped, placement) = tiny_design();
    let sim = Process::nm90().simulator();
    let full = FullChipOpc::new(&sim, OpcOptions::default())
        .run(&mapped, &placement, &library)
        .expect("full-chip OPC succeeds");
    let errors = full.percent_errors(90.0);
    assert_eq!(errors.len(), full.devices.len());
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let worst = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
    assert!(mean.abs() < 6.0, "post-OPC mean bias {mean:.2}%");
    assert!(worst < 25.0, "post-OPC worst error {worst:.2}%");
}

#[test]
fn master_masks_cover_every_used_cell_and_region() {
    let (library, mapped, _) = tiny_design();
    let sim = Process::nm90().simulator();
    let assembler = LibraryAssembledOpc::new(&sim, OpcOptions::default());
    let (masks, _) = assembler
        .correct_masters(&mapped, &library)
        .expect("master correction succeeds");
    for inst in mapped.instances() {
        let cell = library.cell(&inst.cell).expect("cell exists");
        for region in [svt::stdcell::Region::P, svt::stdcell::Region::N] {
            let widths = masks
                .get(&(inst.cell.clone(), region))
                .unwrap_or_else(|| panic!("no mask for {} {region:?}", inst.cell));
            assert_eq!(
                widths.len(),
                cell.layout().row_spans(region).len(),
                "mask width count mismatch for {}",
                inst.cell
            );
            for &w in widths {
                assert!((40.0..=160.0).contains(&w), "implausible mask width {w}");
            }
        }
    }
}

#[test]
fn flow_comparison_rejects_mismatched_results() {
    let (library, mapped, placement) = tiny_design();
    let sim = Process::nm90().simulator();
    let full = FullChipOpc::new(&sim, OpcOptions::default())
        .run(&mapped, &placement, &library)
        .expect("full-chip OPC succeeds");
    let mut truncated = full.clone();
    truncated.devices.pop();
    assert!(compare_opc_flows(&full, &truncated).is_err());
}
