//! Round trips through the workspace's three text formats on realistic
//! (benchmark-scale) data: `.bench` netlists, DEF-flavoured placements,
//! and Liberty-flavoured timing libraries.

use svt::litho::Process;
use svt::netlist::{bench, generate_benchmark, technology_map, BenchmarkProfile};
use svt::place::{def, place, PlacementOptions};
use svt::stdcell::{expand_library, liberty, CellContext, ExpandOptions, Library};

#[test]
fn bench_format_round_trips_a_generated_benchmark() {
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c880").expect("profile"));
    let text = bench::write(&netlist);
    let parsed = bench::parse(&text).expect("parse succeeds");
    assert_eq!(parsed, netlist);
    // The serialized form is line-oriented and carries every gate.
    assert!(text.lines().count() >= netlist.gates().len());
}

#[test]
fn def_format_round_trips_a_placement() {
    let library = Library::svt90();
    let netlist = generate_benchmark(&BenchmarkProfile::iscas85("c432").expect("profile"));
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    let placement = place(&mapped, &library, &PlacementOptions::default()).expect("placement");
    let text = def::write(&placement, &mapped);
    let parsed = def::parse(&text, &mapped).expect("parse succeeds");
    assert_eq!(parsed, placement);
    // And the parsed placement still answers context queries identically.
    let a = placement
        .instance_contexts(&mapped, &library)
        .expect("contexts");
    let b = parsed
        .instance_contexts(&mapped, &library)
        .expect("contexts");
    assert_eq!(a, b);
}

#[test]
fn liberty_round_trips_an_expanded_library_slice() {
    let library = Library::svt90();
    let sim = Process::nm90().simulator();
    let expanded =
        expand_library(&library, &sim, &ExpandOptions::fast()).expect("expansion succeeds");

    // Take one full cell's worth of variants (81 entries).
    let cells: Vec<_> = CellContext::enumerate()
        .map(|ctx| {
            expanded
                .variant("NAND2X1", ctx)
                .expect("variant exists")
                .clone()
        })
        .collect();
    assert_eq!(cells.len(), 81);
    let text = liberty::write_library("svt90_nand2_expanded", &cells);
    let (name, parsed) = liberty::parse_library(&text).expect("parse succeeds");
    assert_eq!(name, "svt90_nand2_expanded");
    assert_eq!(parsed, cells);
    // Spot-check that a characterized lookup survives the trip bit-exactly.
    let before = cells[40].arcs[0].delay.lookup(0.07, 0.02);
    let after = parsed[40].arcs[0].delay.lookup(0.07, 0.02);
    assert_eq!(before, after);
}

#[test]
fn formats_reject_cross_contamination() {
    let library = Library::svt90();
    let netlist = generate_benchmark(&BenchmarkProfile::custom("x", 4, 2, 10, 5));
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    // Liberty text is not a bench netlist.
    let lib_text = liberty::write_library("l", &[]);
    assert!(bench::parse(&lib_text).is_err());
    // Bench text is not DEF.
    let bench_text = bench::write(&netlist);
    assert!(def::parse(&bench_text, &mapped).is_err());
}
