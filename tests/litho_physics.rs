//! Cross-crate physical invariants of the lithography + OPC substrate —
//! the behaviours the paper's methodology is premised on.

use svt::litho::{bossung, pitch_sweep, FocusExposureMatrix, Process};
use svt::opc::{insert_srafs, CutlinePattern, ModelOpc, OpcLine, OpcOptions, SrafOptions};

#[test]
fn calibrated_process_prints_the_dense_anchor_to_size() {
    let sim = Process::nm90()
        .simulator()
        .calibrated_to(90.0, 240.0)
        .expect("calibration succeeds");
    let cd = sim
        .print_line_array(90.0, 240.0, 0.0, 1.0)
        .expect("anchor prints");
    assert!((cd - 90.0).abs() < 0.05, "anchor CD {cd}");
}

#[test]
fn through_pitch_variation_has_a_radius_of_influence() {
    let sim = Process::nm90().simulator();
    let near: Vec<f64> = (0..6).map(|i| 240.0 + 60.0 * i as f64).collect();
    let far: Vec<f64> = (0..4).map(|i| 800.0 + 150.0 * i as f64).collect();
    let near_curve = pitch_sweep(&sim, 90.0, &near, 0.0, 1.0).expect("sweep succeeds");
    let far_curve = pitch_sweep(&sim, 90.0, &far, 0.0, 1.0).expect("sweep succeeds");
    assert!(
        near_curve.cd_range() > 2.0 * far_curve.cd_range(),
        "inside-ROI range {:.2} should dwarf outside-ROI range {:.2}",
        near_curve.cd_range(),
        far_curve.cd_range()
    );
}

#[test]
fn dense_smiles_and_iso_frowns_through_focus() {
    let sim = Process::nm90().simulator();
    let focus: Vec<f64> = (-4..=4).map(|i| i as f64 * 75.0).collect();
    let dense = bossung(&sim, 90.0, Some(240.0), &focus, &[1.0]).expect("dense bossung");
    let iso = bossung(&sim, 90.0, None, &focus, &[1.0]).expect("iso bossung");
    assert!(dense.curves[0].is_smiling(), "dense must smile");
    assert!(!iso.curves[0].is_smiling(), "iso must frown");
}

#[test]
fn fem_and_methodology_agree_on_the_focus_dichotomy() {
    let sim = Process::nm90().simulator();
    let focus: Vec<f64> = (-3..=3).map(|i| i as f64 * 100.0).collect();
    let fem = FocusExposureMatrix::build(&sim, 90.0, &[240.0, f64::INFINITY], &focus, &[1.0])
        .expect("FEM builds");
    assert_eq!(fem.smiles_at(240.0), Some(true));
    assert_eq!(fem.smiles_at(f64::INFINITY), Some(false));
    assert!(fem.lvar_focus() > 1.0);
}

#[test]
fn opc_then_srafs_stabilize_an_isolated_gate() {
    let sim = Process::nm90().simulator();
    let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());

    let mut pattern = CutlinePattern::new(-2048.0, 4096.0);
    pattern.push(OpcLine::gate(0.0, 90.0));
    insert_srafs(&mut pattern, SrafOptions::default());
    opc.correct(&mut pattern).expect("correction succeeds");

    // After OPC the gate prints near target at focus…
    let at_focus = sim
        .print_device_cd(
            pattern.x0(),
            pattern.length(),
            &pattern.chrome(),
            0.0,
            0.0,
            1.0,
        )
        .expect("prints at focus");
    assert!((at_focus - 90.0).abs() < 6.0, "post-OPC CD {at_focus}");
    // …and the assisted gate survives a 250 nm defocus without washing out.
    let defocused = sim
        .print_device_cd(
            pattern.x0(),
            pattern.length(),
            &pattern.chrome(),
            0.0,
            250.0,
            1.0,
        )
        .expect("prints through focus");
    assert!(defocused > 40.0, "defocused CD {defocused}");
}

#[test]
fn dose_moves_cd_monotonically_everywhere() {
    let sim = Process::nm90().simulator();
    for pitch in [240.0, 360.0, 600.0] {
        let mut last = f64::INFINITY;
        for dose in [0.92, 1.0, 1.08] {
            let cd = sim
                .print_line_array(90.0, pitch, 0.0, dose)
                .expect("prints");
            assert!(cd < last, "dose must shrink lines at pitch {pitch}");
            last = cd;
        }
    }
}
