//! Property-based tests over the workspace's core data structures and
//! invariants.

use proptest::prelude::*;

use svt::core::{classify_device, label_arc, ArcLabelPolicy, DeviceClass, VariationBudget};
use svt::geom::{Interval, IntervalIndex, Nm};
use svt::litho::{fft, Complex, MaskCutline};
use svt::netlist::{bench, generate_benchmark, technology_map, BenchmarkProfile};
use svt::stdcell::Library;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT forward→inverse is the identity on arbitrary signals.
    #[test]
    fn fft_round_trips(values in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..200)) {
        let n = values.len().next_power_of_two();
        let mut data: Vec<Complex> = values.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        data.resize(n, Complex::ZERO);
        let original = data.clone();
        fft::forward(&mut data);
        fft::inverse(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    /// Parseval: the FFT preserves signal energy (up to the 1/N convention).
    #[test]
    fn fft_preserves_energy(values in prop::collection::vec(-10.0f64..10.0, 1..100)) {
        let n = values.len().next_power_of_two();
        let mut data: Vec<Complex> = values.iter().map(|&re| Complex::from(re)).collect();
        data.resize(n, Complex::ZERO);
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        fft::forward(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    /// Interval intersection is commutative and contained in both inputs.
    #[test]
    fn interval_intersection_properties(
        a_lo in -10_000i64..10_000, a_len in 0i64..5_000,
        b_lo in -10_000i64..10_000, b_len in 0i64..5_000,
    ) {
        let a = Interval::new(Nm(a_lo), Nm(a_lo + a_len));
        let b = Interval::new(Nm(b_lo), Nm(b_lo + b_len));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.lo() >= a.lo() && i.hi() <= a.hi());
            prop_assert!(i.lo() >= b.lo() && i.hi() <= b.hi());
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
            prop_assert!(a.gap_to(&b).is_some());
        }
    }

    /// Nearest-neighbor queries agree with a brute-force scan.
    #[test]
    fn interval_index_matches_brute_force(
        starts in prop::collection::vec(0i64..20_000, 1..40),
        query_lo in 0i64..20_000,
    ) {
        let intervals: Vec<Interval> =
            starts.iter().map(|&s| Interval::new(Nm(s), Nm(s + 90))).collect();
        let index: IntervalIndex = intervals.iter().copied().collect();
        let query = Interval::new(Nm(query_lo), Nm(query_lo + 90));
        let brute_left = intervals
            .iter()
            .enumerate()
            .filter_map(|(i, iv)| {
                iv.gap_to(&query)
                    .filter(|_| iv.hi() < query.lo())
                    .map(|g| (g, i))
            })
            .min_by_key(|&(g, _)| g);
        let got = index.nearest_left(&query);
        prop_assert_eq!(got.map(|e| e.gap), brute_left.map(|(g, _)| g));
    }

    /// NLDM interpolation stays within the convex hull of its cell corners
    /// inside the grid.
    #[test]
    fn nldm_interpolation_is_bounded(
        slew in 0.008f64..0.8,
        load in 0.0005f64..0.1,
    ) {
        let lib = Library::svt90();
        let arc = &lib.cell("NAND2X1").unwrap().arcs()[0];
        let table = &arc.delay;
        let v = table.lookup(slew, load);
        let min = table.values().iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
        let max = table.max_value();
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12, "{v} outside [{min}, {max}]");
    }

    /// Table scaling commutes with lookup.
    #[test]
    fn nldm_scaling_commutes(
        factor in 0.5f64..2.0,
        slew in 0.01f64..0.6,
        load in 0.001f64..0.08,
    ) {
        let lib = Library::svt90();
        let table = &lib.cell("INVX1").unwrap().arcs()[0].delay;
        let a = table.scaled(factor).lookup(slew, load);
        let b = table.lookup(slew, load) * factor;
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// Generated benchmarks of arbitrary size are valid, map onto the
    /// library, and round-trip through the bench format.
    #[test]
    fn generated_netlists_are_valid_and_mappable(
        inputs in 2usize..12,
        gates in 4usize..60,
        seed in 0u64..1000,
    ) {
        let outputs = 1 + gates / 10;
        let profile = BenchmarkProfile::custom("p", inputs, outputs.min(gates), gates, seed);
        let netlist = generate_benchmark(&profile);
        prop_assert_eq!(netlist.gates().len(), gates);
        let text = bench::write(&netlist);
        prop_assert_eq!(bench::parse(&text).expect("round trip"), netlist.clone());
        let lib = Library::svt90();
        let mapped = technology_map(&netlist, &lib).expect("mappable");
        prop_assert!(mapped.instances().len() >= gates);
    }

    /// Aware corners never widen the traditional spread and preserve
    /// BC ≤ nom ≤ WC for any budget and label.
    #[test]
    fn aware_corners_only_remove_pessimism(
        delta in 0.01f64..0.3,
        pitch_share in 0.0f64..0.5,
        focus_share in 0.0f64..0.5,
        l_nom in 60.0f64..130.0,
        label_idx in 0usize..3,
    ) {
        use svt::core::ArcLabel;
        let budget = VariationBudget::new(delta, pitch_share, focus_share);
        let label = [ArcLabel::Smile, ArcLabel::Frown, ArcLabel::SelfCompensated][label_idx];
        let aware = budget.aware_corners(l_nom, label);
        let trad = budget.traditional_corners(l_nom);
        prop_assert!(aware.spread_nm() <= trad.spread_nm() + 1e-12);
        prop_assert!(aware.bc_nm <= aware.nom_nm + 1e-12);
        prop_assert!(aware.nom_nm <= aware.wc_nm + 1e-12);
    }

    /// Device classification is symmetric in its two sides.
    #[test]
    fn classification_is_symmetric(
        left in prop::option::of(0.0f64..1000.0),
        right in prop::option::of(0.0f64..1000.0),
    ) {
        let a = classify_device(left, right, 300.0, 90.0);
        let b = classify_device(right, left, 300.0, 90.0);
        prop_assert_eq!(a, b);
    }

    /// Arc labels are permutation-invariant.
    #[test]
    fn arc_labels_are_permutation_invariant(
        mut classes in prop::collection::vec(0usize..3, 1..8),
        swap_a in 0usize..8,
        swap_b in 0usize..8,
    ) {
        let to_class = |i: usize| [DeviceClass::Dense, DeviceClass::Isolated, DeviceClass::SelfCompensated][i];
        let original: Vec<DeviceClass> = classes.iter().map(|&i| to_class(i)).collect();
        let before = label_arc(&original, ArcLabelPolicy::Majority);
        let n = classes.len();
        classes.swap(swap_a % n, swap_b % n);
        let permuted: Vec<DeviceClass> = classes.iter().map(|&i| to_class(i)).collect();
        prop_assert_eq!(before, label_arc(&permuted, ArcLabelPolicy::Majority));
    }

    /// Mask sampling conserves chrome area for non-overlapping lines.
    #[test]
    fn mask_conserves_chrome_area(
        widths in prop::collection::vec(10.0f64..150.0, 1..8),
        spaces in prop::collection::vec(60.0f64..500.0, 8),
    ) {
        let mut lines = Vec::new();
        let mut x = -900.0;
        for (w, s) in widths.iter().zip(&spaces) {
            lines.push((x, x + w));
            x += w + s;
        }
        prop_assume!(x < 900.0);
        let mask = MaskCutline::from_lines(-2048.0, 4096.0, 2.0, &lines).expect("valid mask");
        let opaque: f64 = mask.samples().iter().map(|t| (1.0 - t) * mask.dx()).sum();
        let drawn: f64 = widths.iter().sum();
        prop_assert!((opaque - drawn).abs() < 1e-6, "{opaque} vs {drawn}");
    }
}
