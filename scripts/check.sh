#!/usr/bin/env bash
# Repo gate: formatting, lints, offline build, and the full test suite.
# Everything must pass before a commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build + root-package tests"
cargo build --release --offline
cargo test -q --offline

echo "== full workspace tests"
cargo test --workspace -q --offline

# The svt packages only — vendor/ stand-ins are out of scope for the
# documentation gate.
SVT_PKGS=(-p svt -p svt-geom -p svt-litho -p svt-opc -p svt-stdcell
          -p svt-netlist -p svt-place -p svt-sta -p svt-core -p svt-exec
          -p svt-obs -p svt-eco -p svt-bench -p svt-serve -p svt-snap)

echo "== documentation: runnable doctests"
cargo test -q --doc --offline "${SVT_PKGS[@]}"

echo "== documentation: warning-clean rustdoc"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline "${SVT_PKGS[@]}"

echo "== observability: SVT_TRACE=off overhead smoke gate"
SVT_TRACE=off cargo test --release -q -p svt-obs --offline --test overhead

echo "== perf trajectory: warm-path regression gate"
bash scripts/bench_compare.sh

echo "All checks passed."
