#!/usr/bin/env bash
# Compares, per metric, the two newest BENCH_history.jsonl entries that
# carry that metric, and fails on a >20 % regression of any warm-path
# metric. Entries are heterogeneous — bench_pipeline and bench_eco append
# different key sets — so each metric is diffed against the last line
# that actually contains it, not just the last line of the file. With
# fewer than two entries carrying a metric there is nothing to compare
# and the metric is skipped. Run `cargo run --release -p svt-bench --bin
# bench_pipeline` (and `--bin bench_eco`) to append entries.
set -euo pipefail
cd "$(dirname "$0")/.."

HISTORY="BENCH_history.jsonl"
THRESHOLD_PCT="${BENCH_REGRESSION_PCT:-20}"

if [[ ! -f "$HISTORY" ]]; then
    echo "bench_compare: no $HISTORY yet — skipping (run bench_pipeline to start the trajectory)"
    exit 0
fi

# Extracts a numeric field from a flat single-line JSON object.
field() { # field <json-line> <key>
    printf '%s\n' "$1" | sed -n "s/.*\"$2\": *\([0-9.][0-9.]*\).*/\1/p"
}

# Warm-path metrics gated against regression. Cold numbers and the
# overhead percentage are informational only (cold timing is dominated by
# first-touch effects; the off-path overhead has its own gate in
# crates/obs/tests/overhead.rs). eco_incr_ms is the incremental ECO
# apply latency — the svt-eco value proposition — so it is gated too;
# eco_full_ms varies with how much litho cache the edit invalidates and
# stays informational. signoff_alloc_mb is the heap traffic of one warm
# sign-off — near-deterministic, so an allocation regression is gated
# like a time regression; peak_rss_mb depends on allocator reuse across
# the whole process and stays informational.
# snapshot_restore_ms / snapshot_size_mb come from bench_snapshot: the
# warm-start restore latency and the container footprint — both regress
# like time metrics (bigger is worse), so both are gated.
metrics=(aerial_warm_ms expand_8t_warm_ms fem_warm_ms signoff_8t_ms eco_incr_ms signoff_alloc_mb signoff_100k_ms serve_p99_ms snapshot_restore_ms snapshot_size_mb)

# Throughput metrics gate in the opposite direction: a >20 % *drop* is
# the regression. bench_serve appends serve_rps (keep-alive read
# throughput under a concurrent ECO writer).
inverse_metrics=(serve_rps)

status=0
for m in "${metrics[@]}"; do
    # `|| true`: grep exits 1 when no entry carries the metric yet, which
    # must read as "skip" below, not abort the whole gate under pipefail.
    prev=$(grep "\"$m\":" "$HISTORY" | tail -n 2 | head -n 1 || true)
    latest=$(grep "\"$m\":" "$HISTORY" | tail -n 1 || true)
    if [[ -z "$prev" || -z "$latest" || "$prev" == "$latest" ]]; then
        echo "bench_compare: fewer than two entries carry $m — nothing to compare"
        continue
    fi
    p=$(field "$prev" "$m")
    l=$(field "$latest" "$m")
    if [[ -z "$p" || -z "$l" ]]; then
        echo "bench_compare: $m missing from an entry — skipping it"
        continue
    fi
    # Regression % = 100 * (latest - prev) / prev, via awk (no bc offline).
    regression=$(awk -v p="$p" -v l="$l" 'BEGIN { printf "%.1f", 100 * (l - p) / p }')
    over=$(awk -v r="$regression" -v t="$THRESHOLD_PCT" 'BEGIN { print (r > t) ? 1 : 0 }')
    if [[ "$over" == 1 ]]; then
        echo "bench_compare: REGRESSION $m: $p -> $l (+$regression% > ${THRESHOLD_PCT}%)"
        status=1
    else
        echo "bench_compare: ok $m: $p -> $l ($regression%)"
    fi
done

for m in "${inverse_metrics[@]}"; do
    prev=$(grep "\"$m\":" "$HISTORY" | tail -n 2 | head -n 1 || true)
    latest=$(grep "\"$m\":" "$HISTORY" | tail -n 1 || true)
    if [[ -z "$prev" || -z "$latest" || "$prev" == "$latest" ]]; then
        echo "bench_compare: fewer than two entries carry $m — nothing to compare"
        continue
    fi
    p=$(field "$prev" "$m")
    l=$(field "$latest" "$m")
    if [[ -z "$p" || -z "$l" ]]; then
        echo "bench_compare: $m missing from an entry — skipping it"
        continue
    fi
    # Drop % = 100 * (prev - latest) / prev: positive means throughput fell.
    drop=$(awk -v p="$p" -v l="$l" 'BEGIN { printf "%.1f", 100 * (p - l) / p }')
    over=$(awk -v r="$drop" -v t="$THRESHOLD_PCT" 'BEGIN { print (r > t) ? 1 : 0 }')
    if [[ "$over" == 1 ]]; then
        echo "bench_compare: REGRESSION $m: $p -> $l (-$drop% > ${THRESHOLD_PCT}% drop)"
        status=1
    else
        echo "bench_compare: ok $m: $p -> $l (${drop}% drop)"
    fi
done

# Absolute-threshold metrics: gated on the latest value alone, not the
# delta. profile_overhead_pct (bench_pipeline section 7) is what the
# always-on continuous profiler + TSDB sampler add on top of summary
# tracing; its healthy baseline is ~0 %, so a relative gate would trip on
# pure timer noise — instead the latest measurement simply must stay
# under an absolute ceiling. The value can be slightly negative (noise),
# hence the sign-aware extraction.
PROFILE_OVERHEAD_CEILING_PCT="${BENCH_PROFILE_OVERHEAD_PCT:-15}"
latest=$(grep '"profile_overhead_pct":' "$HISTORY" | tail -n 1 || true)
if [[ -z "$latest" ]]; then
    echo "bench_compare: no entry carries profile_overhead_pct yet — nothing to gate"
else
    v=$(printf '%s\n' "$latest" | sed -n 's/.*"profile_overhead_pct": *\(-\{0,1\}[0-9.][0-9.]*\).*/\1/p')
    if [[ -z "$v" ]]; then
        echo "bench_compare: profile_overhead_pct malformed in latest entry — skipping it"
    else
        over=$(awk -v r="$v" -v t="$PROFILE_OVERHEAD_CEILING_PCT" 'BEGIN { print (r > t) ? 1 : 0 }')
        if [[ "$over" == 1 ]]; then
            echo "bench_compare: REGRESSION profile_overhead_pct: $v% > ${PROFILE_OVERHEAD_CEILING_PCT}% absolute ceiling"
            status=1
        else
            echo "bench_compare: ok profile_overhead_pct: $v% (ceiling ${PROFILE_OVERHEAD_CEILING_PCT}%)"
        fi
    fi
fi

if (( status != 0 )); then
    echo "bench_compare: warm-path regression above ${THRESHOLD_PCT}% — failing"
fi
exit "$status"
