//! Offline mini re-implementation of the `proptest` API surface this
//! workspace uses.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be resolved. This vendored harness keeps the workspace's
//! property tests compiling and running unchanged: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_filter`, range and tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, and the
//! `prop_assert*`/`prop_assume` macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics with the ordinary assert message;
//! * deterministic seeding — each test derives its RNG stream from its own
//!   name, so failures reproduce exactly across runs;
//! * rejection (via `prop_filter`/`prop_assume`) resamples the whole input
//!   tuple, with a generous attempt budget before giving up.

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned through `Err` when `prop_assume!` rejects a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test identifier so failures replay across
    /// runs.
    #[must_use]
    pub fn deterministic(name: &str) -> TestRng {
        let mut state = 0xB5AD_4ECE_DA1C_E2A9u64;
        for b in name.bytes() {
            state = state.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as usize
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use super::TestRng;

    /// A recipe for random values (shrink-free subset of
    /// `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value; `None` means the draw was rejected by a filter
        /// and the caller should resample.
        fn gen_sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing the predicate; `reason` labels the filter
        /// in exhaustion panics.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_sample(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.gen_sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        #[allow(dead_code)] // diagnostic label, reported on exhaustion by the runner
        pub(crate) reason: &'static str,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.gen_sample(rng).filter(|v| (self.f)(v))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_sample(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    Some((self.start as i128 + off as i128) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen_sample(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty strategy range");
            Some(self.start + (self.end - self.start) * rng.next_f64())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.gen_sample(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod prop {
    //! The `prop::` strategy constructors.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::TestRng;

        /// A size specification: an exact count or a half-open range.
        pub trait IntoSizeRange {
            /// Inclusive `(min, max)` bounds.
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self)
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        /// Strategy for `Vec`s of `elem` with the given size spec.
        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { elem, min, max }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let len = rng.usize_inclusive(self.min, self.max);
                (0..len).map(|_| self.elem.gen_sample(rng)).collect()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::TestRng;

        /// Strategy yielding `None` about a quarter of the time, otherwise
        /// `Some` of the inner strategy.
        pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
            OfStrategy { inner }
        }

        /// See [`of`].
        pub struct OfStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OfStrategy<S> {
            type Value = Option<S::Value>;
            fn gen_sample(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
                if rng.next_u64().is_multiple_of(4) {
                    Some(None)
                } else {
                    self.inner.gen_sample(rng).map(Some)
                }
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a property (panics with the failing message; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it is resampled and not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// Defines property tests: each `#[test] fn name(binding in strategy, …)
/// { body }` is rewritten into a zero-argument test running `cases`
/// accepted samples. The `#[test]` attribute is written by the caller (as
/// with real proptest) and passed through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "property `{}` rejected too many samples ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    accepted,
                );
                $(
                    let $pat = match $crate::strategy::Strategy::gen_sample(&($strat), &mut rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => continue,
                    };
                )+
                let outcome: ::core::result::Result<(), $crate::Rejected> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        let s = (0i64..10, -1.0f64..1.0);
        for _ in 0..200 {
            let (i, f) = Strategy::gen_sample(&s, &mut rng).unwrap();
            assert!((0..10).contains(&i));
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut rng = crate::TestRng::deterministic("mapfilter");
        let s = (0usize..100)
            .prop_map(|x| x * 2)
            .prop_filter("keep multiples of 4", |x| x % 4 == 0);
        let mut kept = 0;
        for _ in 0..200 {
            if let Some(v) = Strategy::gen_sample(&s, &mut rng) {
                assert!(v % 4 == 0);
                kept += 1;
            }
        }
        assert!(kept > 50, "filter should keep about half, kept {kept}");
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::deterministic("vecsize");
        let ranged = prop::collection::vec(0u32..5, 1..7);
        let exact = prop::collection::vec(0.0f64..1.0, 8);
        for _ in 0..100 {
            let v = Strategy::gen_sample(&ranged, &mut rng).unwrap();
            assert!((1..=6).contains(&v.len()));
            let e = Strategy::gen_sample(&exact, &mut rng).unwrap();
            assert_eq!(e.len(), 8);
        }
    }

    #[test]
    fn option_of_mixes_none_and_some() {
        let mut rng = crate::TestRng::deterministic("optionof");
        let s = prop::option::of(0.0f64..100.0);
        let draws: Vec<_> = (0..200)
            .map(|_| Strategy::gen_sample(&s, &mut rng).unwrap())
            .collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: bindings, assume, and asserts.
        #[test]
        #[allow(unused_mut)]
        fn macro_smoke(mut a in 0i64..100, b in 0i64..100, v in prop::collection::vec(0u8..255, 0..5)) {
            prop_assume!(a != b);
            a += 1;
            prop_assert!(a != b + 1);
            prop_assert_ne!(a - 1, b);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
