//! No-op replacements for `serde_derive`'s `Serialize`/`Deserialize` derive
//! macros.
//!
//! The workspace builds in an environment with no access to crates.io, so
//! the real `serde` cannot be fetched. The codebase only uses the derives as
//! declarative markers (nothing serializes through serde at runtime — the
//! text formats ship their own writers), so emitting no impl at all is
//! sufficient. `attributes(serde)` is declared so any future
//! `#[serde(...)]` field attributes still parse.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
