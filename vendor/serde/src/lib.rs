//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be resolved. The workspace uses serde purely as derive decoration
//! (`#[derive(Serialize, Deserialize)]`) — no code path serializes through
//! the serde data model, and no crate bounds on these traits. The stand-in
//! therefore provides empty marker traits plus the no-op derive macros from
//! the vendored `serde_derive`, keeping every `use serde::…` line and
//! derive attribute in the workspace compiling unchanged. Swapping the
//! vendored path dependency back to the registry crate restores full serde
//! behaviour without touching any consumer.

/// Marker counterpart of `serde::Serialize`. No-op: nothing in this
/// workspace serializes through the serde data model.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirror of `serde::ser` for path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirror of `serde::de` for path compatibility.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(feature = "derive")]
    fn derives_expand_to_nothing() {
        #[derive(Debug, Clone, PartialEq, crate::Serialize, crate::Deserialize)]
        struct Probe {
            x: f64,
            name: String,
        }
        let p = Probe {
            x: 1.0,
            name: "a".into(),
        };
        assert_eq!(p.clone(), p);
    }
}
