//! Offline stand-in for the `criterion` bench harness.
//!
//! The build environment cannot fetch crates, so the real `criterion` is
//! unavailable. This vendored replacement keeps every `[[bench]]` target
//! compiling and runnable with `cargo bench`: it implements the same
//! surface the workspace benches use (`Criterion`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros) but measures with plain `std::time::Instant` and prints one
//! mean-time line per benchmark instead of doing statistical analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measurement batch.
    PerIteration,
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Prevents the optimizer from eliding a value (re-export of the std
/// implementation the real criterion also defers to on recent toolchains).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The measurement context handed to bench closures.
pub struct Bencher {
    samples: u64,
    /// Mean wall-clock duration of one routine call, recorded by `iter`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / u32::try_from(self.samples).unwrap_or(u32::MAX);
    }

    /// Times `routine` with a fresh `setup` product per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total / u32::try_from(self.samples).unwrap_or(u32::MAX);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured calls per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level bench driver.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = id.to_string();
        let samples = self.default_samples;
        self.run_one(&label, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: u64, mut f: F) {
        let mut bencher = Bencher {
            samples,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "bench {label:<50} {:>12.3} ms/iter ({samples} samples)",
            bencher.elapsed.as_secs_f64() * 1e3
        );
    }
}

/// Bundles bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_runs_routines() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 10);

        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        let mut batched = 0u64;
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &v| {
            b.iter_batched(|| v, |x| batched += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(batched, 21);
    }
}
