//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the real `rand` cannot
//! be resolved. This vendored replacement implements exactly the API
//! surface the workspace consumes — `SmallRng::seed_from_u64`,
//! `Rng::gen_range` over primitive ranges, and `Rng::gen_bool` — on top of
//! a xoshiro256++ generator seeded through SplitMix64 (the same
//! construction the real `SmallRng` uses on 64-bit targets). Streams are
//! deterministic per seed and platform-independent, which is all the
//! benchmark generator, placer, and Monte-Carlo sampler rely on.

use std::ops::Range;

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open primitive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample of a whole primitive type (`f64` draws from `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::gen` can sample from their full (or canonical) domain.
pub trait Standard {
    /// Draws one sample: full bit range for integers/bool, `[0, 1)` for floats.
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> f64 {
        next_f64(rng)
    }
}

impl Standard for u64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that knows how to draw a uniform sample of itself.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * next_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64, negligible for the spans the
                // workspace draws (all far below 2^32).
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind `rand`'s `SmallRng`
    /// on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..100).filter(|_| {
            SmallRng::seed_from_u64(42).gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
        });
        assert!(same.count() < 100, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..6);
            assert!(v < 6);
            seen[v] = true;
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
