use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::Nm;

/// A point on the nanometre grid.
///
/// # Examples
///
/// ```
/// use svt_geom::{Nm, Point};
///
/// let p = Point::new(Nm(10), Nm(20)) + Point::new(Nm(1), Nm(2));
/// assert_eq!(p, Point::new(Nm(11), Nm(22)));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Nm,
    /// Vertical coordinate.
    pub y: Nm,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point {
        x: Nm::ZERO,
        y: Nm::ZERO,
    };

    /// Creates a point from its coordinates.
    #[must_use]
    pub fn new(x: Nm, y: Nm) -> Point {
        Point { x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_are_componentwise() {
        let a = Point::new(Nm(5), Nm(-3));
        let b = Point::new(Nm(2), Nm(10));
        assert_eq!(a + b, Point::new(Nm(7), Nm(7)));
        assert_eq!(a - b, Point::new(Nm(3), Nm(-13)));
    }

    #[test]
    fn origin_is_zero() {
        assert_eq!(Point::ORIGIN, Point::new(Nm(0), Nm(0)));
    }
}
