use std::fmt;

use serde::{Deserialize, Serialize};

/// Mask / layout layers used by the workspace.
///
/// The paper's methodology only manipulates the polysilicon level, but the
/// cell generator also emits diffusion (to locate devices: a device exists
/// where poly crosses diffusion) and the OPC engine emits dummy poly and
/// sub-resolution assist features that participate in imaging but must not
/// print.
///
/// # Examples
///
/// ```
/// use svt_geom::Layer;
///
/// assert!(Layer::Poly.images());
/// assert!(Layer::Sraf.images());
/// assert!(!Layer::Diffusion.images());
/// assert!(!Layer::Sraf.prints());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Polysilicon gate level — the level the methodology corrects and times.
    Poly,
    /// Active / diffusion; poly over diffusion defines a device.
    Diffusion,
    /// Dummy poly inserted to emulate a placement environment during
    /// library-based OPC (paper Fig. 3). Images like poly but carries no
    /// device.
    DummyPoly,
    /// Sub-resolution assist feature (scatter bar): on the mask, images, but
    /// must never print.
    Sraf,
    /// Cell outline / placement boundary (non-mask).
    Outline,
}

impl Layer {
    /// Whether shapes on this layer appear on the photomask and contribute
    /// to the aerial image.
    #[must_use]
    pub fn images(self) -> bool {
        matches!(self, Layer::Poly | Layer::DummyPoly | Layer::Sraf)
    }

    /// Whether features on this layer are intended to print on wafer.
    #[must_use]
    pub fn prints(self) -> bool {
        matches!(self, Layer::Poly | Layer::DummyPoly)
    }

    /// Whether the layer belongs to the mask data set (as opposed to
    /// annotation layers like the cell outline).
    #[must_use]
    pub fn is_mask_layer(self) -> bool {
        !matches!(self, Layer::Outline)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Layer::Poly => "poly",
            Layer::Diffusion => "diffusion",
            Layer::DummyPoly => "dummy-poly",
            Layer::Sraf => "sraf",
            Layer::Outline => "outline",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imaging_and_printing_flags() {
        assert!(Layer::Poly.images() && Layer::Poly.prints());
        assert!(Layer::DummyPoly.images() && Layer::DummyPoly.prints());
        assert!(Layer::Sraf.images() && !Layer::Sraf.prints());
        assert!(!Layer::Diffusion.images());
        assert!(!Layer::Outline.is_mask_layer());
    }

    #[test]
    fn display_names() {
        assert_eq!(Layer::Sraf.to_string(), "sraf");
        assert_eq!(Layer::DummyPoly.to_string(), "dummy-poly");
    }
}
