use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A length on the integer nanometre database grid.
///
/// Every mask coordinate in the workspace is an `Nm`. The newtype keeps
/// nanometres from being confused with the floating-point micron and
/// normalized-frequency quantities used inside the lithography engine
/// (C-NEWTYPE).
///
/// # Examples
///
/// ```
/// use svt_geom::Nm;
///
/// let pitch = Nm(300);
/// let space = pitch - Nm(90);
/// assert_eq!(space, Nm(210));
/// assert_eq!(pitch.to_um(), 0.3);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Nm(pub i64);

impl Nm {
    /// Zero length.
    pub const ZERO: Nm = Nm(0);

    /// The largest representable length, used as an "infinite spacing"
    /// sentinel when a device has no neighbor within the simulation window.
    pub const MAX: Nm = Nm(i64::MAX);

    /// Converts a floating-point nanometre value, rounding to the grid.
    ///
    /// # Examples
    ///
    /// ```
    /// use svt_geom::Nm;
    /// assert_eq!(Nm::from_f64(89.6), Nm(90));
    /// ```
    #[must_use]
    pub fn from_f64(nm: f64) -> Nm {
        Nm(nm.round() as i64)
    }

    /// The value in nanometres as a float, for analog computations.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64
    }

    /// The value in microns.
    #[must_use]
    pub fn to_um(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Nm {
        Nm(self.0.abs())
    }

    /// The smaller of two lengths.
    #[must_use]
    pub fn min(self, other: Nm) -> Nm {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two lengths.
    #[must_use]
    pub fn max(self, other: Nm) -> Nm {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Nm, hi: Nm) -> Nm {
        assert!(lo <= hi, "invalid clamp range: {lo} > {hi}");
        self.max(lo).min(hi)
    }
}

impl fmt::Display for Nm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.0)
    }
}

impl Add for Nm {
    type Output = Nm;
    fn add(self, rhs: Nm) -> Nm {
        Nm(self.0 + rhs.0)
    }
}

impl AddAssign for Nm {
    fn add_assign(&mut self, rhs: Nm) {
        self.0 += rhs.0;
    }
}

impl Sub for Nm {
    type Output = Nm;
    fn sub(self, rhs: Nm) -> Nm {
        Nm(self.0 - rhs.0)
    }
}

impl SubAssign for Nm {
    fn sub_assign(&mut self, rhs: Nm) {
        self.0 -= rhs.0;
    }
}

impl Neg for Nm {
    type Output = Nm;
    fn neg(self) -> Nm {
        Nm(-self.0)
    }
}

impl Mul<i64> for Nm {
    type Output = Nm;
    fn mul(self, rhs: i64) -> Nm {
        Nm(self.0 * rhs)
    }
}

impl Div<i64> for Nm {
    type Output = Nm;
    fn div(self, rhs: i64) -> Nm {
        Nm(self.0 / rhs)
    }
}

impl Rem<i64> for Nm {
    type Output = Nm;
    fn rem(self, rhs: i64) -> Nm {
        Nm(self.0 % rhs)
    }
}

impl Sum for Nm {
    fn sum<I: Iterator<Item = Nm>>(iter: I) -> Nm {
        iter.fold(Nm::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let a = Nm(300);
        let b = Nm(90);
        assert_eq!(a + b, Nm(390));
        assert_eq!(a - b, Nm(210));
        assert_eq!(-b, Nm(-90));
        assert_eq!(b * 3, Nm(270));
        assert_eq!(a / 3, Nm(100));
        assert_eq!(a % 7, Nm(6));
    }

    #[test]
    fn conversions() {
        assert_eq!(Nm::from_f64(129.5), Nm(130));
        assert_eq!(Nm::from_f64(-0.4), Nm(0));
        assert_eq!(Nm(250).to_um(), 0.25);
        assert_eq!(Nm(-90).abs(), Nm(90));
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(Nm(3).min(Nm(7)), Nm(3));
        assert_eq!(Nm(3).max(Nm(7)), Nm(7));
        assert_eq!(Nm(9).clamp(Nm(0), Nm(5)), Nm(5));
        assert_eq!(Nm(-9).clamp(Nm(0), Nm(5)), Nm(0));
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_rejects_inverted_range() {
        let _ = Nm(1).clamp(Nm(5), Nm(0));
    }

    #[test]
    fn sum_of_lengths() {
        let total: Nm = [Nm(1), Nm(2), Nm(3)].into_iter().sum();
        assert_eq!(total, Nm(6));
    }

    #[test]
    fn display_is_suffixed() {
        assert_eq!(Nm(600).to_string(), "600nm");
    }
}
