use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Interval, Nm, Point};

/// An axis-aligned rectangle on the nanometre grid.
///
/// Rectangles are the only polygon the workspace needs: poly gates, dummy
/// fill, diffusion, SRAFs and cell outlines are all rectilinear and, after
/// fracturing, rectangular.
///
/// # Examples
///
/// ```
/// use svt_geom::{Nm, Rect};
///
/// let gate = Rect::new(Nm(0), Nm(0), Nm(90), Nm(600));
/// assert_eq!(gate.width(), Nm(90));
/// assert_eq!(gate.height(), Nm(600));
/// assert_eq!(gate.area(), 54_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x0 > x1` or `y0 > y1`.
    #[must_use]
    pub fn new(x0: Nm, y0: Nm, x1: Nm, y1: Nm) -> Rect {
        assert!(
            x0 <= x1 && y0 <= y1,
            "inverted rect: ({x0},{y0})-({x1},{y1})"
        );
        Rect {
            lo: Point::new(x0, y0),
            hi: Point::new(x1, y1),
        }
    }

    /// Creates a rectangle from its horizontal and vertical spans.
    #[must_use]
    pub fn from_spans(x: Interval, y: Interval) -> Rect {
        Rect::new(x.lo(), y.lo(), x.hi(), y.hi())
    }

    /// Lower-left corner.
    #[must_use]
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[must_use]
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Horizontal span.
    #[must_use]
    pub fn x_span(&self) -> Interval {
        Interval::new(self.lo.x, self.hi.x)
    }

    /// Vertical span.
    #[must_use]
    pub fn y_span(&self) -> Interval {
        Interval::new(self.lo.y, self.hi.y)
    }

    /// Width along x.
    #[must_use]
    pub fn width(&self) -> Nm {
        self.hi.x - self.lo.x
    }

    /// Height along y.
    #[must_use]
    pub fn height(&self) -> Nm {
        self.hi.y - self.lo.y
    }

    /// Area in nm².
    #[must_use]
    pub fn area(&self) -> i64 {
        self.width().0 * self.height().0
    }

    /// Center point (rounded toward the lower-left).
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(self.x_span().center(), self.y_span().center())
    }

    /// Whether a point lies in the closed rectangle.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.x_span().contains(p.x) && self.y_span().contains(p.y)
    }

    /// Whether the closed rectangles share at least one point.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x_span().overlaps(&other.x_span()) && self.y_span().overlaps(&other.y_span())
    }

    /// The intersection rectangle, if any.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x = self.x_span().intersection(&other.x_span())?;
        let y = self.y_span().intersection(&other.y_span())?;
        Some(Rect::from_spans(x, y))
    }

    /// The smallest rectangle covering both inputs.
    #[must_use]
    pub fn hull(&self, other: &Rect) -> Rect {
        Rect::from_spans(
            self.x_span().hull(&other.x_span()),
            self.y_span().hull(&other.y_span()),
        )
    }

    /// Translates by `(dx, dy)`.
    #[must_use]
    pub fn shifted(&self, dx: Nm, dy: Nm) -> Rect {
        Rect::new(
            self.lo.x + dx,
            self.lo.y + dy,
            self.hi.x + dx,
            self.hi.y + dy,
        )
    }

    /// Grows all four sides outward by `amount` (negative shrinks; spans
    /// collapse to their centers rather than inverting).
    #[must_use]
    pub fn expanded(&self, amount: Nm) -> Rect {
        Rect::from_spans(
            self.x_span().expanded(amount),
            self.y_span().expanded(amount),
        )
    }

    /// Replaces the horizontal span, keeping the vertical one — the mask
    /// operation performed by 1-D edge-bias OPC on a vertical line.
    #[must_use]
    pub fn with_x_span(&self, x: Interval) -> Rect {
        Rect::from_spans(x, self.y_span())
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}@{}", self.width(), self.height(), self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Nm(x0), Nm(y0), Nm(x1), Nm(y1))
    }

    #[test]
    fn dimensions() {
        let g = r(10, 20, 100, 620);
        assert_eq!(g.width(), Nm(90));
        assert_eq!(g.height(), Nm(600));
        assert_eq!(g.area(), 54_000);
        assert_eq!(g.center(), Point::new(Nm(55), Nm(320)));
    }

    #[test]
    #[should_panic(expected = "inverted rect")]
    fn rejects_inverted() {
        let _ = r(5, 0, 0, 5);
    }

    #[test]
    fn containment_and_overlap() {
        let g = r(0, 0, 90, 600);
        assert!(g.contains(Point::new(Nm(0), Nm(0))));
        assert!(g.contains(Point::new(Nm(90), Nm(600))));
        assert!(!g.contains(Point::new(Nm(91), Nm(0))));
        assert!(g.overlaps(&r(80, 500, 200, 700)));
        assert!(!g.overlaps(&r(100, 0, 200, 600)));
    }

    #[test]
    fn intersection_and_hull() {
        let a = r(0, 0, 90, 600);
        let b = r(60, 300, 200, 900);
        assert_eq!(a.intersection(&b), Some(r(60, 300, 90, 600)));
        assert_eq!(a.hull(&b), r(0, 0, 200, 900));
        assert_eq!(a.intersection(&r(500, 0, 600, 100)), None);
    }

    #[test]
    fn shift_and_expand() {
        let a = r(0, 0, 90, 600);
        assert_eq!(a.shifted(Nm(300), Nm(-100)), r(300, -100, 390, 500));
        assert_eq!(a.expanded(Nm(10)), r(-10, -10, 100, 610));
    }

    #[test]
    fn with_x_span_keeps_height() {
        let a = r(0, 0, 90, 600);
        let biased = a.with_x_span(Interval::new(Nm(-5), Nm(95)));
        assert_eq!(biased, r(-5, 0, 95, 600));
    }
}
