use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Layer, Nm, Rect};

/// A rectangle on a layout layer.
///
/// # Examples
///
/// ```
/// use svt_geom::{Layer, Nm, Rect, Shape};
///
/// let gate = Shape::new(Layer::Poly, Rect::new(Nm(0), Nm(0), Nm(90), Nm(600)));
/// assert_eq!(gate.rect.width(), Nm(90));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Layer the rectangle lives on.
    pub layer: Layer,
    /// The rectangle geometry.
    pub rect: Rect,
}

impl Shape {
    /// Creates a shape.
    #[must_use]
    pub fn new(layer: Layer, rect: Rect) -> Shape {
        Shape { layer, rect }
    }

    /// The same shape translated by `(dx, dy)`.
    #[must_use]
    pub fn shifted(&self, dx: Nm, dy: Nm) -> Shape {
        Shape::new(self.layer, self.rect.shifted(dx, dy))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.layer, self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_moves_rect_only() {
        let s = Shape::new(Layer::Poly, Rect::new(Nm(0), Nm(0), Nm(90), Nm(600)));
        let t = s.shifted(Nm(300), Nm(0));
        assert_eq!(t.layer, Layer::Poly);
        assert_eq!(t.rect, Rect::new(Nm(300), Nm(0), Nm(390), Nm(600)));
    }
}
