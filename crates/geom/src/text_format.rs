//! A GDS-flavoured text interchange format for layouts.
//!
//! Real flows move mask data as GDSII streams; this workspace uses an
//! equivalent line-oriented text form so layouts (cell masters + placed
//! instances) survive round trips to disk and diffs stay readable:
//!
//! ```text
//! LAYOUT
//! CELL INVX1 0 0 600 2400
//!   RECT poly 255 200 345 2200
//! ENDCELL
//! INST u1 INVX1 1000 0 R0
//! END
//! ```
//!
//! # Examples
//!
//! ```
//! use svt_geom::{text_format, CellLayout, Layer, Layout, Nm, Rect, Shape};
//!
//! let mut cell = CellLayout::new("INVX1", Rect::new(Nm(0), Nm(0), Nm(600), Nm(2400)));
//! cell.push(Shape::new(Layer::Poly, Rect::new(Nm(255), Nm(200), Nm(345), Nm(2200))));
//! let mut layout = Layout::new();
//! layout.add_cell(cell);
//! let text = text_format::write_layout(&layout);
//! let parsed = text_format::parse_layout(&text)?;
//! assert_eq!(parsed, layout);
//! # Ok::<(), svt_geom::GeomError>(())
//! ```

use std::fmt::Write as _;

use crate::{
    CellLayout, GeomError, Instance, Layer, Layout, Nm, Orientation, Point, Rect, Shape, Transform,
};

fn layer_name(layer: Layer) -> &'static str {
    match layer {
        Layer::Poly => "poly",
        Layer::Diffusion => "diffusion",
        Layer::DummyPoly => "dummy-poly",
        Layer::Sraf => "sraf",
        Layer::Outline => "outline",
    }
}

fn parse_layer(s: &str) -> Option<Layer> {
    match s {
        "poly" => Some(Layer::Poly),
        "diffusion" => Some(Layer::Diffusion),
        "dummy-poly" => Some(Layer::DummyPoly),
        "sraf" => Some(Layer::Sraf),
        "outline" => Some(Layer::Outline),
        _ => None,
    }
}

fn orientation_name(o: Orientation) -> &'static str {
    match o {
        Orientation::R0 => "R0",
        Orientation::MY => "MY",
        Orientation::MX => "MX",
        Orientation::R180 => "R180",
    }
}

fn parse_orientation(s: &str) -> Option<Orientation> {
    match s {
        "R0" => Some(Orientation::R0),
        "MY" => Some(Orientation::MY),
        "MX" => Some(Orientation::MX),
        "R180" => Some(Orientation::R180),
        _ => None,
    }
}

/// Serializes a layout.
#[must_use]
pub fn write_layout(layout: &Layout) -> String {
    let mut out = String::from("LAYOUT\n");
    for cell in layout.cells() {
        let o = cell.outline();
        let _ = writeln!(
            out,
            "CELL {} {} {} {} {}",
            cell.name(),
            o.lo().x.0,
            o.lo().y.0,
            o.hi().x.0,
            o.hi().y.0
        );
        for s in cell.shapes() {
            let r = s.rect;
            let _ = writeln!(
                out,
                "  RECT {} {} {} {} {}",
                layer_name(s.layer),
                r.lo().x.0,
                r.lo().y.0,
                r.hi().x.0,
                r.hi().y.0
            );
        }
        out.push_str("ENDCELL\n");
    }
    for inst in layout.instances() {
        let t = &inst.transform;
        let _ = writeln!(
            out,
            "INST {} {} {} {} {}",
            inst.name,
            inst.cell,
            t.origin.x.0,
            t.origin.y.0,
            orientation_name(t.orientation)
        );
    }
    out.push_str("END\n");
    out
}

/// Parses the text form back into a layout.
///
/// # Errors
///
/// Returns [`GeomError::ParseLayoutError`] with the failing line for any
/// syntax or semantic problem (unknown layer/orientation, instance of an
/// undeclared cell, …).
pub fn parse_layout(text: &str) -> Result<Layout, GeomError> {
    let mut layout = Layout::new();
    let mut current: Option<CellLayout> = None;
    let err = |line: usize, reason: &str| GeomError::ParseLayoutError {
        line,
        reason: reason.to_string(),
    };
    let int = |line: usize, s: &str| -> Result<i64, GeomError> {
        s.parse().map_err(|_| err(line, "expected an integer"))
    };

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["LAYOUT"] => {}
            ["END"] => break,
            ["CELL", name, x0, y0, x1, y1] => {
                if current.is_some() {
                    return Err(err(lineno, "nested CELL"));
                }
                let outline = Rect::new(
                    Nm(int(lineno, x0)?),
                    Nm(int(lineno, y0)?),
                    Nm(int(lineno, x1)?),
                    Nm(int(lineno, y1)?),
                );
                current = Some(CellLayout::new(*name, outline));
            }
            ["RECT", layer, x0, y0, x1, y1] => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "RECT outside a CELL"))?;
                let layer = parse_layer(layer).ok_or_else(|| err(lineno, "unknown layer"))?;
                cell.push(Shape::new(
                    layer,
                    Rect::new(
                        Nm(int(lineno, x0)?),
                        Nm(int(lineno, y0)?),
                        Nm(int(lineno, x1)?),
                        Nm(int(lineno, y1)?),
                    ),
                ));
            }
            ["ENDCELL"] => {
                let cell = current
                    .take()
                    .ok_or_else(|| err(lineno, "ENDCELL without CELL"))?;
                layout.add_cell(cell);
            }
            ["INST", name, cell, x, y, orient] => {
                if current.is_some() {
                    return Err(err(lineno, "INST inside a CELL"));
                }
                let master = layout
                    .cell(cell)
                    .ok_or_else(|| err(lineno, "instance of undeclared cell"))?;
                let (w, h) = (master.width(), master.height());
                let orientation =
                    parse_orientation(orient).ok_or_else(|| err(lineno, "unknown orientation"))?;
                let t = Transform::new(
                    Point::new(Nm(int(lineno, x)?), Nm(int(lineno, y)?)),
                    orientation,
                    w,
                    h,
                );
                layout
                    .add_instance(Instance::new(*name, *cell, t))
                    .map_err(|_| err(lineno, "invalid instance"))?;
            }
            _ => return Err(err(lineno, "unrecognized statement")),
        }
    }
    if current.is_some() {
        return Err(GeomError::ParseLayoutError {
            line: text.lines().count(),
            reason: "unterminated CELL".into(),
        });
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Layout {
        let mut inv = CellLayout::new("INVX1", Rect::new(Nm(0), Nm(0), Nm(600), Nm(2400)));
        inv.push(Shape::new(
            Layer::Poly,
            Rect::new(Nm(255), Nm(200), Nm(345), Nm(2200)),
        ));
        inv.push(Shape::new(
            Layer::Diffusion,
            Rect::new(Nm(100), Nm(300), Nm(500), Nm(1000)),
        ));
        let mut layout = Layout::new();
        layout.add_cell(inv);
        let t = Transform::new(
            Point::new(Nm(1000), Nm(0)),
            Orientation::MY,
            Nm(600),
            Nm(2400),
        );
        layout
            .add_instance(Instance::new("u1", "INVX1", t))
            .expect("master exists");
        layout
    }

    #[test]
    fn round_trip_preserves_layout() {
        let layout = sample();
        let text = write_layout(&layout);
        assert_eq!(parse_layout(&text).expect("parses"), layout);
    }

    #[test]
    fn all_layers_and_orientations_round_trip() {
        for layer in [
            Layer::Poly,
            Layer::Diffusion,
            Layer::DummyPoly,
            Layer::Sraf,
            Layer::Outline,
        ] {
            assert_eq!(parse_layer(layer_name(layer)), Some(layer));
        }
        for o in [
            Orientation::R0,
            Orientation::MY,
            Orientation::MX,
            Orientation::R180,
        ] {
            assert_eq!(parse_orientation(orientation_name(o)), Some(o));
        }
    }

    #[test]
    fn parse_errors_carry_lines() {
        let bad = "LAYOUT\nRECT poly 0 0 1 1\nEND\n";
        match parse_layout(bad) {
            Err(GeomError::ParseLayoutError { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(
            parse_layout("LAYOUT\nCELL A 0 0 10 10\nEND\n").is_err(),
            "unterminated cell"
        );
        assert!(
            parse_layout("LAYOUT\nINST u X 0 0 R0\nEND\n").is_err(),
            "undeclared master"
        );
        assert!(parse_layout("LAYOUT\nGARBAGE\nEND\n").is_err());
        assert!(parse_layout("LAYOUT\nCELL A 0 0 ten 10\nENDCELL\nEND\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_tolerated() {
        let text = "# header\nLAYOUT\n\nCELL A 0 0 10 10\n# inner\nENDCELL\nEND\n";
        let layout = parse_layout(text).expect("parses");
        assert_eq!(layout.cells().len(), 1);
    }

    #[test]
    fn flattened_masks_survive_the_round_trip() {
        let layout = sample();
        let parsed = parse_layout(&write_layout(&layout)).expect("parses");
        assert_eq!(parsed.flatten_mask(), layout.flatten_mask());
    }
}
