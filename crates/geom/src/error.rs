use std::error::Error;
use std::fmt;

/// Errors produced by geometry validation and layout assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A shape escapes its cell outline (plus the allowed margin).
    ShapeOutsideOutline {
        /// Name of the offending cell.
        cell: String,
        /// Index of the offending shape within the cell.
        index: usize,
    },
    /// An instance references a cell master that was never registered.
    UnknownCell {
        /// Name of the missing master.
        cell: String,
    },
    /// Layout interchange text could not be parsed.
    ParseLayoutError {
        /// 1-based line of the failure.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::ShapeOutsideOutline { cell, index } => {
                write!(
                    f,
                    "shape {index} of cell `{cell}` lies outside the cell outline"
                )
            }
            GeomError::UnknownCell { cell } => {
                write!(f, "instance references unknown cell master `{cell}`")
            }
            GeomError::ParseLayoutError { line, reason } => {
                write!(f, "layout parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_cell() {
        let e = GeomError::UnknownCell {
            cell: "NAND2X1".into(),
        };
        assert!(e.to_string().contains("NAND2X1"));
        let e = GeomError::ShapeOutsideOutline {
            cell: "INVX1".into(),
            index: 3,
        };
        assert!(e.to_string().contains("INVX1"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<GeomError>();
    }
}
