use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Nm, Point, Rect};

/// Placement orientation of a cell instance.
///
/// Standard-cell placement uses `R0` and `MY` in alternating rows (flip about
/// the y-axis for row abutment) plus the x-mirrored variants for power-rail
/// sharing. Rotations by 90° are not used by row-based placement and are not
/// supported.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Orientation {
    /// No mirroring.
    #[default]
    R0,
    /// Mirrored about the y-axis (x → width − x).
    MY,
    /// Mirrored about the x-axis (y → height − y).
    MX,
    /// Rotated 180° (both mirrors).
    R180,
}

impl Orientation {
    /// Whether x-coordinates are mirrored.
    #[must_use]
    pub fn flips_x(self) -> bool {
        matches!(self, Orientation::MY | Orientation::R180)
    }

    /// Whether y-coordinates are mirrored.
    #[must_use]
    pub fn flips_y(self) -> bool {
        matches!(self, Orientation::MX | Orientation::R180)
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::MY => "MY",
            Orientation::MX => "MX",
            Orientation::R180 => "R180",
        };
        f.write_str(s)
    }
}

/// A placement transform: orient within the cell's bounding box, then
/// translate.
///
/// The mirror is taken about the cell-local bounding box `(0,0)-(w,h)` so
/// that a placed instance always occupies `origin + (0,0)-(w,h)`, matching
/// DEF semantics.
///
/// # Examples
///
/// ```
/// use svt_geom::{Nm, Orientation, Point, Rect, Transform};
///
/// let t = Transform::new(Point::new(Nm(1000), Nm(0)), Orientation::MY, Nm(400), Nm(800));
/// let local = Rect::new(Nm(0), Nm(0), Nm(90), Nm(800));
/// let placed = t.apply_rect(local);
/// assert_eq!(placed, Rect::new(Nm(1310), Nm(0), Nm(1400), Nm(800)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transform {
    /// Placement origin (lower-left of the placed bounding box).
    pub origin: Point,
    /// Orientation applied before translation.
    pub orientation: Orientation,
    /// Cell bounding-box width used as the mirror axis offset.
    pub cell_width: Nm,
    /// Cell bounding-box height used as the mirror axis offset.
    pub cell_height: Nm,
}

impl Transform {
    /// Creates a transform for a cell of the given bounding-box size.
    #[must_use]
    pub fn new(
        origin: Point,
        orientation: Orientation,
        cell_width: Nm,
        cell_height: Nm,
    ) -> Transform {
        Transform {
            origin,
            orientation,
            cell_width,
            cell_height,
        }
    }

    /// Identity placement at `origin` for an un-mirrored cell.
    #[must_use]
    pub fn at(origin: Point, cell_width: Nm, cell_height: Nm) -> Transform {
        Transform::new(origin, Orientation::R0, cell_width, cell_height)
    }

    /// Maps a cell-local point to chip coordinates.
    #[must_use]
    pub fn apply_point(&self, p: Point) -> Point {
        let x = if self.orientation.flips_x() {
            self.cell_width - p.x
        } else {
            p.x
        };
        let y = if self.orientation.flips_y() {
            self.cell_height - p.y
        } else {
            p.y
        };
        Point::new(x + self.origin.x, y + self.origin.y)
    }

    /// Maps a cell-local rectangle to chip coordinates.
    #[must_use]
    pub fn apply_rect(&self, r: Rect) -> Rect {
        let a = self.apply_point(r.lo());
        let b = self.apply_point(r.hi());
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(orient: Orientation) -> Transform {
        Transform::new(Point::new(Nm(1000), Nm(2000)), orient, Nm(400), Nm(800))
    }

    #[test]
    fn r0_translates_only() {
        let r = Rect::new(Nm(10), Nm(20), Nm(100), Nm(620));
        assert_eq!(
            t(Orientation::R0).apply_rect(r),
            Rect::new(Nm(1010), Nm(2020), Nm(1100), Nm(2620))
        );
    }

    #[test]
    fn my_mirrors_x_within_bbox() {
        let r = Rect::new(Nm(10), Nm(20), Nm(100), Nm(620));
        // x' spans [400-100, 400-10] = [300, 390]
        assert_eq!(
            t(Orientation::MY).apply_rect(r),
            Rect::new(Nm(1300), Nm(2020), Nm(1390), Nm(2620))
        );
    }

    #[test]
    fn mx_mirrors_y_within_bbox() {
        let r = Rect::new(Nm(10), Nm(20), Nm(100), Nm(620));
        assert_eq!(
            t(Orientation::MX).apply_rect(r),
            Rect::new(Nm(1010), Nm(2180), Nm(1100), Nm(2780))
        );
    }

    #[test]
    fn r180_mirrors_both() {
        let r = Rect::new(Nm(0), Nm(0), Nm(400), Nm(800));
        // Full bbox maps to itself under any orientation.
        for o in [
            Orientation::R0,
            Orientation::MY,
            Orientation::MX,
            Orientation::R180,
        ] {
            assert_eq!(
                t(o).apply_rect(r),
                Rect::new(Nm(1000), Nm(2000), Nm(1400), Nm(2800)),
                "orientation {o}"
            );
        }
    }

    #[test]
    fn flip_flags() {
        assert!(!Orientation::R0.flips_x() && !Orientation::R0.flips_y());
        assert!(Orientation::MY.flips_x() && !Orientation::MY.flips_y());
        assert!(!Orientation::MX.flips_x() && Orientation::MX.flips_y());
        assert!(Orientation::R180.flips_x() && Orientation::R180.flips_y());
    }
}
