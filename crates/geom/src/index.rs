use serde::{Deserialize, Serialize};

use crate::{Interval, Nm};

/// A neighboring feature edge found by an [`IntervalIndex`] query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborEdge {
    /// Index of the neighboring interval in insertion order.
    pub id: usize,
    /// Empty-space gap between the query interval and the neighbor.
    pub gap: Nm,
}

/// A 1-D index over feature intervals supporting nearest-neighbor queries.
///
/// The systematic-variation methodology repeatedly asks "what is the space
/// from this gate to the nearest poly feature on its left / right?" (the
/// `nps` parameters of paper §3.1.2 and the iso/dense classification of
/// §3.2). This index answers those queries in `O(log n)` after an `O(n log
/// n)` build.
///
/// # Examples
///
/// ```
/// use svt_geom::{Interval, IntervalIndex, Nm};
///
/// let mut idx = IntervalIndex::new();
/// idx.insert(Interval::new(Nm(0), Nm(90)));
/// idx.insert(Interval::new(Nm(300), Nm(390)));
/// idx.insert(Interval::new(Nm(900), Nm(990)));
/// let idx = idx; // queries take &self
/// let right = idx.nearest_right(&Interval::new(Nm(300), Nm(390))).unwrap();
/// assert_eq!(right.gap, Nm(510));
/// let left = idx.nearest_left(&Interval::new(Nm(300), Nm(390))).unwrap();
/// assert_eq!(left.gap, Nm(210));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalIndex {
    /// (interval, insertion id), sorted by `lo` once built.
    items: Vec<(Interval, usize)>,
    sorted: bool,
}

impl IntervalIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> IntervalIndex {
        IntervalIndex::default()
    }

    /// Builds an index from intervals.
    #[must_use]
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> IntervalIndex {
        let mut idx = IntervalIndex::new();
        for iv in intervals {
            idx.insert(iv);
        }
        idx
    }

    /// Inserts an interval, returning its id.
    pub fn insert(&mut self, interval: Interval) -> usize {
        let id = self.items.len();
        self.items.push((interval, id));
        self.sorted = false;
        id
    }

    /// Number of indexed intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.items.sort_by_key(|(iv, _)| (iv.lo(), iv.hi()));
            self.sorted = true;
        }
    }

    fn sorted_items(&self) -> Vec<(Interval, usize)> {
        let mut items = self.items.clone();
        items.sort_by_key(|(iv, _)| (iv.lo(), iv.hi()));
        items
    }

    /// Sorts the index eagerly. Queries sort lazily into a scratch copy when
    /// this has not been called; call it once after bulk insertion to avoid
    /// the per-query copy.
    pub fn build(&mut self) {
        self.ensure_sorted();
    }

    /// The nearest indexed interval strictly to the right of `query`
    /// (smallest positive gap). Intervals overlapping the query are ignored.
    #[must_use]
    pub fn nearest_right(&self, query: &Interval) -> Option<NeighborEdge> {
        self.scan(query, true)
    }

    /// The nearest indexed interval strictly to the left of `query`.
    #[must_use]
    pub fn nearest_left(&self, query: &Interval) -> Option<NeighborEdge> {
        self.scan(query, false)
    }

    fn scan(&self, query: &Interval, right: bool) -> Option<NeighborEdge> {
        let items = if self.sorted {
            None
        } else {
            Some(self.sorted_items())
        };
        let items: &[(Interval, usize)] = items.as_deref().unwrap_or(&self.items);
        let mut best: Option<NeighborEdge> = None;
        for (iv, id) in items {
            let gap = match iv.gap_to(query) {
                Some(g) => g,
                None => continue, // overlapping or identical feature
            };
            let is_right = iv.lo() > query.hi();
            if is_right != right {
                continue;
            }
            if best.is_none_or(|b| gap < b.gap) {
                best = Some(NeighborEdge { id: *id, gap });
            }
        }
        best
    }

    /// All intervals whose gap to `query` is at most `radius` (excluding
    /// overlapping intervals), in insertion order. This is the "features
    /// within the radius of influence" query used to build OPC simulation
    /// windows.
    #[must_use]
    pub fn within(&self, query: &Interval, radius: Nm) -> Vec<NeighborEdge> {
        let mut out: Vec<NeighborEdge> = self
            .items
            .iter()
            .filter_map(|(iv, id)| {
                iv.gap_to(query)
                    .filter(|g| *g <= radius)
                    .map(|gap| NeighborEdge { id: *id, gap })
            })
            .collect();
        out.sort_by_key(|e| e.id);
        out
    }
}

impl FromIterator<Interval> for IntervalIndex {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> IntervalIndex {
        IntervalIndex::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalIndex {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(x: i64) -> Interval {
        Interval::new(Nm(x), Nm(x + 90))
    }

    fn build() -> IntervalIndex {
        let mut idx = IntervalIndex::from_intervals([line(0), line(300), line(900), line(2000)]);
        idx.build();
        idx
    }

    #[test]
    fn nearest_right_finds_smallest_gap() {
        let idx = build();
        let e = idx.nearest_right(&line(300)).unwrap();
        assert_eq!(e.gap, Nm(510));
        assert_eq!(e.id, 2);
    }

    #[test]
    fn nearest_left_finds_smallest_gap() {
        let idx = build();
        let e = idx.nearest_left(&line(300)).unwrap();
        assert_eq!(e.gap, Nm(210));
        assert_eq!(e.id, 0);
    }

    #[test]
    fn no_neighbor_on_open_side() {
        let idx = build();
        assert!(idx.nearest_left(&line(0)).is_none());
        assert!(idx.nearest_right(&line(2000)).is_none());
    }

    #[test]
    fn overlapping_features_are_not_neighbors() {
        let idx = build();
        // Query overlapping the feature at 300 ignores it but sees the others.
        let q = Interval::new(Nm(250), Nm(420));
        let left = idx.nearest_left(&q).unwrap();
        assert_eq!(left.id, 0);
        let right = idx.nearest_right(&q).unwrap();
        assert_eq!(right.id, 2);
    }

    #[test]
    fn within_radius_of_influence() {
        let idx = build();
        let hits = idx.within(&line(300), Nm(600));
        let ids: Vec<usize> = hits.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 2]);
        let hits = idx.within(&line(300), Nm(100));
        assert!(hits.is_empty());
    }

    #[test]
    fn lazy_queries_match_built_queries() {
        let lazy = IntervalIndex::from_intervals([line(900), line(0), line(300)]);
        let mut built = lazy.clone();
        built.build();
        let q = line(300);
        assert_eq!(lazy.nearest_left(&q), built.nearest_left(&q));
        assert_eq!(lazy.nearest_right(&q), built.nearest_right(&q));
    }

    #[test]
    fn collect_and_extend() {
        let mut idx: IntervalIndex = [line(0)].into_iter().collect();
        idx.extend([line(300)]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }
}
