use serde::{Deserialize, Serialize};

use crate::{GeomError, Layer, Nm, Rect, Shape, Transform};

/// A layout cell: a named collection of shapes within an outline.
///
/// # Examples
///
/// ```
/// use svt_geom::{CellLayout, Layer, Nm, Rect, Shape};
///
/// let mut cell = CellLayout::new("INVX1", Rect::new(Nm(0), Nm(0), Nm(600), Nm(2400)));
/// cell.push(Shape::new(Layer::Poly, Rect::new(Nm(255), Nm(200), Nm(345), Nm(2200))));
/// assert_eq!(cell.shapes_on(Layer::Poly).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellLayout {
    name: String,
    outline: Rect,
    shapes: Vec<Shape>,
}

impl CellLayout {
    /// Creates an empty cell with the given outline (placement boundary).
    #[must_use]
    pub fn new(name: impl Into<String>, outline: Rect) -> CellLayout {
        CellLayout {
            name: name.into(),
            outline,
            shapes: Vec::new(),
        }
    }

    /// Cell name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Placement outline.
    #[must_use]
    pub fn outline(&self) -> Rect {
        self.outline
    }

    /// Placement width of the cell.
    #[must_use]
    pub fn width(&self) -> Nm {
        self.outline.width()
    }

    /// Placement height of the cell.
    #[must_use]
    pub fn height(&self) -> Nm {
        self.outline.height()
    }

    /// Adds a shape.
    pub fn push(&mut self, shape: Shape) {
        self.shapes.push(shape);
    }

    /// All shapes.
    #[must_use]
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Mutable access to the shapes (used by OPC to bias edges in place).
    #[must_use]
    pub fn shapes_mut(&mut self) -> &mut [Shape] {
        &mut self.shapes
    }

    /// Shapes on one layer.
    pub fn shapes_on(&self, layer: Layer) -> impl Iterator<Item = &Shape> {
        self.shapes.iter().filter(move |s| s.layer == layer)
    }

    /// Validates that every shape lies within the outline expanded by
    /// `margin` (OPC dummies may legally hang outside the placement outline
    /// by up to the radius of influence).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ShapeOutsideOutline`] naming the first offending
    /// shape.
    pub fn validate(&self, margin: Nm) -> Result<(), GeomError> {
        let bounds = self.outline.expanded(margin);
        for (i, s) in self.shapes.iter().enumerate() {
            let r = s.rect;
            if !(bounds.contains(r.lo()) && bounds.contains(r.hi())) {
                return Err(GeomError::ShapeOutsideOutline {
                    cell: self.name.clone(),
                    index: i,
                });
            }
        }
        Ok(())
    }
}

/// A placed instance of a cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Instance name (unique within a layout).
    pub name: String,
    /// Name of the master cell.
    pub cell: String,
    /// Placement transform.
    pub transform: Transform,
}

impl Instance {
    /// Creates an instance.
    #[must_use]
    pub fn new(name: impl Into<String>, cell: impl Into<String>, transform: Transform) -> Instance {
        Instance {
            name: name.into(),
            cell: cell.into(),
            transform,
        }
    }

    /// The chip-coordinate bounding box of the placed instance.
    #[must_use]
    pub fn placed_bbox(&self) -> Rect {
        let w = self.transform.cell_width;
        let h = self.transform.cell_height;
        self.transform.apply_rect(Rect::new(Nm(0), Nm(0), w, h))
    }
}

/// A flat top-level layout: cell masters plus placed instances.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    cells: Vec<CellLayout>,
    instances: Vec<Instance>,
}

impl Layout {
    /// Creates an empty layout.
    #[must_use]
    pub fn new() -> Layout {
        Layout::default()
    }

    /// Registers a cell master. Replaces any master with the same name.
    pub fn add_cell(&mut self, cell: CellLayout) {
        if let Some(existing) = self.cells.iter_mut().find(|c| c.name() == cell.name()) {
            *existing = cell;
        } else {
            self.cells.push(cell);
        }
    }

    /// Adds a placed instance.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::UnknownCell`] if the referenced master has not
    /// been registered.
    pub fn add_instance(&mut self, instance: Instance) -> Result<(), GeomError> {
        if self.cell(&instance.cell).is_none() {
            return Err(GeomError::UnknownCell {
                cell: instance.cell.clone(),
            });
        }
        self.instances.push(instance);
        Ok(())
    }

    /// Looks up a cell master by name.
    #[must_use]
    pub fn cell(&self, name: &str) -> Option<&CellLayout> {
        self.cells.iter().find(|c| c.name() == name)
    }

    /// All registered cell masters.
    #[must_use]
    pub fn cells(&self) -> &[CellLayout] {
        &self.cells
    }

    /// All placed instances.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Flattens every imaged shape of every instance into chip coordinates.
    ///
    /// Only shapes on layers for which [`Layer::images`] holds are returned;
    /// the result is the photomask content the lithography engine consumes.
    #[must_use]
    pub fn flatten_mask(&self) -> Vec<Shape> {
        let mut out = Vec::new();
        for inst in &self.instances {
            let Some(master) = self.cell(&inst.cell) else {
                continue;
            };
            for s in master.shapes().iter().filter(|s| s.layer.images()) {
                out.push(Shape::new(s.layer, inst.transform.apply_rect(s.rect)));
            }
        }
        out
    }

    /// Bounding box of all placed instances, if any are placed.
    #[must_use]
    pub fn bbox(&self) -> Option<Rect> {
        self.instances
            .iter()
            .map(Instance::placed_bbox)
            .reduce(|a, b| a.hull(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Orientation, Point};

    fn inv_master() -> CellLayout {
        let mut c = CellLayout::new("INVX1", Rect::new(Nm(0), Nm(0), Nm(600), Nm(2400)));
        c.push(Shape::new(
            Layer::Poly,
            Rect::new(Nm(255), Nm(200), Nm(345), Nm(2200)),
        ));
        c.push(Shape::new(
            Layer::Diffusion,
            Rect::new(Nm(100), Nm(300), Nm(500), Nm(1000)),
        ));
        c
    }

    #[test]
    fn validate_accepts_contained_shapes() {
        assert!(inv_master().validate(Nm(0)).is_ok());
    }

    #[test]
    fn validate_rejects_escaped_shape() {
        let mut c = inv_master();
        c.push(Shape::new(
            Layer::Poly,
            Rect::new(Nm(-700), Nm(0), Nm(-650), Nm(100)),
        ));
        let err = c.validate(Nm(600)).unwrap_err();
        assert!(matches!(
            err,
            GeomError::ShapeOutsideOutline { index: 2, .. }
        ));
        // But a dummy hanging out within the margin is fine.
        let mut c2 = inv_master();
        c2.push(Shape::new(
            Layer::DummyPoly,
            Rect::new(Nm(-300), Nm(200), Nm(-210), Nm(2200)),
        ));
        assert!(c2.validate(Nm(600)).is_ok());
        assert!(c2.validate(Nm(0)).is_err());
    }

    #[test]
    fn layout_rejects_unknown_master() {
        let mut l = Layout::new();
        let t = Transform::at(Point::ORIGIN, Nm(600), Nm(2400));
        let err = l.add_instance(Instance::new("u1", "INVX1", t)).unwrap_err();
        assert!(matches!(err, GeomError::UnknownCell { .. }));
    }

    #[test]
    fn flatten_applies_transform_and_filters_layers() {
        let mut l = Layout::new();
        l.add_cell(inv_master());
        let t = Transform::new(
            Point::new(Nm(1000), Nm(0)),
            Orientation::MY,
            Nm(600),
            Nm(2400),
        );
        l.add_instance(Instance::new("u1", "INVX1", t)).unwrap();
        let mask = l.flatten_mask();
        // Diffusion does not image: only the poly gate remains.
        assert_eq!(mask.len(), 1);
        assert_eq!(mask[0].layer, Layer::Poly);
        // MY: x spans [600-345, 600-255] = [255, 345] -> +1000.
        assert_eq!(
            mask[0].rect,
            Rect::new(Nm(1255), Nm(200), Nm(1345), Nm(2200))
        );
    }

    #[test]
    fn add_cell_replaces_same_name() {
        let mut l = Layout::new();
        l.add_cell(inv_master());
        let replacement = CellLayout::new("INVX1", Rect::new(Nm(0), Nm(0), Nm(900), Nm(2400)));
        l.add_cell(replacement.clone());
        assert_eq!(l.cells().len(), 1);
        assert_eq!(l.cell("INVX1"), Some(&replacement));
    }

    #[test]
    fn bbox_covers_all_instances() {
        let mut l = Layout::new();
        l.add_cell(inv_master());
        let w = Nm(600);
        let h = Nm(2400);
        l.add_instance(Instance::new(
            "u1",
            "INVX1",
            Transform::at(Point::ORIGIN, w, h),
        ))
        .unwrap();
        l.add_instance(Instance::new(
            "u2",
            "INVX1",
            Transform::at(Point::new(Nm(2000), Nm(2400)), w, h),
        ))
        .unwrap();
        assert_eq!(l.bbox(), Some(Rect::new(Nm(0), Nm(0), Nm(2600), Nm(4800))));
        assert_eq!(Layout::new().bbox(), None);
    }
}
