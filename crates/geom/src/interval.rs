use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Nm;

/// A closed 1-D interval `[lo, hi]` on the nanometre grid.
///
/// Intervals describe the horizontal extent of poly features along a gate
/// cutline; the lithography and spacing code reasons almost entirely in one
/// dimension (the paper's proximity model is through-*pitch*).
///
/// # Examples
///
/// ```
/// use svt_geom::{Interval, Nm};
///
/// let a = Interval::new(Nm(0), Nm(90));
/// let b = Interval::new(Nm(240), Nm(330));
/// assert_eq!(a.gap_to(&b), Some(Nm(150)));
/// assert_eq!(a.center(), Nm(45));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    lo: Nm,
    hi: Nm,
}

impl Interval {
    /// Creates an interval from its endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: Nm, hi: Nm) -> Interval {
        assert!(lo <= hi, "inverted interval: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Creates the interval of a feature of width `width` centered at
    /// `center`. Odd widths are grown by one grid unit on the high side.
    #[must_use]
    pub fn centered(center: Nm, width: Nm) -> Interval {
        let half = width / 2;
        Interval::new(center - half, center - half + width)
    }

    /// Low endpoint.
    #[must_use]
    pub fn lo(&self) -> Nm {
        self.lo
    }

    /// High endpoint.
    #[must_use]
    pub fn hi(&self) -> Nm {
        self.hi
    }

    /// Length `hi - lo`.
    #[must_use]
    pub fn len(&self) -> Nm {
        self.hi - self.lo
    }

    /// Whether the interval is a single point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Midpoint (rounded toward `lo`).
    #[must_use]
    pub fn center(&self) -> Nm {
        self.lo + (self.hi - self.lo) / 2
    }

    /// Whether `x` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, x: Nm) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether two closed intervals share at least one point.
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The empty-space gap between two disjoint intervals, or `None` if they
    /// overlap or touch.
    #[must_use]
    pub fn gap_to(&self, other: &Interval) -> Option<Nm> {
        if other.lo > self.hi {
            Some(other.lo - self.hi)
        } else if self.lo > other.hi {
            Some(self.lo - other.hi)
        } else {
            None
        }
    }

    /// The intersection of two intervals, if any.
    #[must_use]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// The smallest interval covering both inputs.
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Translates by `dx`.
    #[must_use]
    pub fn shifted(&self, dx: Nm) -> Interval {
        Interval::new(self.lo + dx, self.hi + dx)
    }

    /// Grows both ends outward by `amount` (negative shrinks; the interval
    /// collapses to its center rather than inverting).
    #[must_use]
    pub fn expanded(&self, amount: Nm) -> Interval {
        let lo = self.lo - amount;
        let hi = self.hi + amount;
        if lo > hi {
            let c = self.center();
            Interval::new(c, c)
        } else {
            Interval::new(lo, hi)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let iv = Interval::new(Nm(10), Nm(100));
        assert_eq!(iv.lo(), Nm(10));
        assert_eq!(iv.hi(), Nm(100));
        assert_eq!(iv.len(), Nm(90));
        assert_eq!(iv.center(), Nm(55));
        assert!(!iv.is_empty());
        assert!(Interval::new(Nm(5), Nm(5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn rejects_inverted() {
        let _ = Interval::new(Nm(2), Nm(1));
    }

    #[test]
    fn centered_has_requested_width() {
        let iv = Interval::centered(Nm(100), Nm(90));
        assert_eq!(iv.len(), Nm(90));
        assert!(iv.contains(Nm(100)));
    }

    #[test]
    fn gap_is_symmetric_and_none_on_overlap() {
        let a = Interval::new(Nm(0), Nm(90));
        let b = Interval::new(Nm(240), Nm(330));
        assert_eq!(a.gap_to(&b), Some(Nm(150)));
        assert_eq!(b.gap_to(&a), Some(Nm(150)));
        let c = Interval::new(Nm(50), Nm(60));
        assert_eq!(a.gap_to(&c), None);
        // Touching intervals have zero gap.
        let d = Interval::new(Nm(90), Nm(120));
        assert_eq!(a.gap_to(&d), None);
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(Nm(0), Nm(90));
        let b = Interval::new(Nm(60), Nm(120));
        assert_eq!(a.intersection(&b), Some(Interval::new(Nm(60), Nm(90))));
        assert_eq!(a.hull(&b), Interval::new(Nm(0), Nm(120)));
        let far = Interval::new(Nm(500), Nm(600));
        assert_eq!(a.intersection(&far), None);
    }

    #[test]
    fn expanded_clamps_to_center() {
        let a = Interval::new(Nm(0), Nm(90));
        assert_eq!(a.expanded(Nm(10)), Interval::new(Nm(-10), Nm(100)));
        let collapsed = a.expanded(Nm(-100));
        assert!(collapsed.is_empty());
        assert_eq!(collapsed.lo(), a.center());
    }

    #[test]
    fn shifted_translates() {
        let a = Interval::new(Nm(0), Nm(90)).shifted(Nm(300));
        assert_eq!(a, Interval::new(Nm(300), Nm(390)));
    }
}
