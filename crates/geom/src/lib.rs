//! Geometry substrate for the `svt` workspace.
//!
//! All mask-level geometry in this workspace is expressed on an integer
//! nanometre grid ([`Nm`]), matching the database units of a typical 90 nm
//! layout database. The crate provides the primitives the lithography, OPC,
//! standard-cell, and placement crates build on:
//!
//! * [`Nm`], [`Point`], [`Rect`], [`Interval`] — coordinate primitives,
//! * [`Layer`] and [`Shape`] — the mask layer model,
//! * [`CellLayout`] and [`Instance`] — hierarchical layout,
//! * [`IntervalIndex`] — fast nearest-edge queries along a cut direction
//!   (used for neighbor-poly-spacing extraction and iso/dense
//!   classification).
//!
//! # Examples
//!
//! ```
//! use svt_geom::{Nm, Rect, Layer, Shape};
//!
//! let gate = Rect::new(Nm(0), Nm(0), Nm(90), Nm(600));
//! assert_eq!(gate.width(), Nm(90));
//! let shape = Shape::new(Layer::Poly, gate);
//! assert!(shape.layer.is_mask_layer());
//! ```

mod cell;
mod error;
mod index;
mod interval;
mod layer;
mod point;
mod rect;
mod shape;
pub mod text_format;
mod transform;
mod units;

pub use cell::{CellLayout, Instance, Layout};
pub use error::GeomError;
pub use index::{IntervalIndex, NeighborEdge};
pub use interval::Interval;
pub use layer::Layer;
pub use point::Point;
pub use rect::Rect;
pub use shape::Shape;
pub use transform::{Orientation, Transform};
pub use units::Nm;
