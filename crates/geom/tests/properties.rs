//! Property-based tests of the geometry substrate.

use proptest::prelude::*;

use svt_geom::{Interval, IntervalIndex, Nm, Orientation, Point, Rect, Transform};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -10_000i64..10_000,
        -10_000i64..10_000,
        0i64..5_000,
        0i64..5_000,
    )
        .prop_map(|(x, y, w, h)| Rect::new(Nm(x), Nm(y), Nm(x + w), Nm(y + h)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Applying the same mirror twice is the identity.
    #[test]
    fn mirrors_are_involutions(
        x in 0i64..2_000, y in 0i64..2_000, w in 10i64..400, h in 10i64..400,
        cw in 2_500i64..5_000, ch in 2_500i64..5_000,
        orient_idx in 0usize..4,
    ) {
        let orient = [Orientation::R0, Orientation::MY, Orientation::MX, Orientation::R180][orient_idx];
        let t = Transform::new(Point::ORIGIN, orient, Nm(cw), Nm(ch));
        let r = Rect::new(Nm(x), Nm(y), Nm(x + w), Nm(y + h));
        let twice = t.apply_rect(t.apply_rect(r));
        prop_assert_eq!(twice, r, "{:?} twice must be identity", orient);
    }

    /// Any orientation preserves rectangle dimensions.
    #[test]
    fn transforms_preserve_dimensions(
        x in 0i64..2_000, y in 0i64..2_000, w in 0i64..400, h in 0i64..400,
        ox in -5_000i64..5_000, oy in -5_000i64..5_000,
        orient_idx in 0usize..4,
    ) {
        let orient = [Orientation::R0, Orientation::MY, Orientation::MX, Orientation::R180][orient_idx];
        let t = Transform::new(Point::new(Nm(ox), Nm(oy)), orient, Nm(2_500), Nm(2_500));
        let r = Rect::new(Nm(x), Nm(y), Nm(x + w), Nm(y + h));
        let placed = t.apply_rect(r);
        prop_assert_eq!(placed.width(), r.width());
        prop_assert_eq!(placed.height(), r.height());
    }

    /// Rect intersection is commutative, contained, and consistent with
    /// overlap.
    #[test]
    fn rect_intersection_properties(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.overlaps(&b));
                prop_assert!(i.width() <= a.width() && i.width() <= b.width());
                prop_assert!(i.height() <= a.height() && i.height() <= b.height());
                prop_assert!(a.contains(i.lo()) && a.contains(i.hi()));
                prop_assert!(b.contains(i.lo()) && b.contains(i.hi()));
            }
            None => prop_assert!(!a.overlaps(&b)),
        }
    }

    /// The hull contains both inputs and is the smallest such rect on the
    /// corners.
    #[test]
    fn hull_contains_both(a in arb_rect(), b in arb_rect()) {
        let h = a.hull(&b);
        for r in [a, b] {
            prop_assert!(h.contains(r.lo()) && h.contains(r.hi()));
        }
        prop_assert!(h.width() <= a.width() + b.width() + (a.lo().x - b.lo().x).abs() + (a.hi().x - b.hi().x).abs());
    }

    /// `within(radius)` returns exactly the intervals whose gap qualifies.
    #[test]
    fn within_matches_definition(
        starts in prop::collection::vec(0i64..30_000, 1..30),
        q in 0i64..30_000,
        radius in 0i64..2_000,
    ) {
        let intervals: Vec<Interval> = starts.iter().map(|&s| Interval::new(Nm(s), Nm(s + 90))).collect();
        let index: IntervalIndex = intervals.iter().copied().collect();
        let query = Interval::new(Nm(q), Nm(q + 90));
        let hits = index.within(&query, Nm(radius));
        for (i, iv) in intervals.iter().enumerate() {
            let expected = iv.gap_to(&query).map(|g| g <= Nm(radius)).unwrap_or(false);
            let got = hits.iter().any(|e| e.id == i);
            prop_assert_eq!(expected, got, "interval {} mismatch", i);
        }
    }

    /// Nearest-left and nearest-right never return overlapping intervals
    /// and always return the minimal gap on their side.
    #[test]
    fn nearest_queries_are_minimal(
        starts in prop::collection::vec(0i64..30_000, 1..30),
        q in 0i64..30_000,
    ) {
        let intervals: Vec<Interval> = starts.iter().map(|&s| Interval::new(Nm(s), Nm(s + 90))).collect();
        let index: IntervalIndex = intervals.iter().copied().collect();
        let query = Interval::new(Nm(q), Nm(q + 90));
        if let Some(e) = index.nearest_right(&query) {
            let iv = intervals[e.id];
            prop_assert!(iv.lo() > query.hi());
            for other in &intervals {
                if other.lo() > query.hi() {
                    prop_assert!(other.lo() - query.hi() >= e.gap);
                }
            }
        }
    }

    /// Interval expansion then shrink by the same amount round-trips for
    /// non-degenerate cases.
    #[test]
    fn expand_shrink_round_trip(lo in -5_000i64..5_000, len in 10i64..2_000, amt in 0i64..500) {
        let iv = Interval::new(Nm(lo), Nm(lo + len));
        let round = iv.expanded(Nm(amt)).expanded(Nm(-amt));
        prop_assert_eq!(round, iv);
    }
}
