//! Shared data builders for the figure-regeneration binaries.
//!
//! Each `figN()` function computes exactly the numbers its binary prints,
//! so the binaries stay thin formatting shells and the golden-snapshot
//! tests (`tests/golden.rs`) pin the same values the user sees. Every
//! struct also flattens to an ordered `(key, value)` list via `scalars()`,
//! which is the unit of comparison for the golden fixtures.

use svt_core::{ArcLabel, VariationBudget};
use svt_litho::{bossung, pitch_sweep, BossungFamily, FocusExposureMatrix, PitchCdCurve, Process};
use svt_opc::{ModelOpc, OpcOptions};
use svt_stdcell::PitchCdTable;

use crate::signoff_simulator;

/// Fig. 1 — printed CD vs pitch at drawn 130 nm on the 130 nm process.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Drawn linewidth of the sweep, nm.
    pub drawn_nm: f64,
    /// The through-pitch CD curve.
    pub curve: PitchCdCurve,
    /// CD range over points with spacing < 600 nm.
    pub near_range: f64,
    /// CD range over points with spacing >= 600 nm (beyond the radius of
    /// influence).
    pub far_range: f64,
}

/// Builds the Fig. 1 dataset: a 25-point pitch sweep from 300 nm to
/// 1800 nm at nominal focus and dose.
///
/// # Errors
///
/// Propagates the first lithography simulation failure.
pub fn fig1() -> Result<Fig1, Box<dyn std::error::Error>> {
    let _span = svt_obs::span("bench.fig1");
    let sim = Process::nm130().simulator();
    let drawn = 130.0;
    let pitches: Vec<f64> = (0..=24).map(|i| 300.0 + 62.5 * f64::from(i)).collect();
    let curve = pitch_sweep(&sim, drawn, &pitches, 0.0, 1.0)?;
    let range = |v: &[f64]| -> f64 {
        let hi = v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let lo = v.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        if v.is_empty() {
            0.0
        } else {
            hi - lo
        }
    };
    let near: Vec<f64> = curve
        .points()
        .iter()
        .filter(|p| p.pitch_nm - drawn < 600.0)
        .map(|p| p.cd_nm)
        .collect();
    let far: Vec<f64> = curve
        .points()
        .iter()
        .filter(|p| p.pitch_nm - drawn >= 600.0)
        .map(|p| p.cd_nm)
        .collect();
    Ok(Fig1 {
        drawn_nm: drawn,
        near_range: range(&near),
        far_range: range(&far),
        curve,
    })
}

impl Fig1 {
    /// Flattens to ordered `(key, value)` pairs for golden snapshots.
    #[must_use]
    pub fn scalars(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for p in self.curve.points() {
            out.push((format!("cd[pitch={:.1}]", p.pitch_nm), p.cd_nm));
        }
        out.push(("cd_range".to_string(), self.curve.cd_range()));
        out.push(("near_range".to_string(), self.near_range));
        out.push(("far_range".to_string(), self.far_range));
        out
    }
}

/// Fig. 2 — Bossung families for dense and isolated 90 nm lines.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Dense 90 nm lines at 240 nm pitch (150 nm space): smiling curves.
    pub dense: BossungFamily,
    /// Isolated 90 nm lines: frowning curves.
    pub isolated: BossungFamily,
}

/// Builds the Fig. 2 dataset: CD through ±300 nm focus for five doses,
/// dense and isolated.
///
/// # Errors
///
/// Propagates lithography failures (a dose whose every focus point fails
/// to print).
pub fn fig2() -> Result<Fig2, Box<dyn std::error::Error>> {
    let _span = svt_obs::span("bench.fig2");
    let sim = Process::nm90().simulator();
    let focus: Vec<f64> = (-6..=6).map(|i| f64::from(i) * 50.0).collect();
    let doses = [0.94, 0.97, 1.0, 1.03, 1.06];
    Ok(Fig2 {
        dense: bossung(&sim, 90.0, Some(240.0), &focus, &doses)?,
        isolated: bossung(&sim, 90.0, None, &focus, &doses)?,
    })
}

impl Fig2 {
    /// Flattens to ordered `(key, value)` pairs for golden snapshots.
    /// Smile/frown shape is encoded as 1.0 / 0.0 so the fixture also pins
    /// the qualitative signature the paper cares about.
    #[must_use]
    pub fn scalars(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (label, family) in [("dense", &self.dense), ("iso", &self.isolated)] {
            for curve in &family.curves {
                for &(z, cd) in &curve.samples {
                    out.push((
                        format!("{label}.dose={:.2}.cd[focus={z:.0}]", curve.dose),
                        cd,
                    ));
                }
                out.push((
                    format!("{label}.dose={:.2}.smiling", curve.dose),
                    f64::from(u8::from(curve.is_smiling())),
                ));
            }
        }
        out
    }
}

/// Fig. 6 — measured systematic components and the corner-span
/// decomposition they imply.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Drawn CD, nm.
    pub drawn_nm: f64,
    /// Post-OPC through-pitch CD half-range.
    pub lvar_pitch: f64,
    /// FEM through-focus excursion.
    pub lvar_focus: f64,
    /// Per-pitch smile signature (`None` when the FEM lacks that pitch).
    pub smiles: Vec<(f64, Option<bool>)>,
    /// Pitch share of the variation budget.
    pub pitch_fraction: f64,
    /// Focus share of the variation budget.
    pub focus_fraction: f64,
    /// `(label, bc_nm, wc_nm, span_nm)` for the traditional corner model
    /// and the three aware arcs.
    pub corners: Vec<(&'static str, f64, f64, f64)>,
}

/// Builds the Fig. 6 dataset from the sign-off simulator: `lvar_pitch`
/// from a post-OPC pitch table, `lvar_focus` from a three-pitch FEM, and
/// the traditional-vs-aware corner spans under the resulting budget.
///
/// # Errors
///
/// Propagates OPC or lithography failures.
pub fn fig6() -> Result<Fig6, Box<dyn std::error::Error>> {
    let _span = svt_obs::span("bench.fig6");
    let sim = signoff_simulator();
    let drawn = 90.0;

    let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
    let table = PitchCdTable::build(
        &sim,
        &opc,
        drawn,
        &[150.0, 200.0, 250.0, 300.0, 400.0, 500.0, 700.0],
    )?;
    let lvar_pitch = table.lvar_pitch();

    let focus: Vec<f64> = (-4..=4).map(|i| f64::from(i) * 75.0).collect();
    let fem = FocusExposureMatrix::build(&sim, drawn, &[240.0, 280.0, 320.0], &focus, &[1.0])?;
    let lvar_focus = fem.lvar_focus();
    let smiles = [240.0, 280.0, 320.0]
        .iter()
        .map(|&p| (p, fem.smiles_at(p)))
        .collect();

    let delta = 0.15 * drawn;
    let budget = VariationBudget::new(
        0.15,
        (lvar_pitch / delta).min(0.5),
        (lvar_focus / delta).min(0.5),
    );
    let naive = budget.traditional_corners(drawn);
    let mut corners = vec![("traditional", naive.bc_nm, naive.wc_nm, naive.spread_nm())];
    for (name, label) in [
        ("aware_smile", ArcLabel::Smile),
        ("aware_frown", ArcLabel::Frown),
        ("aware_selfcomp", ArcLabel::SelfCompensated),
    ] {
        let c = budget.aware_corners(drawn, label);
        corners.push((name, c.bc_nm, c.wc_nm, c.spread_nm()));
    }

    Ok(Fig6 {
        drawn_nm: drawn,
        lvar_pitch,
        lvar_focus,
        smiles,
        pitch_fraction: budget.pitch_fraction,
        focus_fraction: budget.focus_fraction,
        corners,
    })
}

impl Fig6 {
    /// Flattens to ordered `(key, value)` pairs for golden snapshots.
    /// Smile signatures encode as 1.0 / 0.0 / -1.0 (smile / frown /
    /// pitch absent from the FEM).
    #[must_use]
    pub fn scalars(&self) -> Vec<(String, f64)> {
        let mut out = vec![
            ("lvar_pitch".to_string(), self.lvar_pitch),
            ("lvar_focus".to_string(), self.lvar_focus),
            ("pitch_fraction".to_string(), self.pitch_fraction),
            ("focus_fraction".to_string(), self.focus_fraction),
        ];
        for &(pitch, smiles) in &self.smiles {
            let v = match smiles {
                Some(true) => 1.0,
                Some(false) => 0.0,
                None => -1.0,
            };
            out.push((format!("smiles[pitch={pitch:.0}]"), v));
        }
        for &(name, bc, wc, span) in &self.corners {
            out.push((format!("{name}.bc"), bc));
            out.push((format!("{name}.wc"), wc));
            out.push((format!("{name}.span"), span));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_scalars_are_ordered_and_finite() {
        let data = fig1().expect("fig1 builds");
        let scalars = data.scalars();
        assert_eq!(scalars.len(), 25 + 3);
        assert!(scalars.iter().all(|(_, v)| v.is_finite()));
        assert_eq!(scalars[0].0, "cd[pitch=300.0]");
    }

    #[test]
    fn fig2_has_opposite_signatures() {
        let data = fig2().expect("fig2 builds");
        let nominal_dense = data
            .dense
            .curves
            .iter()
            .find(|c| (c.dose - 1.0).abs() < 1e-9)
            .expect("nominal dose present");
        let nominal_iso = data
            .isolated
            .curves
            .iter()
            .find(|c| (c.dose - 1.0).abs() < 1e-9)
            .expect("nominal dose present");
        assert_ne!(nominal_dense.is_smiling(), nominal_iso.is_smiling());
    }
}
