//! Shared scaffolding for the `svt` experiment binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index); this library centralizes the common
//! design-construction steps so each binary stays focused on its
//! experiment.

use svt_litho::{LithoSimulator, Process};
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile, MappedNetlist};
use svt_place::{place, Placement, PlacementOptions};
use svt_stdcell::Library;

pub mod figures;

/// A synthesized and placed benchmark, ready for OPC or timing work.
#[derive(Debug, Clone)]
pub struct Design {
    /// Benchmark name.
    pub name: String,
    /// Gate count of the pre-mapping netlist.
    pub source_gates: usize,
    /// The technology-mapped netlist.
    pub mapped: MappedNetlist,
    /// The row placement.
    pub placement: Placement,
}

/// Builds a placed design for an ISCAS85 benchmark name.
///
/// # Panics
///
/// Panics on unknown benchmark names or internal flow failures — the
/// experiment binaries treat these as fatal.
#[must_use]
pub fn build_design(library: &Library, name: &str) -> Design {
    let profile = BenchmarkProfile::iscas85(name)
        .unwrap_or_else(|| panic!("unknown ISCAS85 benchmark `{name}`"));
    build_design_from_profile(library, &profile)
}

/// Builds a placed design from any benchmark profile — the ISCAS85 suite
/// or the seeded scaling profiles (`s10k`, `s100k`, `s1m`) the
/// `bench_scale` binary sweeps. Same seed/utilization recipe as
/// [`build_design`], so the ISCAS85 designs are identical through either
/// entry point.
///
/// # Panics
///
/// Panics on internal flow failures — the experiment binaries treat
/// these as fatal.
#[must_use]
pub fn build_design_from_profile(library: &Library, profile: &BenchmarkProfile) -> Design {
    let netlist = generate_benchmark(profile);
    let mapped = technology_map(&netlist, library).expect("mapping the svt90 library succeeds");
    // Each testcase gets its own placement seed and utilization so the
    // context mixtures differ across the suite, as real placements would.
    let h = profile.seed;
    let options = PlacementOptions {
        seed: h,
        utilization: 0.62 + 0.04 * (h % 5) as f64,
        ..PlacementOptions::default()
    };
    let placement = place(&mapped, library, &options).expect("placement succeeds");
    Design {
        name: profile.name.clone(),
        source_gates: netlist.gates().len(),
        mapped,
        placement,
    }
}

/// The calibrated sign-off simulator shared by the experiments.
#[must_use]
pub fn signoff_simulator() -> LithoSimulator {
    Process::nm90().simulator()
}

/// The repository root, where experiment outputs (`BENCH_*.json`,
/// `BENCH_history.jsonl`) land regardless of which package built the
/// binary.
///
/// This library always compiles with manifest dir `crates/bench`, two
/// levels below the root; the strip keeps the result correct if the lib
/// is ever vendored elsewhere.
#[must_use]
pub fn repo_root() -> &'static std::path::Path {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    if manifest.ends_with("crates/bench") {
        manifest
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap_or(manifest)
    } else {
        manifest
    }
}

/// The five testcases of the paper's Tables 1 and 2.
pub const PAPER_TESTCASES: [&str; 5] = ["c432", "c880", "c1355", "c1908", "c3540"];

/// Renders a unit-width ASCII histogram bar.
#[must_use]
pub fn hbar(count: usize, max_count: usize, width: usize) -> String {
    if max_count == 0 {
        return String::new();
    }
    let n = (count * width).div_ceil(max_count);
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_builder_produces_consistent_artifacts() {
        let lib = Library::svt90();
        let d = build_design(&lib, "c432");
        assert_eq!(d.source_gates, 160);
        assert_eq!(d.placement.placed().len(), d.mapped.instances().len());
    }

    #[test]
    fn hbar_scales() {
        assert_eq!(hbar(10, 10, 4), "####");
        assert_eq!(hbar(5, 10, 4), "##");
        assert_eq!(hbar(0, 10, 4), "");
        assert_eq!(hbar(1, 0, 4), "");
    }
}
