//! Gates-vs-walltime/RSS scaling curve of the sign-off hot path.
//!
//! Sweeps the full aware-vs-traditional sign-off over c432 plus the
//! seeded scaling profiles (`s10k`, `s100k`, and — opt-in via
//! `SVT_SCALE_1M=1` — `s1m` at a million gates), recording per point the
//! design-build time, the cold sign-off wall time, and the process RSS.
//! The curve lands as the `"scale"` object of `BENCH_pipeline.json`
//! (appended after the sections `bench_pipeline` wrote), and the 100k
//! point's numbers append to `BENCH_history.jsonl` as `signoff_100k_ms`
//! / `peak_rss_100k_mb`, where `scripts/bench_compare.sh` gates the wall
//! time against regression like the other warm-path metrics.
//!
//! Each design is dropped before the next point runs, so the RSS column
//! tracks the sign-off footprint of one scale at a time (peak RSS is
//! process-monotonic; sweeping ascending keeps it dominated by the
//! current point).

use std::fmt::Write as _;
use std::time::Instant;

use svt_bench::{build_design_from_profile, repo_root};
use svt_core::{SignoffFlow, SignoffOptions};
use svt_litho::Process;
use svt_netlist::BenchmarkProfile;
use svt_stdcell::{expand_library, ExpandOptions, Library};

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

struct Point {
    name: String,
    gates: usize,
    build_ms: f64,
    signoff_ms: f64,
    rss_mb: f64,
    peak_rss_mb: f64,
    reduction_pct: f64,
}

fn main() {
    svt_obs::reinit_from_env();
    let threads_available = std::thread::available_parallelism().map_or(1, usize::from);
    let include_1m = std::env::var("SVT_SCALE_1M").is_ok_and(|v| v == "1");

    let lib = Library::svt90();
    let sim = Process::nm90().simulator();
    let expanded = expand_library(&lib, &sim, &ExpandOptions::fast()).expect("expansion succeeds");

    let mut profiles = vec![
        BenchmarkProfile::iscas85("c432").expect("known profile"),
        BenchmarkProfile::scaling("s10k").expect("known profile"),
        BenchmarkProfile::scaling("s100k").expect("known profile"),
    ];
    if include_1m {
        profiles.push(BenchmarkProfile::scaling("s1m").expect("known profile"));
    } else {
        println!("bench_scale: skipping the 1M-gate point (set SVT_SCALE_1M=1 to include it)");
    }

    let mut points: Vec<Point> = Vec::with_capacity(profiles.len());
    for (i, profile) in profiles.iter().enumerate() {
        println!(
            "[{}/{}] {}: generate + map + place...",
            i + 1,
            profiles.len(),
            profile.name
        );
        let start = Instant::now();
        let design = build_design_from_profile(&lib, profile);
        let build_ms = ms(start);
        let gates = design.mapped.instances().len();
        println!(
            "[{}/{}] {}: sign off {gates} mapped instances...",
            i + 1,
            profiles.len(),
            profile.name
        );
        let flow = SignoffFlow::new(&lib, &expanded, SignoffOptions::default());
        let start = Instant::now();
        let cmp = flow
            .run(&design.mapped, &design.placement)
            .expect("signoff succeeds");
        let signoff_ms = ms(start);
        #[allow(clippy::cast_precision_loss)]
        let (rss_mb, peak_rss_mb) = svt_obs::rss::sample().map_or((0.0, 0.0), |r| {
            (r.current_kb as f64 / 1024.0, r.peak_kb as f64 / 1024.0)
        });
        println!(
            "    {}: {signoff_ms:.0} ms, rss {rss_mb:.0} MB (peak {peak_rss_mb:.0}), \
             uncertainty reduction {:.1} %",
            profile.name,
            cmp.uncertainty_reduction_pct()
        );
        points.push(Point {
            name: profile.name.clone(),
            gates,
            build_ms,
            signoff_ms,
            rss_mb,
            peak_rss_mb,
            reduction_pct: cmp.uncertainty_reduction_pct(),
        });
        // `design` and `flow` drop here, bounding the next point's RSS.
    }

    // ---- Render the curve and splice it into BENCH_pipeline.json --------
    let mut scale = String::from("{\n    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            scale,
            "      {{ \"name\": \"{}\", \"gates\": {}, \"build_ms\": {:.1}, \
             \"signoff_ms\": {:.1}, \"rss_mb\": {:.1}, \"peak_rss_mb\": {:.1}, \
             \"uncertainty_reduction_pct\": {:.2} }}{sep}",
            p.name, p.gates, p.build_ms, p.signoff_ms, p.rss_mb, p.peak_rss_mb, p.reduction_pct
        );
    }
    let _ = writeln!(
        scale,
        "    ],\n    \"threads_available\": {threads_available},\n    \"includes_1m\": {include_1m}\n  }}"
    );

    let pipeline_path = repo_root().join("BENCH_pipeline.json");
    let mut text =
        std::fs::read_to_string(&pipeline_path).unwrap_or_else(|_| String::from("{\n}\n"));
    // Replace a previous run's "scale" object (always the last key).
    if let Some(cut) = text.find(",\n  \"scale\"") {
        text.truncate(cut);
        text.push_str("\n}\n");
    }
    let body = text.trim_end().strip_suffix('}').expect("JSON object");
    let mut out = body.trim_end().to_string();
    out.push_str(if out.ends_with('{') { "\n" } else { ",\n" });
    out.push_str("  \"scale\": ");
    out.push_str(&scale);
    out.push_str("}\n");
    std::fs::write(&pipeline_path, &out).expect("write BENCH_pipeline.json");
    println!("--- scale section of BENCH_pipeline.json ---\n  \"scale\": {scale}");

    // ---- Append the 100k point to the perf trajectory --------------------
    if let Some(p) = points.iter().find(|p| p.name == "s100k") {
        let unix_ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let history_line = format!(
            "{{\"unix_ts\": {unix_ts}, \"threads_available\": {threads_available}, \
             \"signoff_100k_ms\": {:.1}, \"peak_rss_100k_mb\": {:.1}}}\n",
            p.signoff_ms, p.peak_rss_mb
        );
        let history = repo_root().join("BENCH_history.jsonl");
        let mut log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history)
            .expect("open BENCH_history.jsonl");
        std::io::Write::write_all(&mut log, history_line.as_bytes())
            .expect("append BENCH_history.jsonl");
        println!("appended the 100k-gate numbers to BENCH_history.jsonl");
    }

    svt_obs::emit_if_enabled();
}
