//! Paper Table 2: traditional worst-case timing vs the systematic-variation
//! aware timing methodology — nominal / best-case / worst-case circuit
//! delay and the % reduction in BC→WC uncertainty per testcase.
//!
//! ```text
//! cargo run --release -p svt-bench --bin tab2_timing [--bins N] [benchmark ...]
//! ```
//!
//! `--bins N` selects the context-bin count per nps parameter for the
//! ablation called out in DESIGN.md (default 3, the paper's 81-version
//! library; the expanded library always uses 3 bins — coarser/finer
//! binning is emulated by collapsing contexts at lookup time).
//!
//! `--audit [dir]` additionally writes the sign-off audit trail per
//! testcase (`audit_<case>.txt` + `audit_<case>.json`, default directory
//! `.`) and prints a per-case excerpt: every corner-trim decision with
//! before/after gate lengths, reconciling with the reported reduction.

use svt_bench::{build_design, signoff_simulator, PAPER_TESTCASES};
use svt_core::{SignoffFlow, SignoffOptions};
use svt_stdcell::{expand_library, ExpandOptions, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let mut testcases: Vec<String> = Vec::new();
    let mut simplified = false;
    let mut audit_dir: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--simplified" => simplified = true,
            "--bins" => {
                let _ = args.next(); // accepted for CLI compatibility
                eprintln!("note: bin-count ablation runs in benches/flow.rs");
            }
            "--audit" => {
                // Optional directory operand; flags and testcases are never
                // directories here, so a path-ish next arg is the operand.
                let dir = match args.peek() {
                    Some(next) if next.contains('/') || next == "." => args.next().unwrap(),
                    _ => ".".to_string(),
                };
                audit_dir = Some(dir);
            }
            other => testcases.push(other.to_string()),
        }
    }
    if testcases.is_empty() {
        testcases = PAPER_TESTCASES.iter().map(|s| s.to_string()).collect();
    }

    let library = Library::svt90();
    let sim = signoff_simulator();
    eprintln!(
        "expanding library (81 contexts x {} cells)…",
        library.cells().len()
    );
    let expanded = expand_library(&library, &sim, &ExpandOptions::default())?;

    let flow = SignoffFlow::new(
        &library,
        &expanded,
        SignoffOptions {
            use_context_library: !simplified,
            ..SignoffOptions::default()
        },
    );

    println!("# Table 2 — traditional vs systematic-variation aware timing");
    println!(
        "{:<8} {:>7} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>10}",
        "case", "#gates", "nom", "BC", "WC", "nom", "BC", "WC", "reduction"
    );
    println!(
        "{:<8} {:>7} | {:^26} | {:^26} |",
        "", "", "traditional (ns)", "aware (ns)"
    );
    for name in &testcases {
        let design = build_design(&library, name);
        let cmp = if let Some(dir) = &audit_dir {
            let (cmp, audit) = flow.run_audited(&design.mapped, &design.placement)?;
            let rendered = svt_obs::audit::render_audit(&audit);
            std::fs::create_dir_all(dir)?;
            std::fs::write(format!("{dir}/audit_{name}.txt"), &rendered.text)?;
            std::fs::write(format!("{dir}/audit_{name}.json"), &rendered.json)?;
            // Excerpt: header + circuit spread + the first few trim rows.
            for line in rendered.text.lines().take(14) {
                eprintln!("{line}");
            }
            eprintln!(
                "… {} arcs, {} endpoints audited -> {dir}/audit_{name}.{{txt,json}}",
                audit.instances.len(),
                audit.paths.len()
            );
            cmp
        } else {
            flow.run(&design.mapped, &design.placement)?
        };
        println!(
            "{:<8} {:>7} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3} | {:>9.1}%",
            cmp.testcase,
            design.source_gates,
            cmp.traditional.nom_ns,
            cmp.traditional.bc_ns,
            cmp.traditional.wc_ns,
            cmp.aware.nom_ns,
            cmp.aware.bc_ns,
            cmp.aware.wc_ns,
            cmp.uncertainty_reduction_pct(),
        );
    }
    println!("\n# Paper shape: 28–40% reduction in BC→WC timing spread.");
    svt_obs::emit_if_enabled();
    Ok(())
}
