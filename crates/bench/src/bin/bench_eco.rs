//! Incremental-vs-full ECO re-sign-off benchmark.
//!
//! Builds the c3540 testcase (the suite's largest), signs it off once
//! (the ECO baseline), then times a single-cell resize two ways with
//! warm caches:
//!
//! * **full** — re-run `SignoffFlow::run_with_provenance` from scratch on
//!   the edited design, the way a non-incremental flow would re-sign-off;
//! * **incremental** — `EcoSession::apply`, which re-characterizes only
//!   the radius-of-influence dirty set and re-propagates only the edit's
//!   timing cones.
//!
//! Both paths produce bit-identical state (asserted here and proven in
//! `crates/eco/tests/differential.rs`); the point of this binary is the
//! wall-clock ratio. Appends `eco_full_ms` / `eco_incr_ms` /
//! `eco_speedup` to `BENCH_history.jsonl` at the repo root so
//! `scripts/bench_compare.sh` tracks the trajectory.

use std::time::Instant;

use svt_bench::{build_design, repo_root, signoff_simulator};
use svt_core::{SignoffFlow, SignoffOptions};
use svt_eco::{EcoEdit, EcoError, EcoSession};
use svt_stdcell::{expand_library, ExpandOptions, Library};

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let library = Library::svt90();
    let sim = signoff_simulator();
    let expanded =
        expand_library(&library, &sim, &ExpandOptions::default()).expect("library expansion");
    let design = build_design(&library, "c3540");
    let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());

    // Baseline sign-off; also warms every litho/characterization cache so
    // the full-rerun timing below is the *favourable* warm-path number.
    let t = Instant::now();
    let baseline = flow
        .run_with_provenance(&design.mapped, &design.placement)
        .expect("baseline sign-off");
    let baseline_ms = ms(t);
    let mut session = EcoSession::with_baseline(
        &flow,
        design.mapped.clone(),
        design.placement.clone(),
        baseline,
    )
    .expect("baseline session");

    // The edit models the typical late-stage ECO: upsize the driver of a
    // failing endpoint — a shallow-fan-out fix near the outputs, not a
    // root-of-the-cone rewire. Prefer an INVX1 driving a primary output;
    // fall back to any INVX1 with room for the wider master (rejected
    // drafts validate geometry without mutating, so probing is free).
    let outputs: std::collections::HashSet<&str> =
        design.mapped.outputs().iter().map(String::as_str).collect();
    let mut candidates: Vec<_> = design
        .mapped
        .instances()
        .iter()
        .filter(|i| i.cell == "INVX1")
        .collect();
    candidates.sort_by_key(|i| {
        let drives_po = i
            .connections
            .last()
            .is_some_and(|(_, net)| outputs.contains(net.as_str()));
        usize::from(!drives_po)
    });
    let mut applied = None;
    for inst in candidates {
        let edit = EcoEdit::ResizeCell {
            instance: inst.name.clone(),
            new_cell: "INVX2".into(),
        };
        let t = Instant::now();
        match session.apply(&edit) {
            Ok(delta) => {
                applied = Some((delta, ms(t)));
                break;
            }
            Err(EcoError::InvalidEdit { .. }) => continue,
            Err(e) => panic!("incremental re-sign-off failed: {e}"),
        }
    }
    let (delta, eco_incr_ms) = applied.expect("some INVX1 in c3540 has room to upsize");

    let t = Instant::now();
    let full = flow
        .run_with_provenance(session.netlist(), session.placement())
        .expect("full re-sign-off");
    let eco_full_ms = ms(t);
    assert_eq!(
        full.comparison,
        *session.comparison(),
        "incremental state diverged from the full rebuild"
    );

    let eco_speedup = eco_full_ms / eco_incr_ms;
    println!(
        "--- bench_eco: {} ({} gates) ---",
        design.name,
        design.mapped.instances().len()
    );
    println!("baseline cold sign-off     {baseline_ms:9.3} ms");
    println!("full re-sign-off (warm)    {eco_full_ms:9.3} ms");
    println!("incremental apply          {eco_incr_ms:9.3} ms");
    println!("speedup                    {eco_speedup:9.1}x");
    println!();
    println!("edit: {}", delta.edit);
    println!(
        "dirty: {} instance(s) recharacterized across {} row(s), {} pitch rows invalidated",
        delta.recharacterized.len(),
        delta.rows_extracted.len(),
        delta.pitch_rows_invalidated
    );
    println!(
        "cones: {} forward instance(s), {} backward net(s) across 6 corners",
        delta.forward_instances, delta.backward_nets
    );
    println!(
        "endpoints moved: {} of {} x 6 corners; spread gap delta {:+.6} ns; \
         uncertainty reduction delta {:+.4} pct-points",
        delta.endpoint_deltas.len(),
        session.netlist().outputs().len(),
        delta.spread_gap_delta_ns(),
        delta.uncertainty_reduction_delta_pct()
    );
    println!();
    println!("{}", delta.delta_audit.render_text());

    assert!(
        eco_speedup >= 10.0,
        "incremental ECO must beat a warm full re-sign-off by >= 10x \
         (got {eco_speedup:.1}x: full {eco_full_ms:.3} ms vs incremental {eco_incr_ms:.3} ms)"
    );

    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let history_line = format!(
        "{{\"unix_ts\": {unix_ts}, \"eco_full_ms\": {eco_full_ms:.3}, \
         \"eco_incr_ms\": {eco_incr_ms:.3}, \"eco_speedup\": {eco_speedup:.1}}}\n"
    );
    let history = repo_root().join("BENCH_history.jsonl");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .expect("open BENCH_history.jsonl");
    std::io::Write::write_all(&mut log, history_line.as_bytes())
        .expect("append BENCH_history.jsonl");
    println!("appended eco numbers to BENCH_history.jsonl");
}
