//! Warm-start snapshot benchmark: builds the svt90 stack cold, captures
//! it into a versioned `svt-snap` container (`docs/SNAPSHOT_FORMAT.md`),
//! and times a full restore — parse, fingerprint check, cache preloads —
//! against the cold build it replaces. The restored stack then re-runs
//! the c432 sign-off and must reproduce the cold comparison and audit
//! bit-for-bit: a snapshot may only skip work, never change a result.
//!
//! Emits `BENCH_snapshot.json` at the repo root and appends
//! `snapshot_restore_ms` / `snapshot_size_mb` to `BENCH_history.jsonl`,
//! where `scripts/bench_compare.sh` gates them against regression.

use std::fmt::Write as _;
use std::time::Instant;

use svt_core::snapshot::{stack_fingerprint, PipelineSnapshot};
use svt_core::{SignoffFlow, SignoffOptions};
use svt_litho::{clear_litho_caches, FocusExposureMatrix, Process};
use svt_stdcell::{clear_expand_caches, expand_library, ExpandOptions, Library};

use svt_bench::repo_root;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn main() {
    svt_obs::reinit_from_env();
    let process = Process::nm90();
    let sim = process.simulator();
    let library = Library::svt90();
    let options = ExpandOptions::fast();
    let fingerprint = stack_fingerprint(&sim, &library, &options);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"fingerprint\": \"{fingerprint:016x}\",");

    // ---- Cold build: what a snapshot-less boot pays ---------------------
    println!("[1/4] cold build (expand + FEM + c432 signoff)...");
    clear_litho_caches();
    clear_expand_caches();
    let start = Instant::now();
    let expanded = expand_library(&library, &sim, &options).expect("expansion succeeds");
    let cold_expand_ms = ms(start);
    let focus: Vec<f64> = (-4..=4).map(|i| f64::from(i) * 75.0).collect();
    let start = Instant::now();
    let fem =
        FocusExposureMatrix::build(&sim, 90.0, &[240.0, 320.0, f64::INFINITY], &focus, &[1.0])
            .expect("FEM build succeeds");
    let cold_fem_ms = ms(start);
    let design = svt_bench::build_design(&library, "c432");
    let flow = SignoffFlow::new(&library, &expanded, SignoffOptions::default());
    let start = Instant::now();
    let (cold_cmp, cold_audit) = flow
        .run_audited(&design.mapped, &design.placement)
        .expect("cold signoff succeeds");
    let cold_signoff_ms = ms(start);
    let _ = writeln!(
        json,
        "  \"cold\": {{ \"expand_ms\": {cold_expand_ms:.3}, \"fem_ms\": {cold_fem_ms:.3}, \"signoff_ms\": {cold_signoff_ms:.3} }},"
    );

    // ---- Capture --------------------------------------------------------
    println!("[2/4] capture + write container...");
    let path =
        std::env::temp_dir().join(format!("svt_bench_snapshot_{}.svtsnap", std::process::id()));
    let start = Instant::now();
    let snapshot = PipelineSnapshot::capture(&expanded, Some(&fem), Some(&flow));
    let size_bytes = snapshot
        .write_file(&path, fingerprint)
        .expect("snapshot write succeeds");
    let capture_ms = ms(start);
    #[allow(clippy::cast_precision_loss)]
    let snapshot_size_mb = size_bytes as f64 / (1024.0 * 1024.0);
    let _ = writeln!(
        json,
        "  \"capture\": {{ \"ms\": {capture_ms:.3}, \"size_bytes\": {size_bytes}, \"size_mb\": {snapshot_size_mb:.2} }},"
    );
    drop(flow);

    // ---- Restore: what a `svtd --snapshot` boot pays instead ------------
    // Clearing the process-wide memo caches makes the preloads below do
    // real insertion work, as they would in a fresh process.
    println!("[3/4] timed restore (parse + validate + preload)...");
    clear_expand_caches();
    let start = Instant::now();
    let restored =
        PipelineSnapshot::read_file(&path, fingerprint).expect("snapshot restore succeeds");
    let expand_entries = restored.preload_expand_caches();
    let restored_flow = SignoffFlow::new(&library, &restored.expanded, SignoffOptions::default());
    let flow_entries = restored.preload_flow(&restored_flow);
    let snapshot_restore_ms = ms(start);
    assert_eq!(restored.expanded, expanded, "restored library differs");
    assert_eq!(restored.fem.as_ref(), Some(&fem), "restored FEM differs");
    assert!(expand_entries > 0, "no expand-cache entries restored");
    assert!(flow_entries > 0, "no flow-cache entries restored");
    let _ = writeln!(
        json,
        "  \"restore\": {{ \"ms\": {snapshot_restore_ms:.3}, \"expand_entries\": {expand_entries}, \"flow_entries\": {flow_entries}, \"speedup_vs_cold_expand\": {:.1} }},",
        cold_expand_ms / snapshot_restore_ms
    );

    // ---- Differential: restored sign-off must be bit-identical ----------
    println!("[4/4] differential signoff on restored stack...");
    let start = Instant::now();
    let (warm_cmp, warm_audit) = restored_flow
        .run_audited(&design.mapped, &design.placement)
        .expect("restored signoff succeeds");
    let warm_signoff_ms = ms(start);
    assert_eq!(warm_cmp, cold_cmp, "restored signoff diverged from cold");
    assert_eq!(
        warm_audit.render_text(),
        cold_audit.render_text(),
        "restored audit trail diverged from cold"
    );
    let _ = writeln!(
        json,
        "  \"differential\": {{ \"warm_signoff_ms\": {warm_signoff_ms:.3}, \"bit_identical\": true }}"
    );
    std::fs::remove_file(&path).ok();

    json.push_str("}\n");
    let out = repo_root().join("BENCH_snapshot.json");
    std::fs::write(out, &json).expect("write BENCH_snapshot.json");
    println!("--- BENCH_snapshot.json ---\n{json}");

    // Perf trajectory: restore latency and container size are the two
    // numbers the warm-start story stands on, so both are gated by
    // scripts/bench_compare.sh against the last run that carried them.
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let history_line = format!(
        "{{\"unix_ts\": {unix_ts}, \"snapshot_restore_ms\": {snapshot_restore_ms:.3}, \
         \"snapshot_size_mb\": {snapshot_size_mb:.2}}}\n"
    );
    let history = repo_root().join("BENCH_history.jsonl");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .expect("open BENCH_history.jsonl");
    std::io::Write::write_all(&mut log, history_line.as_bytes())
        .expect("append BENCH_history.jsonl");
    println!("appended snapshot numbers to BENCH_history.jsonl");

    svt_obs::emit_if_enabled();
}
