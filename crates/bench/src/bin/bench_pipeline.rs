//! End-to-end pipeline benchmark for the execution layer (thread pool +
//! memo caches): aerial imaging, library expansion, FEM build, full
//! signoff, and the observability layer's overhead, each timed at 1
//! worker against 8 workers and with cold against warm caches. Emits
//! `BENCH_pipeline.json` at the repo root, including a full `svt-obs`
//! snapshot of the traced sign-off run.
//!
//! Timing uses `std::time::Instant` only — no external bench harness —
//! so the binary runs in the offline build. Cache state is controlled
//! explicitly via `svt_litho::clear_litho_caches`, and every number is
//! labelled cold/warm so single-core hosts (where pure thread-level
//! speedup is impossible) still report honestly.

use std::fmt::Write as _;
use std::time::Instant;

use svt_core::{SignoffFlow, SignoffOptions};
use svt_litho::{clear_litho_caches, FocusExposureMatrix, MaskCutline, Process};
use svt_obs::alloc::{self, CountingAlloc};
use svt_obs::TraceMode;
use svt_stdcell::{clear_expand_caches, expand_library, ExpandOptions, Library};

// Route the benchmark's own heap traffic through the counting allocator
// so the memory section below can report what a sign-off run allocates;
// inert (one relaxed load per allocation) until `alloc::set_active`.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

use svt_bench::repo_root;

fn clear_all_caches() {
    clear_litho_caches();
    clear_expand_caches();
}

fn main() {
    // Latch the user's SVT_TRACE choice now: the overhead section below
    // overrides the mode explicitly, so the env mode is restored before the
    // final emit (a `chrome:` run gets its Perfetto trace of the real
    // benchmark sections, not of the overhead loop).
    svt_obs::reinit_from_env();
    let env_mode = svt_obs::mode();
    let threads_available = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads_available\": {threads_available},");

    let process = Process::nm90();
    let sim = process.simulator();

    // ---- Aerial image: transfer-table + FFT-plan caches -----------------
    println!("[1/7] aerial image (cold vs warm transfer tables)...");
    clear_litho_caches();
    let lines: Vec<(f64, f64)> = (-6..=6)
        .map(|k| {
            let c = f64::from(k) * 250.0;
            (c - 45.0, c + 45.0)
        })
        .collect();
    let mask = MaskCutline::from_lines(-2048.0, 4096.0, 2.0, &lines).expect("valid mask");
    let start = Instant::now();
    let cold_img = sim.aerial_image(&mask, 120.0);
    let aerial_cold_ms = ms(start);
    let reps = 20;
    let start = Instant::now();
    for _ in 0..reps {
        let warm_img = sim.aerial_image(&mask, 120.0);
        assert_eq!(warm_img, cold_img, "warm aerial image must be identical");
    }
    let aerial_warm_ms = ms(start) / f64::from(reps);
    let _ = writeln!(
        json,
        "  \"aerial_image\": {{ \"cold_ms\": {aerial_cold_ms:.3}, \"warm_ms\": {aerial_warm_ms:.3}, \"speedup_warm_vs_cold\": {:.2} }},",
        aerial_cold_ms / aerial_warm_ms
    );

    // ---- Library expansion: pool + CD memo ------------------------------
    // Default ExpandOptions (7-spacing table), 4 cells.
    println!("[2/7] expand_library, 4 cells, default options...");
    let full = Library::svt90();
    let cells: Vec<_> = full
        .cells()
        .iter()
        .filter(|c| matches!(c.name(), "INVX1" | "INVX2" | "NAND2X1" | "NOR2X1"))
        .cloned()
        .collect();
    let lib4 = Library::from_cells("svt90_bench4", cells);
    let opts = |threads: Option<usize>| ExpandOptions {
        threads,
        ..ExpandOptions::default()
    };

    clear_all_caches();
    let start = Instant::now();
    let expanded_1t = expand_library(&lib4, &sim, &opts(Some(1))).expect("expansion succeeds");
    let expand_1t_cold_ms = ms(start);

    let start = Instant::now();
    let expanded_8t_warm = expand_library(&lib4, &sim, &opts(Some(8))).expect("expansion succeeds");
    let expand_8t_warm_ms = ms(start);

    clear_all_caches();
    let start = Instant::now();
    let expanded_8t_cold = expand_library(&lib4, &sim, &opts(Some(8))).expect("expansion succeeds");
    let expand_8t_cold_ms = ms(start);

    assert_eq!(
        expanded_1t, expanded_8t_warm,
        "thread count changed results"
    );
    assert_eq!(expanded_1t, expanded_8t_cold, "cache state changed results");
    let _ = writeln!(
        json,
        "  \"expand_library\": {{ \"cells\": 4, \"variants\": {}, \"threads_1_cold_ms\": {expand_1t_cold_ms:.3}, \"threads_8_cold_ms\": {expand_8t_cold_ms:.3}, \"threads_8_warm_ms\": {expand_8t_warm_ms:.3}, \"speedup_8t_warm_vs_1t_cold\": {:.2} }},",
        expanded_1t.len(),
        expand_1t_cold_ms / expand_8t_warm_ms
    );

    // ---- Focus-exposure matrix: CD memo ---------------------------------
    println!("[3/7] focus-exposure matrix (cold vs warm rebuild)...");
    let focus: Vec<f64> = (-4..=4).map(|i| f64::from(i) * 75.0).collect();
    let pitches = [240.0, 320.0, 480.0, f64::INFINITY];
    let doses = [0.95, 1.0, 1.05];
    clear_litho_caches();
    let start = Instant::now();
    let fem_cold = FocusExposureMatrix::build(&sim, 90.0, &pitches, &focus, &doses)
        .expect("FEM build succeeds");
    let fem_cold_ms = ms(start);
    let start = Instant::now();
    let fem_warm = FocusExposureMatrix::build(&sim, 90.0, &pitches, &focus, &doses)
        .expect("FEM rebuild succeeds");
    let fem_warm_ms = ms(start);
    assert_eq!(fem_cold, fem_warm, "warm FEM rebuild must be identical");
    let _ = writeln!(
        json,
        "  \"fem_build\": {{ \"pitches\": {}, \"cold_ms\": {fem_cold_ms:.3}, \"warm_ms\": {fem_warm_ms:.3}, \"speedup_warm_vs_cold\": {:.2} }},",
        pitches.len(),
        fem_cold_ms / fem_warm_ms
    );

    // ---- Full signoff ----------------------------------------------------
    println!("[4/7] full signoff flow on c432...");
    let expanded = expand_library(&full, &sim, &ExpandOptions::fast()).expect("expansion succeeds");
    let design = svt_bench::build_design(&full, "c432");
    let run_with = |threads: usize| {
        std::env::set_var("SVT_THREADS", threads.to_string());
        let flow = SignoffFlow::new(&full, &expanded, SignoffOptions::default());
        let start = Instant::now();
        let cmp = flow
            .run(&design.mapped, &design.placement)
            .expect("signoff succeeds");
        (ms(start), cmp)
    };
    let (signoff_1t_ms, cmp_1t) = run_with(1);
    let (signoff_8t_ms, cmp_8t) = run_with(8);
    std::env::remove_var("SVT_THREADS");
    assert_eq!(cmp_1t, cmp_8t, "thread count changed signoff results");
    let _ = writeln!(
        json,
        "  \"signoff_c432\": {{ \"gates\": {}, \"threads_1_ms\": {signoff_1t_ms:.3}, \"threads_8_ms\": {signoff_8t_ms:.3}, \"uncertainty_reduction_pct\": {:.2} }},",
        cmp_1t.gates,
        cmp_1t.uncertainty_reduction_pct()
    );

    // ---- Memory: allocation volume + peak RSS ---------------------------
    // One *warm* sign-off with the allocation hook live: a warm-up run
    // fills the flow's memoized state (characterizations, interned
    // topology, scratch arenas), then the counters are reset so this
    // section reports the steady-state hot path in isolation — not
    // residue from earlier sections or the cache-filling cold run. The
    // warm allocation count is near-deterministic, so it is gated in
    // scripts/bench_compare.sh; RSS stays informational.
    println!("[5/7] memory (alloc totals + peak RSS during warm signoff)...");
    let flow = SignoffFlow::new(&full, &expanded, SignoffOptions::default());
    let cmp_warmup = flow
        .run(&design.mapped, &design.placement)
        .expect("signoff succeeds");
    assert_eq!(cmp_1t, cmp_warmup, "warm-up changed signoff results");
    alloc::reset();
    alloc::set_active(true);
    let cmp_mem = flow
        .run(&design.mapped, &design.placement)
        .expect("signoff succeeds");
    alloc::set_active(false);
    let (signoff_allocs, signoff_bytes) = alloc::totals();
    assert_eq!(cmp_1t, cmp_mem, "alloc accounting changed signoff results");
    #[allow(clippy::cast_precision_loss)]
    let signoff_alloc_mb = signoff_bytes as f64 / (1024.0 * 1024.0);
    #[allow(clippy::cast_precision_loss)]
    let (rss_mb, peak_rss_mb) = svt_obs::rss::sample().map_or((0.0, 0.0), |r| {
        (r.current_kb as f64 / 1024.0, r.peak_kb as f64 / 1024.0)
    });
    let _ = writeln!(
        json,
        "  \"memory\": {{ \"signoff_allocs\": {signoff_allocs}, \"signoff_alloc_mb\": {signoff_alloc_mb:.1}, \"rss_mb\": {rss_mb:.1}, \"peak_rss_mb\": {peak_rss_mb:.1} }},"
    );

    // ---- Observability overhead -----------------------------------------
    // The full sign-off flow, traced and untraced: it crosses thousands of
    // span sites per run (per-corner, per-instance) plus the pool counters
    // and memo probes, so the delta bounds what tracing costs a real run.
    // The off path must stay within noise of free (a single relaxed atomic
    // load per call site); the measured percentage is recorded so
    // regressions show up in the committed JSON.
    println!("[6/7] observability overhead (SVT_TRACE=off vs summary)...");
    let overhead_reps = 10;
    let time_trace = |mode: TraceMode| {
        svt_obs::set_mode(mode);
        let start = Instant::now();
        for _ in 0..overhead_reps {
            let cmp = flow
                .run(&design.mapped, &design.placement)
                .expect("signoff succeeds");
            assert_eq!(cmp, cmp_1t, "trace mode changed signoff results");
        }
        ms(start) / f64::from(overhead_reps)
    };
    let obs_off_ms = time_trace(TraceMode::Off);
    let obs_summary_ms = time_trace(TraceMode::Summary);
    let obs_overhead_pct = 100.0 * (obs_summary_ms - obs_off_ms) / obs_off_ms;
    let _ = writeln!(
        json,
        "  \"obs_overhead\": {{ \"workload\": \"signoff_c432\", \"trace_off_ms\": {obs_off_ms:.3}, \"trace_summary_ms\": {obs_summary_ms:.3}, \"summary_overhead_pct\": {obs_overhead_pct:.2} }},"
    );

    // ---- Continuous profiler + TSDB sampler overhead --------------------
    // The always-on long-horizon layer: summary tracing PLUS the stack
    // profiler folding every span and a live sampler scraping the
    // registry into the tiered rings every 100 ms — the exact
    // configuration `svtd` ships with. Measured against the summary-only
    // time above so the percentage isolates what the profiler and
    // sampler themselves add on top of span collection. Gated by an
    // absolute threshold in scripts/bench_compare.sh (a relative gate on
    // a near-zero baseline would trip on timer noise).
    println!("[7/7] continuous profiler + sampler overhead (vs summary tracing)...");
    svt_obs::set_mode(TraceMode::Summary);
    svt_obs::profile::reset();
    svt_obs::profile::set_enabled(true);
    let sampler = svt_obs::tsdb::Sampler::spawn(
        svt_obs::tsdb::global(),
        std::time::Duration::from_millis(100),
        vec![],
    );
    let start = Instant::now();
    for _ in 0..overhead_reps {
        let cmp = flow
            .run(&design.mapped, &design.placement)
            .expect("signoff succeeds");
        assert_eq!(cmp, cmp_1t, "profiler changed signoff results");
    }
    let profile_on_ms = ms(start) / f64::from(overhead_reps);
    sampler.stop();
    svt_obs::profile::set_enabled(false);
    let profile_stacks = svt_obs::profile::snapshot().len();
    svt_obs::set_mode(TraceMode::Off);
    assert!(
        profile_stacks > 0,
        "profiler collected no stacks during the traced runs"
    );
    let profile_overhead_pct = 100.0 * (profile_on_ms - obs_summary_ms) / obs_summary_ms;
    let _ = writeln!(
        json,
        "  \"profile_overhead\": {{ \"workload\": \"signoff_c432\", \"summary_ms\": {obs_summary_ms:.3}, \"profile_on_ms\": {profile_on_ms:.3}, \"stacks\": {profile_stacks}, \"profile_overhead_pct\": {profile_overhead_pct:.2} }},"
    );

    // One traced sign-off run, snapshotted into the report so the committed
    // JSON shows the span tree and cache hit rates of the real pipeline.
    svt_obs::registry().reset_metrics();
    svt_obs::set_mode(TraceMode::Summary);
    let cmp_traced = flow
        .run(&design.mapped, &design.placement)
        .expect("traced signoff succeeds");
    assert_eq!(cmp_1t, cmp_traced, "trace mode changed signoff results");
    svt_obs::set_mode(TraceMode::Off);
    let snapshot = svt_obs::registry().snapshot().to_json();
    let _ = writeln!(json, "  \"observability\": {}", snapshot.trim_end());

    json.push_str("}\n");
    let out = repo_root().join("BENCH_pipeline.json");
    std::fs::write(out, &json).expect("write BENCH_pipeline.json");
    println!("--- BENCH_pipeline.json ---\n{json}");

    // Perf trajectory: append the warm-path numbers of this run to the
    // history log. `scripts/bench_compare.sh` diffs the two newest lines
    // and fails `scripts/check.sh` on a >20 % warm-path regression.
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let history_line = format!(
        "{{\"unix_ts\": {unix_ts}, \"threads_available\": {threads_available}, \
         \"aerial_warm_ms\": {aerial_warm_ms:.3}, \"expand_8t_warm_ms\": {expand_8t_warm_ms:.3}, \
         \"fem_warm_ms\": {fem_warm_ms:.3}, \"signoff_8t_ms\": {signoff_8t_ms:.3}, \
         \"obs_off_ms\": {obs_off_ms:.3}, \"obs_overhead_pct\": {obs_overhead_pct:.2}, \
         \"profile_overhead_pct\": {profile_overhead_pct:.2}, \
         \"signoff_alloc_mb\": {signoff_alloc_mb:.1}, \"peak_rss_mb\": {peak_rss_mb:.1}}}\n"
    );
    let history = repo_root().join("BENCH_history.jsonl");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .expect("open BENCH_history.jsonl");
    std::io::Write::write_all(&mut log, history_line.as_bytes())
        .expect("append BENCH_history.jsonl");
    println!("appended warm-path numbers to BENCH_history.jsonl");

    // Restore the env-selected mode and emit its artifact (chrome trace,
    // prometheus exposition, JSON snapshot, or summary tree).
    svt_obs::set_mode(env_mode);
    svt_obs::emit_if_enabled();
}
