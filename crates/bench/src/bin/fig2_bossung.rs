//! Paper Fig. 2: Bossung plot — linewidth vs defocus for dense 90 nm lines
//! at 150 nm spacing (smiling) and isolated 90 nm lines (frowning), for
//! several exposure doses.
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig2_bossung
//! ```

use svt_bench::figures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let data = figures::fig2()?;
    let focus: Vec<f64> = (-6..=6).map(|i| f64::from(i) * 50.0).collect();

    println!("# Fig. 2 — Bossung: CD vs defocus (193 nm stepper, annular 0.55/0.85)");
    for (label, family) in [
        ("dense 90 nm lines / 150 nm space", &data.dense),
        ("isolated 90 nm lines", &data.isolated),
    ] {
        println!("\n## {label}");
        print!("{:>6}", "dose");
        for z in &focus {
            print!(" {z:>7.0}");
        }
        println!("   shape");
        for curve in &family.curves {
            print!("{:>6.2}", curve.dose);
            for &z in &focus {
                let cd = curve
                    .samples
                    .iter()
                    .find(|(zz, _)| (zz - z).abs() < 1e-9)
                    .map(|(_, cd)| *cd);
                match cd {
                    Some(cd) => print!(" {cd:>7.1}"),
                    None => print!(" {:>7}", "-"),
                }
            }
            println!("   {}", if curve.is_smiling() { "smile" } else { "frown" });
        }
    }
    println!("\n# Expected shape (paper): dense smiles (CD grows off focus), isolated frowns.");
    svt_obs::emit_if_enabled();
    Ok(())
}
