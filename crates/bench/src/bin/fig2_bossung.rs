//! Paper Fig. 2: Bossung plot — linewidth vs defocus for dense 90 nm lines
//! at 150 nm spacing (smiling) and isolated 90 nm lines (frowning), for
//! several exposure doses.
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig2_bossung
//! ```

use svt_litho::{bossung, Process};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = Process::nm90().simulator();
    let focus: Vec<f64> = (-6..=6).map(|i| i as f64 * 50.0).collect();
    let doses = [0.94, 0.97, 1.0, 1.03, 1.06];

    println!("# Fig. 2 — Bossung: CD vs defocus (193 nm stepper, annular 0.55/0.85)");
    for (label, pitch) in [
        ("dense 90 nm lines / 150 nm space", Some(240.0)),
        ("isolated 90 nm lines", None),
    ] {
        println!("\n## {label}");
        print!("{:>6}", "dose");
        for z in &focus {
            print!(" {:>7.0}", z);
        }
        println!("   shape");
        let family = bossung(&sim, 90.0, pitch, &focus, &doses)?;
        for curve in &family.curves {
            print!("{:>6.2}", curve.dose);
            let mut col = 0usize;
            for &z in &focus {
                let cd = curve
                    .samples
                    .iter()
                    .find(|(zz, _)| (zz - z).abs() < 1e-9)
                    .map(|(_, cd)| *cd);
                match cd {
                    Some(cd) => print!(" {cd:>7.1}"),
                    None => print!(" {:>7}", "-"),
                }
                col += 1;
            }
            let _ = col;
            println!("   {}", if curve.is_smiling() { "smile" } else { "frown" });
        }
    }
    println!("\n# Expected shape (paper): dense smiles (CD grows off focus), isolated frowns.");
    Ok(())
}
