//! Paper Fig. 1: printed linewidth vs pitch for an annular-illumination
//! 193 nm / NA 0.7 system at a drawn CD of 130 nm, showing the radius of
//! influence (< 600 nm of *spacing*: beyond it CD flattens).
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig1_pitch_cd
//! ```

use svt_litho::{pitch_sweep, Process};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = Process::nm130();
    let sim = process.simulator();
    let drawn = 130.0;
    let pitches: Vec<f64> = (0..=24).map(|i| 300.0 + 62.5 * i as f64).collect();
    let curve = pitch_sweep(&sim, drawn, &pitches, 0.0, 1.0)?;

    println!("# Fig. 1 — printed CD vs pitch (drawn {drawn} nm, annular 0.55/0.85, λ=193, NA=0.7)");
    println!("{:>8} {:>10} {:>8}", "pitch", "CD(nm)", "bias(nm)");
    for p in curve.points() {
        println!(
            "{:>8.1} {:>10.2} {:>8.2}",
            p.pitch_nm,
            p.cd_nm,
            p.cd_nm - drawn
        );
    }
    println!(
        "# through-pitch CD range: {:.2} nm ({:.1}% of drawn)",
        curve.cd_range(),
        100.0 * curve.cd_range() / drawn
    );

    // The radius of influence: CD variation within the last 600 nm of
    // spacing vs beyond it.
    let near: Vec<f64> = curve
        .points()
        .iter()
        .filter(|p| p.pitch_nm - drawn < 600.0)
        .map(|p| p.cd_nm)
        .collect();
    let far: Vec<f64> = curve
        .points()
        .iter()
        .filter(|p| p.pitch_nm - drawn >= 600.0)
        .map(|p| p.cd_nm)
        .collect();
    let range = |v: &[f64]| {
        v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - v.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    };
    println!(
        "# CD range with spacing < 600 nm: {:.2} nm; beyond 600 nm: {:.2} nm (radius of influence)",
        range(&near),
        range(&far)
    );
    Ok(())
}
