//! Paper Fig. 1: printed linewidth vs pitch for an annular-illumination
//! 193 nm / NA 0.7 system at a drawn CD of 130 nm, showing the radius of
//! influence (< 600 nm of *spacing*: beyond it CD flattens).
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig1_pitch_cd
//! ```

use svt_bench::figures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let data = figures::fig1()?;
    let drawn = data.drawn_nm;

    println!("# Fig. 1 — printed CD vs pitch (drawn {drawn} nm, annular 0.55/0.85, λ=193, NA=0.7)");
    println!("{:>8} {:>10} {:>8}", "pitch", "CD(nm)", "bias(nm)");
    for p in data.curve.points() {
        println!(
            "{:>8.1} {:>10.2} {:>8.2}",
            p.pitch_nm,
            p.cd_nm,
            p.cd_nm - drawn
        );
    }
    println!(
        "# through-pitch CD range: {:.2} nm ({:.1}% of drawn)",
        data.curve.cd_range(),
        100.0 * data.curve.cd_range() / drawn
    );
    println!(
        "# CD range with spacing < 600 nm: {:.2} nm; beyond 600 nm: {:.2} nm (radius of influence)",
        data.near_range, data.far_range
    );
    svt_obs::emit_if_enabled();
    Ok(())
}
