//! Paper Fig. 3: the library-based OPC environment — a cell master
//! corrected inside dummy poly that emulates its future placement
//! neighbors. Prints the environment geometry and the corrected masks.
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig3_library_env
//! ```

use svt_bench::signoff_simulator;
use svt_opc::{LibraryOpc, ModelOpc, OpcOptions};
use svt_stdcell::{Library, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let sim = signoff_simulator();
    let library = Library::svt90();
    let cell = library.cell("NAND2X1").expect("NAND2X1 exists");
    let layout = cell.layout();

    println!(
        "# Fig. 3 — library-based OPC environment for {}",
        cell.name()
    );
    println!(
        "cell outline: {:.0} x {:.0} nm; boundary spacings s_LT={:.0} s_LB={:.0} s_RT={:.0} s_RB={:.0}",
        layout.width_nm(),
        layout.height_nm(),
        layout.boundary_spacings().s_lt,
        layout.boundary_spacings().s_lb,
        layout.boundary_spacings().s_rt,
        layout.boundary_spacings().s_rb,
    );

    let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
    let lib_opc = LibraryOpc::new(opc, 150.0, 90.0);
    for region in [Region::P, Region::N] {
        let gates: Vec<(f64, f64)> = layout
            .row_spans(region)
            .iter()
            .map(|&(_, (lo, hi))| ((lo + hi) / 2.0, hi - lo))
            .collect();
        println!("\n{region:?}-row cutline (dummy poly at 150 nm outside the outline):");
        let corrected = lib_opc.correct_cell(&gates, 0.0, layout.width_nm())?;
        for (g, cd) in corrected.gates.iter().zip(&corrected.printed_cd_nm) {
            println!(
                "  gate @ x={:>6.1} nm: drawn {:.0} nm -> mask {:>6.2} nm -> prints {:>6.2} nm",
                g.center, g.target_cd, g.mask_width, cd
            );
        }
        println!(
            "  OPC: {} sweeps, residual {:.2} nm, converged: {}",
            corrected.report.sweeps, corrected.report.max_error_nm, corrected.report.converged
        );
    }
    svt_obs::emit_if_enabled();
    Ok(())
}
