//! Paper Fig. 5: device labeling of a placed design — every device
//! classified isolated / dense / self-compensated from its neighbor
//! spacings, plus the resulting arc-label population.
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig5_device_labels [benchmark]
//! ```

use svt_bench::build_design;
use svt_core::{classify_sites, label_arc, ArcLabel, ArcLabelPolicy, DeviceClass};
use svt_stdcell::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "c432".into());
    let library = Library::svt90();
    let design = build_design(&library, &name);
    let sites = design.placement.device_sites(&design.mapped, &library)?;
    let classes = classify_sites(&sites, 300.0);

    let count = |c: DeviceClass| classes.iter().filter(|&&x| x == c).count();
    let total = classes.len();
    println!("# Fig. 5 — device classification of placed {name} ({total} devices)");
    for (label, class) in [
        ("isolated", DeviceClass::Isolated),
        ("dense", DeviceClass::Dense),
        ("self-compensated", DeviceClass::SelfCompensated),
    ] {
        let n = count(class);
        println!(
            "{label:<18} {n:>6} ({:.1}%)",
            100.0 * n as f64 / total as f64
        );
    }

    // Arc labels: per instance, per arc, with the paper's majority policy.
    let mut per_device: Vec<Vec<DeviceClass>> = design
        .mapped
        .instances()
        .iter()
        .map(|inst| {
            let n = library
                .cell(&inst.cell)
                .map(|c| c.layout().devices().len())
                .unwrap_or(0);
            vec![DeviceClass::Isolated; n]
        })
        .collect();
    for (site, class) in sites.iter().zip(&classes) {
        per_device[site.instance][site.device.0] = *class;
    }
    let mut arc_counts = [0usize; 3];
    for (idx, inst) in design.mapped.instances().iter().enumerate() {
        let cell = library.cell(&inst.cell).expect("mapped cells exist");
        for arc in cell.arcs() {
            let arc_classes: Vec<DeviceClass> =
                arc.devices.iter().map(|d| per_device[idx][d.0]).collect();
            match label_arc(&arc_classes, ArcLabelPolicy::Majority) {
                ArcLabel::Smile => arc_counts[0] += 1,
                ArcLabel::Frown => arc_counts[1] += 1,
                ArcLabel::SelfCompensated => arc_counts[2] += 1,
            }
        }
    }
    let arcs: usize = arc_counts.iter().sum();
    println!("\n# timing-arc labels (majority policy, {arcs} arcs)");
    for (label, n) in [
        ("smile (dense)", arc_counts[0]),
        ("frown (isolated)", arc_counts[1]),
        ("self-compensated", arc_counts[2]),
    ] {
        println!(
            "{label:<18} {n:>6} ({:.1}%)",
            100.0 * n as f64 / arcs as f64
        );
    }
    svt_obs::emit_if_enabled();
    Ok(())
}
