//! Paper Table 1: comparison of library-based OPC and full-chip OPC —
//! the percentage of devices whose library-OPC CD prediction falls within
//! 1 % / 3 % / 6 % of the full-chip OPC sign-off CD, with runtimes.
//!
//! ```text
//! cargo run --release -p svt-bench --bin tab1_library_opc [benchmark ...]
//! ```

use svt_bench::{build_design, signoff_simulator, PAPER_TESTCASES};
use svt_core::{compare_opc_flows, FullChipOpc, LibraryAssembledOpc};
use svt_opc::OpcOptions;
use svt_stdcell::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let testcases: Vec<String> = if args.is_empty() {
        PAPER_TESTCASES.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let library = Library::svt90();
    let sim = signoff_simulator();
    let assembler = LibraryAssembledOpc::new(&sim, OpcOptions::default());

    println!("# Table 1 — library-based vs full-chip OPC");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>12} {:>12}",
        "testcase", "devices", "N-1%", "N-3%", "N-6%", "fullchip(s)", "library(s)"
    );

    let mut library_runtime_reported = false;
    for name in &testcases {
        let design = build_design(&library, name);
        // The expensive flow: per-instance correction in real context.
        let full = FullChipOpc::new(&sim, OpcOptions::default()).run(
            &design.mapped,
            &design.placement,
            &library,
        )?;
        // The cheap flow: correct each master once, assemble, audit.
        let (masks, master_time) = assembler.correct_masters(&design.mapped, &library)?;
        let lib_flow = assembler.run(&design.mapped, &design.placement, &library, &masks)?;
        if !library_runtime_reported {
            println!(
                "# one-time library-OPC master correction: {:.2} s for {} masters",
                master_time.as_secs_f64(),
                library.cells().len()
            );
            library_runtime_reported = true;
        }
        let cmp = compare_opc_flows(&full, &lib_flow)?;
        println!(
            "{:<10} {:>8} {:>7.1}% {:>7.1}% {:>7.1}% {:>12.1} {:>12.2}",
            name,
            cmp.total,
            cmp.pct_within(cmp.within_1pct),
            cmp.pct_within(cmp.within_3pct),
            cmp.pct_within(cmp.within_6pct),
            full.runtime.as_secs_f64(),
            lib_flow.runtime.as_secs_f64(),
        );
    }
    println!(
        "\n# Paper shape: ~50% of devices within 1%, nearly all within 6%, and the\n# full-chip runtime grows with design size while library OPC cost is one-time\n# (its per-design column above is assembly + sign-off audit only)."
    );
    svt_obs::emit_if_enabled();
    Ok(())
}
