//! Paper Fig. 7: distribution of CD error (simulated post full-chip
//! model-based OPC vs nominal drawn CD) for the c3540 benchmark.
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig7_opc_error_hist [benchmark]
//! ```

use svt_bench::{build_design, hbar, signoff_simulator};
use svt_core::FullChipOpc;
use svt_opc::{error_histogram, OpcOptions};
use svt_stdcell::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "c3540".into());
    let library = Library::svt90();
    let sim = signoff_simulator();
    let design = build_design(&library, &name);
    eprintln!(
        "running full-chip OPC on {name} ({} instances, {} rows)…",
        design.mapped.instances().len(),
        design.placement.rows().len()
    );

    let flow = FullChipOpc::new(&sim, OpcOptions::default());
    let result = flow.run(&design.mapped, &design.placement, &library)?;
    let errors = result.percent_errors(90.0);

    println!(
        "# Fig. 7 — % CD error after full-chip model-based OPC, {name} ({} devices, {} printed)",
        result.devices.len(),
        errors.len()
    );
    println!(
        "# OPC runtime {:.1} s; {}/{} row cutlines converged",
        result.runtime.as_secs_f64(),
        result.converged_rows,
        result.total_rows
    );

    let bins = error_histogram(&errors, 1.0);
    let max_count = bins.iter().map(|b| b.count).max().unwrap_or(0);
    println!("\n{:>8} {:>8}  histogram", "err(%)", "devices");
    for b in &bins {
        println!(
            "{:>8.1} {:>8}  {}",
            b.center_pct,
            b.count,
            hbar(b.count, max_count, 50)
        );
    }

    let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    let worst = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
    println!("\n# mean error {mean:+.2}%, worst |{worst:.2}|% (paper observed up to ~20%)");
    svt_obs::emit_if_enabled();
    Ok(())
}
