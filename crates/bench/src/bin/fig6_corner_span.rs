//! Paper Fig. 6: the artificial Bossung and the corner-span decomposition —
//! measure `lvar_pitch` (post-OPC through-pitch CD half-range) and
//! `lvar_focus` (FEM through-focus excursion) from the simulated process
//! and show how the aware corners shrink the naive
//! `2(lvar_pitch + lvar_focus)` span.
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig6_corner_span
//! ```

use svt_bench::signoff_simulator;
use svt_core::{ArcLabel, VariationBudget};
use svt_litho::FocusExposureMatrix;
use svt_opc::{ModelOpc, OpcOptions};
use svt_stdcell::PitchCdTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = signoff_simulator();
    let drawn = 90.0;

    // lvar_pitch from the post-OPC through-pitch table (paper §3.3: "draw
    // test layouts … corrected with the standard OPC flow and CD is
    // measured").
    let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
    let table = PitchCdTable::build(
        &sim,
        &opc,
        drawn,
        &[150.0, 200.0, 250.0, 300.0, 400.0, 500.0, 700.0],
    )?;
    let lvar_pitch = table.lvar_pitch();
    println!("# Fig. 6 — corner span decomposition at drawn CD {drawn} nm");
    println!("measured lvar_pitch (post-OPC, through-pitch): {lvar_pitch:.2} nm");

    // lvar_focus from the FEM over pitches from minimum to just above the
    // contacted pitch (±300 nm focus).
    let focus: Vec<f64> = (-4..=4).map(|i| i as f64 * 75.0).collect();
    let fem = FocusExposureMatrix::build(&sim, drawn, &[240.0, 280.0, 320.0], &focus, &[1.0])?;
    let lvar_focus = fem.lvar_focus();
    println!("measured lvar_focus (FEM, ±300 nm):            {lvar_focus:.2} nm");

    // The artificial Bossung of Fig. 6: per-pitch smile/frown signatures.
    println!("\npitch   smiles?");
    for pitch in [240.0, 280.0, 320.0] {
        println!(
            "{:>5.0}   {}",
            pitch,
            fem.smiles_at(pitch)
                .map(|s| if s { "smile (dense)" } else { "frown" })
                .unwrap_or("-")
        );
    }

    // Corner spans: naive full span vs eq. 1–5 spans, using the measured
    // systematic components inside the default ±15% budget.
    let delta = 0.15 * drawn;
    let budget = VariationBudget::new(
        0.15,
        (lvar_pitch / delta).min(0.5),
        (lvar_focus / delta).min(0.5),
    );
    println!(
        "\nbudget: Δ = {delta:.2} nm, pitch share {:.0}%, focus share {:.0}%",
        100.0 * budget.pitch_fraction,
        100.0 * budget.focus_fraction
    );
    let naive = budget.traditional_corners(drawn);
    println!(
        "\n{:<22} {:>8} {:>8} {:>9}",
        "corner model", "BC(nm)", "WC(nm)", "span(nm)"
    );
    println!(
        "{:<22} {:>8.2} {:>8.2} {:>9.2}",
        "traditional (2Δ)",
        naive.bc_nm,
        naive.wc_nm,
        naive.spread_nm()
    );
    for (name, label) in [
        ("aware, smiling arc", ArcLabel::Smile),
        ("aware, frowning arc", ArcLabel::Frown),
        ("aware, self-comp arc", ArcLabel::SelfCompensated),
    ] {
        let c = budget.aware_corners(drawn, label);
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>9.2}",
            name,
            c.bc_nm,
            c.wc_nm,
            c.spread_nm()
        );
    }
    println!(
        "\n# Paper's point: the naive span 2(lvar_pitch + lvar_focus + residual) is too\n# pessimistic; accounting for systematics removes 2·lvar_pitch everywhere and\n# lvar_focus from the impossible side of each arc."
    );
    Ok(())
}
