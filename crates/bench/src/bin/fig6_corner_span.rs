//! Paper Fig. 6: the artificial Bossung and the corner-span decomposition —
//! measure `lvar_pitch` (post-OPC through-pitch CD half-range) and
//! `lvar_focus` (FEM through-focus excursion) from the simulated process
//! and show how the aware corners shrink the naive
//! `2(lvar_pitch + lvar_focus)` span.
//!
//! ```text
//! cargo run --release -p svt-bench --bin fig6_corner_span
//! ```

use svt_bench::figures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    svt_obs::reinit_from_env();
    let data = figures::fig6()?;
    let drawn = data.drawn_nm;

    println!("# Fig. 6 — corner span decomposition at drawn CD {drawn} nm");
    println!(
        "measured lvar_pitch (post-OPC, through-pitch): {:.2} nm",
        data.lvar_pitch
    );
    println!(
        "measured lvar_focus (FEM, ±300 nm):            {:.2} nm",
        data.lvar_focus
    );

    println!("\npitch   smiles?");
    for &(pitch, smiles) in &data.smiles {
        println!(
            "{:>5.0}   {}",
            pitch,
            smiles
                .map(|s| if s { "smile (dense)" } else { "frown" })
                .unwrap_or("-")
        );
    }

    let delta = 0.15 * drawn;
    println!(
        "\nbudget: Δ = {delta:.2} nm, pitch share {:.0}%, focus share {:.0}%",
        100.0 * data.pitch_fraction,
        100.0 * data.focus_fraction
    );
    println!(
        "\n{:<22} {:>8} {:>8} {:>9}",
        "corner model", "BC(nm)", "WC(nm)", "span(nm)"
    );
    for &(name, bc, wc, span) in &data.corners {
        let pretty = match name {
            "traditional" => "traditional (2Δ)",
            "aware_smile" => "aware, smiling arc",
            "aware_frown" => "aware, frowning arc",
            "aware_selfcomp" => "aware, self-comp arc",
            other => other,
        };
        println!("{pretty:<22} {bc:>8.2} {wc:>8.2} {span:>9.2}");
    }
    println!(
        "\n# Paper's point: the naive span 2(lvar_pitch + lvar_focus + residual) is too\n# pessimistic; accounting for systematics removes 2·lvar_pitch everywhere and\n# lvar_focus from the impossible side of each arc."
    );
    svt_obs::emit_if_enabled();
    Ok(())
}
