//! Timing-engine benchmarks: full-circuit analysis runtime vs benchmark
//! size, and binding-construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
use svt_sta::{analyze, CellBinding, TimingOptions};
use svt_stdcell::Library;

fn bench_analysis_scaling(c: &mut Criterion) {
    let library = Library::svt90();
    let mut group = c.benchmark_group("sta_analyze");
    group.sample_size(20);
    for name in ["c432", "c880", "c1908"] {
        let profile = BenchmarkProfile::iscas85(name).expect("known benchmark");
        let netlist = generate_benchmark(&profile);
        let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
        let binding = CellBinding::nominal(&mapped, &library).expect("binding succeeds");
        let options = TimingOptions::default();
        group.bench_with_input(BenchmarkId::new("benchmark", name), name, |b, _| {
            b.iter(|| analyze(&mapped, &binding, &options).expect("analysis succeeds"))
        });
    }
    group.finish();
}

fn bench_binding_construction(c: &mut Criterion) {
    let library = Library::svt90();
    let profile = BenchmarkProfile::iscas85("c880").expect("known benchmark");
    let netlist = generate_benchmark(&profile);
    let mapped = technology_map(&netlist, &library).expect("mapping succeeds");
    c.bench_function("nominal_binding_c880", |b| {
        b.iter(|| CellBinding::nominal(&mapped, &library).expect("binding succeeds"))
    });
}

criterion_group!(benches, bench_analysis_scaling, bench_binding_construction);
criterion_main!(benches);
