//! Lithography-engine benchmarks: aerial-image throughput, CD metrology,
//! and the source-sampling accuracy/runtime ablation called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use svt_litho::{pitch_sweep, MaskCutline, Process};

fn bench_aerial_image(c: &mut Criterion) {
    let process = Process::nm90();
    let sim = process.simulator();
    let lines: Vec<(f64, f64)> = (-6..=6)
        .map(|k| {
            let center = k as f64 * 300.0;
            (center - 45.0, center + 45.0)
        })
        .collect();
    let mask = MaskCutline::from_lines(-2048.0, 4096.0, 2.0, &lines).expect("valid mask");

    let mut group = c.benchmark_group("aerial_image");
    for &samples in &[8usize, 16, 24, 48] {
        let config = sim.config().clone().with_source_samples(samples);
        group.bench_with_input(
            BenchmarkId::new("source_samples", samples),
            &samples,
            |b, _| b.iter(|| std::hint::black_box(config.aerial_image(&mask, 100.0))),
        );
    }
    group.finish();
}

fn bench_print_line_array(c: &mut Criterion) {
    let sim = Process::nm90().simulator();
    c.bench_function("print_line_array_90_240", |b| {
        b.iter(|| {
            sim.print_line_array(90.0, 240.0, 0.0, 1.0)
                .expect("dense pattern prints")
        })
    });
}

fn bench_pitch_sweep(c: &mut Criterion) {
    let sim = Process::nm90().simulator();
    let pitches: Vec<f64> = (0..8).map(|i| 240.0 + 60.0 * i as f64).collect();
    c.bench_function("pitch_sweep_8_points", |b| {
        b.iter(|| pitch_sweep(&sim, 90.0, &pitches, 0.0, 1.0).expect("sweep succeeds"))
    });
}

fn bench_grid_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_ablation");
    for &grid in &[2.0f64, 4.0, 8.0] {
        let sim = Process::nm90().with_grid_nm(grid).simulator();
        group.bench_with_input(BenchmarkId::new("grid_nm", grid as u32), &grid, |b, _| {
            b.iter(|| {
                sim.print_isolated_line(90.0, 150.0, 1.0)
                    .expect("iso line prints")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aerial_image,
    bench_print_line_array,
    bench_pitch_sweep,
    bench_grid_ablation
);
criterion_main!(benches);
