//! OPC benchmarks: model-based correction cost vs pattern size and the
//! sweep-count-vs-residual ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use svt_litho::Process;
use svt_opc::{audit_pattern, CutlinePattern, EpeStats, ModelOpc, OpcLine, OpcOptions};

fn mixed_pattern(gates: usize) -> CutlinePattern {
    // Alternating dense/sparse spacings, the OPC-stressing mixture.
    let mut p = CutlinePattern::new(-2048.0, 4096.0);
    let mut x = -((gates / 2) as f64) * 350.0;
    for k in 0..gates {
        p.push(OpcLine::gate(x, 90.0));
        x += if k % 2 == 0 { 250.0 } else { 480.0 };
    }
    p
}

fn bench_correct_by_size(c: &mut Criterion) {
    let sim = Process::nm90().simulator();
    let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
    let mut group = c.benchmark_group("model_opc_correct");
    group.sample_size(20);
    for &gates in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("gates", gates), &gates, |b, &n| {
            b.iter_batched(
                || mixed_pattern(n),
                |mut p| opc.correct(&mut p).expect("correction succeeds"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Ablation: how does the sweep cap trade residual error for runtime?
fn bench_sweep_ablation(c: &mut Criterion) {
    let sim = Process::nm90().simulator();
    let mut group = c.benchmark_group("sweep_ablation");
    group.sample_size(15);
    for &sweeps in &[2usize, 4, 8] {
        let opc = ModelOpc::with_production_model(
            &sim,
            OpcOptions {
                max_sweeps: sweeps,
                ..OpcOptions::default()
            },
        );
        // Report the sign-off residual once per configuration so the bench
        // log doubles as the accuracy half of the ablation.
        let mut p = mixed_pattern(6);
        opc.correct(&mut p).expect("correction succeeds");
        let stats =
            EpeStats::from_audits(&audit_pattern(&sim, &p, 0.0, 1.0).expect("audit succeeds"));
        eprintln!(
            "sweep_ablation: max_sweeps={sweeps} -> sign-off rms {:.2} nm, max {:.2} nm",
            stats.rms_nm, stats.max_abs_nm
        );
        group.bench_with_input(BenchmarkId::new("max_sweeps", sweeps), &sweeps, |b, _| {
            b.iter_batched(
                || mixed_pattern(6),
                |mut p| opc.correct(&mut p).expect("correction succeeds"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_correct_by_size, bench_sweep_ablation);
criterion_main!(benches);
