//! End-to-end methodology benchmarks and ablations: the sign-off flow, the
//! arc-label-policy ablation, and the simplified (§5) methodology — the
//! design-choice studies called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use svt_bench::{build_design, signoff_simulator, Design};
use svt_core::{ArcLabelPolicy, SignoffFlow, SignoffOptions};
use svt_stdcell::{expand_library, ExpandOptions, ExpandedLibrary, Library};

fn setup() -> (Library, ExpandedLibrary, Design) {
    let library = Library::svt90();
    let sim = signoff_simulator();
    let expanded =
        expand_library(&library, &sim, &ExpandOptions::fast()).expect("expansion succeeds");
    let design = build_design(&library, "c432");
    (library, expanded, design)
}

fn bench_signoff_flow(c: &mut Criterion) {
    let (library, expanded, design) = setup();
    let mut group = c.benchmark_group("signoff_flow");
    group.sample_size(10);
    for (name, options) in [
        ("full_context", SignoffOptions::default()),
        (
            "simplified_s5",
            SignoffOptions {
                use_context_library: false,
                ..SignoffOptions::default()
            },
        ),
    ] {
        let flow = SignoffFlow::new(&library, &expanded, options);
        // Log the accuracy half of the ablation alongside the runtime half.
        let cmp = flow
            .run(&design.mapped, &design.placement)
            .expect("flow succeeds");
        eprintln!(
            "signoff_flow/{name}: uncertainty reduction {:.1}%",
            cmp.uncertainty_reduction_pct()
        );
        group.bench_with_input(BenchmarkId::new("variant", name), name, |b, _| {
            b.iter(|| {
                flow.run(&design.mapped, &design.placement)
                    .expect("flow succeeds")
            })
        });
    }
    group.finish();
}

fn bench_label_policy_ablation(c: &mut Criterion) {
    let (library, expanded, design) = setup();
    let mut group = c.benchmark_group("label_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("majority", ArcLabelPolicy::Majority),
        ("unanimous", ArcLabelPolicy::Unanimous),
    ] {
        let flow = SignoffFlow::new(
            &library,
            &expanded,
            SignoffOptions {
                policy,
                ..SignoffOptions::default()
            },
        );
        let cmp = flow
            .run(&design.mapped, &design.placement)
            .expect("flow succeeds");
        eprintln!(
            "label_policy/{name}: uncertainty reduction {:.1}%",
            cmp.uncertainty_reduction_pct()
        );
        group.bench_with_input(BenchmarkId::new("policy", name), name, |b, _| {
            b.iter(|| {
                flow.run(&design.mapped, &design.placement)
                    .expect("flow succeeds")
            })
        });
    }
    group.finish();
}

fn bench_library_expansion(c: &mut Criterion) {
    let library = Library::svt90();
    let sim = signoff_simulator();
    let mut group = c.benchmark_group("expand_library");
    group.sample_size(10);
    group.bench_function("fast_grid", |b| {
        b.iter(|| {
            expand_library(&library, &sim, &ExpandOptions::fast()).expect("expansion succeeds")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_signoff_flow,
    bench_label_policy_ablation,
    bench_library_expansion
);
criterion_main!(benches);
