//! Golden-snapshot tests for the figure binaries.
//!
//! Each figure's data builder is flattened to ordered `(key, value)`
//! scalars and compared against a JSON fixture under `tests/golden/` at
//! 1e-9 absolute tolerance — tight enough to pin the physics bit-for-bit
//! in practice while tolerating a future change of summation order.
//!
//! Regenerate fixtures after an intentional model change with
//!
//! ```text
//! BLESS=1 cargo test -p svt-bench --test golden
//! ```
//!
//! and review the diff like any other golden update.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use svt_bench::figures;

const TOLERANCE: f64 = 1e-9;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Serializes scalars as a flat JSON object, one key per line, with
/// Rust's shortest-roundtrip float formatting (`{:?}`), so fixtures diff
/// cleanly and parse exactly.
fn to_json(scalars: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in scalars.iter().enumerate() {
        let comma = if i + 1 == scalars.len() { "" } else { "," };
        writeln!(out, "  \"{k}\": {v:?}{comma}").expect("string write");
    }
    out.push_str("}\n");
    out
}

/// Parses the flat JSON written by [`to_json`]. Deliberately minimal (no
/// serde in this workspace): one `"key": value` entry per line.
fn from_json(text: &str, name: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let (key, value) = line
            .split_once("\":")
            .unwrap_or_else(|| panic!("{name}:{}: malformed fixture line `{line}`", lineno + 1));
        let key = key.trim().trim_start_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("{name}:{}: bad number `{value}`: {e}", lineno + 1));
        out.push((key, value));
    }
    out
}

fn check_golden(name: &str, scalars: &[(String, f64)]) {
    let path = fixture_path(name);
    assert!(!scalars.is_empty(), "{name}: builder produced no scalars");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create tests/golden/");
        std::fs::write(&path, to_json(scalars)).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(run with BLESS=1 to generate the fixture)",
            path.display()
        )
    });
    let expected = from_json(&text, name);
    let got_keys: Vec<&String> = scalars.iter().map(|(k, _)| k).collect();
    let want_keys: Vec<&String> = expected.iter().map(|(k, _)| k).collect();
    assert_eq!(
        got_keys, want_keys,
        "{name}: key set / order drifted from the fixture"
    );
    for ((k, got), (_, want)) in scalars.iter().zip(&expected) {
        assert!(
            (got - want).abs() <= TOLERANCE,
            "{name}: `{k}` = {got:?}, fixture has {want:?} (|Δ| = {:e} > {TOLERANCE:e})",
            (got - want).abs()
        );
    }
}

#[test]
fn fig1_matches_golden() {
    let data = figures::fig1().expect("fig1 builds");
    check_golden("fig1.json", &data.scalars());
}

#[test]
fn fig2_matches_golden() {
    let data = figures::fig2().expect("fig2 builds");
    check_golden("fig2.json", &data.scalars());
}

#[test]
fn fig6_matches_golden() {
    let data = figures::fig6().expect("fig6 builds");
    check_golden("fig6.json", &data.scalars());
}

#[test]
fn fixture_roundtrip_is_exact() {
    let scalars = vec![
        ("a".to_string(), 1.25),
        ("b[pitch=300.0]".to_string(), -7.3e-10),
        ("c.dose=1.00.smiling".to_string(), 1.0),
    ];
    let parsed = from_json(&to_json(&scalars), "roundtrip");
    assert_eq!(scalars.len(), parsed.len());
    for ((k1, v1), (k2, v2)) in scalars.iter().zip(&parsed) {
        assert_eq!(k1, k2);
        assert_eq!(v1.to_bits(), v2.to_bits(), "float roundtrip must be exact");
    }
}
