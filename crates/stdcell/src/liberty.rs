//! A Liberty-flavoured text format for characterized libraries.
//!
//! Real sign-off flows exchange timing libraries as `.lib` text; the
//! expanded 81-version libraries of this workspace round-trip through the
//! same kind of format. The dialect is a faithful subset: `group(args) {}`
//! nesting, `attribute : value;` statements, quoted index/value arrays.
//!
//! ```text
//! library(svt90_expanded) {
//!   cell(INVX1_ctx2222) {
//!     source_cell : INVX1;
//!     device_lengths : "90, 90";
//!     pin(A) { direction : input; capacitance : 0.002; }
//!     pin(Z) {
//!       direction : output;
//!       timing() {
//!         related_pin : A;
//!         devices : "0, 1";
//!         cell_delay() { index_1("…"); index_2("…"); values("…", "…"); }
//!         output_slew() { index_1("…"); index_2("…"); values("…", "…"); }
//!       }
//!     }
//!   }
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! use svt_stdcell::{characterize, CharacterizeOptions, Library, liberty};
//!
//! let lib = Library::svt90();
//! let inv = lib.cell("INVX1").expect("INVX1 exists");
//! let cc = characterize(inv, &[90.0, 90.0], "INVX1_nom", CharacterizeOptions::default())?;
//! let text = liberty::write_library("demo", &[cc.clone()]);
//! let (name, cells) = liberty::parse_library(&text)?;
//! assert_eq!(name, "demo");
//! assert_eq!(cells[0], cc);
//! # Ok::<(), svt_stdcell::StdcellError>(())
//! ```

use crate::{CharacterizedCell, DeviceId, Direction, NldmTable, Pin, StdcellError, TimingArc};

/// Serializes characterized cells as Liberty-flavoured text.
#[must_use]
pub fn write_library(name: &str, cells: &[CharacterizedCell]) -> String {
    let mut out = String::new();
    out.push_str(&format!("library({name}) {{\n"));
    for cell in cells {
        write_cell(&mut out, cell);
    }
    out.push_str("}\n");
    out
}

fn write_cell(out: &mut String, cell: &CharacterizedCell) {
    out.push_str(&format!("  cell({}) {{\n", cell.variant_name));
    out.push_str(&format!("    source_cell : {};\n", cell.cell_name));
    out.push_str(&format!(
        "    device_lengths : \"{}\";\n",
        join_floats(&cell.device_lengths_nm)
    ));
    for pin in &cell.pins {
        match pin.direction {
            Direction::Input => {
                out.push_str(&format!(
                    "    pin({}) {{ direction : input; capacitance : {}; }}\n",
                    pin.name, pin.capacitance_pf
                ));
            }
            Direction::Output => {
                out.push_str(&format!("    pin({}) {{\n", pin.name));
                out.push_str("      direction : output;\n");
                for arc in cell.arcs.iter().filter(|a| a.to_pin == pin.name) {
                    write_arc(out, arc);
                }
                out.push_str("    }\n");
            }
        }
    }
    out.push_str("  }\n");
}

fn write_arc(out: &mut String, arc: &TimingArc) {
    out.push_str("      timing() {\n");
    out.push_str(&format!("        related_pin : {};\n", arc.from_pin));
    let devices: Vec<String> = arc.devices.iter().map(|d| d.0.to_string()).collect();
    out.push_str(&format!("        devices : \"{}\";\n", devices.join(", ")));
    write_table(out, "cell_delay", &arc.delay);
    write_table(out, "output_slew", &arc.output_slew);
    out.push_str("      }\n");
}

fn write_table(out: &mut String, group: &str, table: &NldmTable) {
    out.push_str(&format!("        {group}() {{\n"));
    out.push_str(&format!(
        "          index_1(\"{}\");\n",
        join_floats(table.slew_axis())
    ));
    out.push_str(&format!(
        "          index_2(\"{}\");\n",
        join_floats(table.load_axis())
    ));
    let rows: Vec<String> = table
        .values()
        .iter()
        .map(|row| format!("\"{}\"", join_floats(row)))
        .collect();
    out.push_str(&format!("          values({});\n", rows.join(", ")));
    out.push_str("        }\n");
}

fn join_floats(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed Liberty group: `name(args) { attributes; children }`.
#[derive(Debug, Clone, PartialEq)]
struct Group {
    name: String,
    args: Vec<String>,
    attributes: Vec<(String, String)>,
    children: Vec<Group>,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Colon,
    Semi,
    Comma,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, reason: impl Into<String>) -> StdcellError {
        StdcellError::ParseLibertyError {
            line: self.line,
            reason: reason.into(),
        }
    }

    fn next_token(&mut self) -> Result<Token, StdcellError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            if c == '\n' {
                self.line += 1;
                self.pos += 1;
            } else if c.is_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos >= bytes.len() {
            return Ok(Token::Eof);
        }
        let c = bytes[self.pos] as char;
        let simple = match c {
            '(' => Some(Token::LParen),
            ')' => Some(Token::RParen),
            '{' => Some(Token::LBrace),
            '}' => Some(Token::RBrace),
            ':' => Some(Token::Colon),
            ';' => Some(Token::Semi),
            ',' => Some(Token::Comma),
            _ => None,
        };
        if let Some(tok) = simple {
            self.pos += 1;
            return Ok(tok);
        }
        if c == '"' {
            let start = self.pos + 1;
            let mut end = start;
            while end < bytes.len() && bytes[end] as char != '"' {
                if bytes[end] as char == '\n' {
                    self.line += 1;
                }
                end += 1;
            }
            if end >= bytes.len() {
                return Err(self.error("unterminated string"));
            }
            self.pos = end + 1;
            return Ok(Token::Str(self.src[start..end].to_string()));
        }
        if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '+' {
            let start = self.pos;
            let mut end = start;
            while end < bytes.len() {
                let ch = bytes[end] as char;
                if ch.is_alphanumeric() || "_.-+".contains(ch) {
                    end += 1;
                } else {
                    break;
                }
            }
            self.pos = end;
            return Ok(Token::Ident(self.src[start..end].to_string()));
        }
        Err(self.error(format!("unexpected character `{c}`")))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            lexer: Lexer::new(src),
            lookahead: None,
        }
    }

    fn peek(&mut self) -> Result<Token, StdcellError> {
        if self.lookahead.is_none() {
            self.lookahead = Some(self.lexer.next_token()?);
        }
        Ok(self.lookahead.clone().expect("just filled"))
    }

    fn bump(&mut self) -> Result<Token, StdcellError> {
        let t = self.peek()?;
        self.lookahead = None;
        Ok(t)
    }

    fn expect(&mut self, tok: &Token) -> Result<(), StdcellError> {
        let got = self.bump()?;
        if &got == tok {
            Ok(())
        } else {
            Err(self.lexer.error(format!("expected {tok:?}, got {got:?}")))
        }
    }

    /// Parses `name ( args ) { body }`.
    fn group(&mut self) -> Result<Group, StdcellError> {
        let name = match self.bump()? {
            Token::Ident(s) => s,
            other => {
                return Err(self
                    .lexer
                    .error(format!("expected group name, got {other:?}")))
            }
        };
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        loop {
            match self.bump()? {
                Token::RParen => break,
                Token::Ident(s) | Token::Str(s) => args.push(s),
                Token::Comma => {}
                other => return Err(self.lexer.error(format!("bad group arg {other:?}"))),
            }
        }
        self.expect(&Token::LBrace)?;
        let mut attributes = Vec::new();
        let mut children = Vec::new();
        loop {
            match self.peek()? {
                Token::RBrace => {
                    self.bump()?;
                    break;
                }
                Token::Ident(_) => {
                    // Either `ident : value ;` or a nested group.
                    let ident = match self.bump()? {
                        Token::Ident(s) => s,
                        _ => unreachable!("peeked Ident"),
                    };
                    match self.peek()? {
                        Token::Colon => {
                            self.bump()?;
                            let value = match self.bump()? {
                                Token::Ident(s) | Token::Str(s) => s,
                                other => {
                                    return Err(self
                                        .lexer
                                        .error(format!("bad attribute value {other:?}")))
                                }
                            };
                            self.expect(&Token::Semi)?;
                            attributes.push((ident, value));
                        }
                        Token::LParen => {
                            // Re-parse as a group by reusing the logic with
                            // the name already consumed.
                            self.expect(&Token::LParen)?;
                            let mut args = Vec::new();
                            loop {
                                match self.bump()? {
                                    Token::RParen => break,
                                    Token::Ident(s) | Token::Str(s) => args.push(s),
                                    Token::Comma => {}
                                    other => {
                                        return Err(self
                                            .lexer
                                            .error(format!("bad group arg {other:?}")))
                                    }
                                }
                            }
                            match self.peek()? {
                                Token::LBrace => {
                                    self.bump()?;
                                    let mut grp = Group {
                                        name: ident,
                                        args,
                                        attributes: Vec::new(),
                                        children: Vec::new(),
                                    };
                                    self.group_body(&mut grp)?;
                                    children.push(grp);
                                }
                                Token::Semi => {
                                    // Statement form: `index_1("…");`
                                    self.bump()?;
                                    children.push(Group {
                                        name: ident,
                                        args,
                                        attributes: Vec::new(),
                                        children: Vec::new(),
                                    });
                                }
                                other => {
                                    return Err(self
                                        .lexer
                                        .error(format!("expected body or `;`, got {other:?}")))
                                }
                            }
                        }
                        other => {
                            return Err(self.lexer.error(format!("unexpected token {other:?}")))
                        }
                    }
                }
                other => return Err(self.lexer.error(format!("unexpected token {other:?}"))),
            }
        }
        Ok(Group {
            name,
            args,
            attributes,
            children,
        })
    }

    /// Parses a group body into `grp` (after `{` was consumed).
    fn group_body(&mut self, grp: &mut Group) -> Result<(), StdcellError> {
        loop {
            match self.peek()? {
                Token::RBrace => {
                    self.bump()?;
                    return Ok(());
                }
                _ => {
                    // Delegate: temporarily parse one item via the same
                    // machinery used in `group`. Simplest correct approach:
                    // parse an identifier and dispatch.
                    let before = self.peek()?;
                    if !matches!(before, Token::Ident(_)) {
                        return Err(self.lexer.error(format!("unexpected token {before:?}")));
                    }
                    let ident = match self.bump()? {
                        Token::Ident(s) => s,
                        _ => unreachable!("peeked Ident"),
                    };
                    match self.peek()? {
                        Token::Colon => {
                            self.bump()?;
                            let value = match self.bump()? {
                                Token::Ident(s) | Token::Str(s) => s,
                                other => {
                                    return Err(self
                                        .lexer
                                        .error(format!("bad attribute value {other:?}")))
                                }
                            };
                            self.expect(&Token::Semi)?;
                            grp.attributes.push((ident, value));
                        }
                        Token::LParen => {
                            self.expect(&Token::LParen)?;
                            let mut args = Vec::new();
                            loop {
                                match self.bump()? {
                                    Token::RParen => break,
                                    Token::Ident(s) | Token::Str(s) => args.push(s),
                                    Token::Comma => {}
                                    other => {
                                        return Err(self
                                            .lexer
                                            .error(format!("bad group arg {other:?}")))
                                    }
                                }
                            }
                            match self.peek()? {
                                Token::LBrace => {
                                    self.bump()?;
                                    let mut child = Group {
                                        name: ident,
                                        args,
                                        attributes: Vec::new(),
                                        children: Vec::new(),
                                    };
                                    self.group_body(&mut child)?;
                                    grp.children.push(child);
                                }
                                Token::Semi => {
                                    self.bump()?;
                                    grp.children.push(Group {
                                        name: ident,
                                        args,
                                        attributes: Vec::new(),
                                        children: Vec::new(),
                                    });
                                }
                                other => {
                                    return Err(self
                                        .lexer
                                        .error(format!("expected body or `;`, got {other:?}")))
                                }
                            }
                        }
                        other => {
                            return Err(self.lexer.error(format!("unexpected token {other:?}")))
                        }
                    }
                }
            }
        }
    }
}

/// Parses Liberty-flavoured text into `(library_name, cells)`.
///
/// # Errors
///
/// Returns [`StdcellError::ParseLibertyError`] with the failing line on any
/// lexical, syntactic, or semantic problem.
pub fn parse_library(text: &str) -> Result<(String, Vec<CharacterizedCell>), StdcellError> {
    let mut parser = Parser::new(text);
    let root = parser.group()?;
    if root.name != "library" {
        return Err(StdcellError::ParseLibertyError {
            line: 1,
            reason: format!("expected `library`, got `{}`", root.name),
        });
    }
    let lib_name = root
        .args
        .first()
        .cloned()
        .ok_or_else(|| StdcellError::ParseLibertyError {
            line: 1,
            reason: "library has no name".into(),
        })?;
    let mut cells = Vec::new();
    for child in &root.children {
        if child.name == "cell" {
            cells.push(interpret_cell(child)?);
        }
    }
    Ok((lib_name, cells))
}

fn semantic(reason: impl Into<String>) -> StdcellError {
    StdcellError::ParseLibertyError {
        line: 0,
        reason: reason.into(),
    }
}

fn attr<'g>(group: &'g Group, name: &str) -> Option<&'g str> {
    group
        .attributes
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn parse_floats(list: &str) -> Result<Vec<f64>, StdcellError> {
    list.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| semantic(format!("bad number `{}`", s.trim())))
        })
        .collect()
}

fn interpret_cell(group: &Group) -> Result<CharacterizedCell, StdcellError> {
    let variant_name = group
        .args
        .first()
        .cloned()
        .ok_or_else(|| semantic("cell has no name"))?;
    let cell_name = attr(group, "source_cell")
        .unwrap_or(&variant_name)
        .to_string();
    let device_lengths_nm = parse_floats(
        attr(group, "device_lengths").ok_or_else(|| semantic("missing device_lengths"))?,
    )?;
    let mut pins = Vec::new();
    let mut arcs = Vec::new();
    for child in &group.children {
        if child.name != "pin" {
            continue;
        }
        let pin_name = child
            .args
            .first()
            .cloned()
            .ok_or_else(|| semantic("pin has no name"))?;
        match attr(child, "direction") {
            Some("input") => {
                let cap = attr(child, "capacitance")
                    .ok_or_else(|| semantic("input pin missing capacitance"))?
                    .parse::<f64>()
                    .map_err(|_| semantic("bad capacitance"))?;
                pins.push(Pin::input(pin_name, cap));
            }
            Some("output") => {
                for timing in child.children.iter().filter(|g| g.name == "timing") {
                    arcs.push(interpret_arc(timing, &pin_name)?);
                }
                pins.push(Pin::output(pin_name));
            }
            other => return Err(semantic(format!("bad pin direction {other:?}"))),
        }
    }
    Ok(CharacterizedCell {
        cell_name,
        variant_name,
        device_lengths_nm,
        pins,
        arcs,
    })
}

fn interpret_arc(group: &Group, to_pin: &str) -> Result<TimingArc, StdcellError> {
    let from_pin = attr(group, "related_pin")
        .ok_or_else(|| semantic("timing missing related_pin"))?
        .to_string();
    let devices: Vec<DeviceId> =
        parse_floats(attr(group, "devices").ok_or_else(|| semantic("timing missing devices"))?)?
            .into_iter()
            .map(|v| DeviceId(v as usize))
            .collect();
    let delay = interpret_table(
        group
            .children
            .iter()
            .find(|g| g.name == "cell_delay")
            .ok_or_else(|| semantic("timing missing cell_delay"))?,
    )?;
    let output_slew = interpret_table(
        group
            .children
            .iter()
            .find(|g| g.name == "output_slew")
            .ok_or_else(|| semantic("timing missing output_slew"))?,
    )?;
    Ok(TimingArc::new(
        from_pin,
        to_pin,
        delay,
        output_slew,
        devices,
    ))
}

fn interpret_table(group: &Group) -> Result<NldmTable, StdcellError> {
    let stmt = |name: &str| -> Result<&Group, StdcellError> {
        group
            .children
            .iter()
            .find(|g| g.name == name)
            .ok_or_else(|| semantic(format!("table missing {name}")))
    };
    let index_1 = parse_floats(
        stmt("index_1")?
            .args
            .first()
            .ok_or_else(|| semantic("index_1 empty"))?,
    )?;
    let index_2 = parse_floats(
        stmt("index_2")?
            .args
            .first()
            .ok_or_else(|| semantic("index_2 empty"))?,
    )?;
    let values: Result<Vec<Vec<f64>>, StdcellError> = stmt("values")?
        .args
        .iter()
        .map(|row| parse_floats(row))
        .collect();
    NldmTable::new(index_1, index_2, values?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{characterize, CharacterizeOptions, Library};

    fn sample_cells() -> Vec<CharacterizedCell> {
        let lib = Library::svt90();
        let opts = CharacterizeOptions::default();
        let mut out = Vec::new();
        for name in ["INVX1", "NAND2X1", "AOI21X1"] {
            let cell = lib.cell(name).unwrap();
            let n = cell.layout().devices().len();
            let lengths: Vec<f64> = (0..n).map(|i| 88.0 + i as f64 * 1.5).collect();
            out.push(characterize(cell, &lengths, &format!("{name}_v"), opts).unwrap());
        }
        out
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cells = sample_cells();
        let text = write_library("svt90_rt", &cells);
        let (name, parsed) = parse_library(&text).unwrap();
        assert_eq!(name, "svt90_rt");
        assert_eq!(parsed, cells);
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!(parse_library("not liberty at all").is_err());
        assert!(parse_library("library() {").is_err());
        assert!(parse_library("cell(X) {}").is_err());
        let bad_string = "library(x) { cell(Y) { device_lengths : \"1, oops\"; } }";
        assert!(parse_library(bad_string).is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "library(x) {\n  cell(Y) {\n    !bad\n  }\n}";
        match parse_library(text) {
            Err(StdcellError::ParseLibertyError { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let text = "library(x) { cell(Y) { device_lengths : \"1, 2; } }";
        assert!(parse_library(text).is_err());
    }

    #[test]
    fn empty_library_round_trips() {
        let text = write_library("empty", &[]);
        let (name, cells) = parse_library(&text).unwrap();
        assert_eq!(name, "empty");
        assert!(cells.is_empty());
    }

    #[test]
    fn tables_survive_with_full_precision() {
        let cells = sample_cells();
        let text = write_library("p", &cells);
        let (_, parsed) = parse_library(&text).unwrap();
        let a = &cells[0].arcs[0].delay;
        let b = &parsed[0].arcs[0].delay;
        assert_eq!(a.lookup(0.123, 0.0456), b.lookup(0.123, 0.0456));
    }
}
