use serde::{Deserialize, Serialize};

use crate::{Cell, Pin, StdcellError, TimingArc};

/// Options of the gate-length-scaled characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizeOptions {
    /// Nominal (drawn) gate length the base tables were characterized at.
    pub nominal_length_nm: f64,
    /// Sensitivity of delay to relative gate-length change. The paper
    /// assumes delay varies linearly with gate length (§3.1.2), i.e. a
    /// sensitivity of 1: a 10 % longer gate is 10 % slower.
    pub delay_sensitivity: f64,
}

impl Default for CharacterizeOptions {
    fn default() -> CharacterizeOptions {
        CharacterizeOptions {
            nominal_length_nm: 90.0,
            delay_sensitivity: 1.0,
        }
    }
}

/// A cell characterized at specific per-device printed gate lengths — one
/// of the "81 versions of each cell in the original library" (paper §3.1.2)
/// or a process-corner variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizedCell {
    /// Master cell name (e.g. `NAND2X1`).
    pub cell_name: String,
    /// Variant name (e.g. `NAND2X1_ctx0121`).
    pub variant_name: String,
    /// Printed gate length per device, aligned with
    /// [`crate::CellAbstract::devices`].
    pub device_lengths_nm: Vec<f64>,
    /// Pins (capacitances unchanged from the master).
    pub pins: Vec<Pin>,
    /// Arcs with delay/slew tables scaled to the printed lengths.
    pub arcs: Vec<TimingArc>,
}

impl CharacterizedCell {
    /// The arc from a given input pin, if any.
    #[must_use]
    pub fn arc_from(&self, input: &str) -> Option<&TimingArc> {
        self.arcs.iter().find(|a| a.from_pin == input)
    }

    /// A pin by name.
    #[must_use]
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }
}

/// Characterizes a cell at the given per-device printed gate lengths.
///
/// Each arc's delay and output-slew tables are scaled by
/// `1 + sensitivity · (L̄/L₀ − 1)` where `L̄` is the mean printed length of
/// the devices involved in the arc — the linear approximation of paper
/// §3.1.2 ("delay of any timing arc … linearly proportional to the gate
/// lengths of the devices involved in the transition").
///
/// # Errors
///
/// Returns [`StdcellError::InvalidCharacterization`] if the length vector
/// does not match the cell's device count or contains non-positive values.
///
/// # Examples
///
/// ```
/// use svt_stdcell::{characterize, CharacterizeOptions, Library};
///
/// let lib = Library::svt90();
/// let inv = lib.cell("INVX1").expect("INVX1 exists");
/// let nominal = vec![90.0; inv.layout().devices().len()];
/// let slow = vec![99.0; inv.layout().devices().len()];
/// let opts = CharacterizeOptions::default();
/// let nom = characterize(inv, &nominal, "INVX1_nom", opts)?;
/// let wc = characterize(inv, &slow, "INVX1_wc", opts)?;
/// let d_nom = nom.arcs[0].delay.lookup(0.05, 0.01);
/// let d_wc = wc.arcs[0].delay.lookup(0.05, 0.01);
/// assert!((d_wc / d_nom - 1.1).abs() < 1e-9, "10% longer gate = 10% slower");
/// # Ok::<(), svt_stdcell::StdcellError>(())
/// ```
pub fn characterize(
    cell: &Cell,
    device_lengths_nm: &[f64],
    variant_name: &str,
    options: CharacterizeOptions,
) -> Result<CharacterizedCell, StdcellError> {
    let n = cell.layout().devices().len();
    if device_lengths_nm.len() != n {
        return Err(StdcellError::InvalidCharacterization {
            cell: cell.name().into(),
            reason: format!(
                "expected {n} device lengths, got {}",
                device_lengths_nm.len()
            ),
        });
    }
    if device_lengths_nm.iter().any(|&l| l <= 0.0) {
        return Err(StdcellError::InvalidCharacterization {
            cell: cell.name().into(),
            reason: "device lengths must be positive".into(),
        });
    }

    let arcs = cell
        .arcs()
        .iter()
        .map(|arc| {
            let mean_l = arc
                .devices
                .iter()
                .map(|d| device_lengths_nm[d.0])
                .sum::<f64>()
                / arc.devices.len() as f64;
            let factor =
                1.0 + options.delay_sensitivity * (mean_l / options.nominal_length_nm - 1.0);
            TimingArc {
                from_pin: arc.from_pin.clone(),
                to_pin: arc.to_pin.clone(),
                delay: arc.delay.scaled(factor),
                output_slew: arc.output_slew.scaled(factor),
                devices: arc.devices.clone(),
            }
        })
        .collect();

    Ok(CharacterizedCell {
        cell_name: cell.name().into(),
        variant_name: variant_name.into(),
        device_lengths_nm: device_lengths_nm.to_vec(),
        pins: cell.pins().to_vec(),
        arcs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Library;

    #[test]
    fn nominal_lengths_leave_tables_unchanged() {
        let lib = Library::svt90();
        let nand = lib.cell("NAND2X1").unwrap();
        let lengths = vec![90.0; nand.layout().devices().len()];
        let c = characterize(
            nand,
            &lengths,
            "NAND2X1_nom",
            CharacterizeOptions::default(),
        )
        .unwrap();
        for (orig, scaled) in nand.arcs().iter().zip(&c.arcs) {
            assert!(
                (orig.delay.lookup(0.05, 0.01) - scaled.delay.lookup(0.05, 0.01)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn shorter_gates_are_faster() {
        let lib = Library::svt90();
        let inv = lib.cell("INVX1").unwrap();
        let short = vec![81.0; 2];
        let c = characterize(inv, &short, "INVX1_bc", CharacterizeOptions::default()).unwrap();
        let base = inv.arcs()[0].delay.lookup(0.05, 0.01);
        let fast = c.arcs[0].delay.lookup(0.05, 0.01);
        assert!((fast / base - 0.9).abs() < 1e-9);
    }

    #[test]
    fn per_arc_scaling_uses_only_arc_devices() {
        let lib = Library::svt90();
        let aoi = lib.cell("AOI21X1").unwrap();
        // Slow down only column 2's devices (the C arc), keep others nominal.
        let mut lengths = vec![90.0; aoi.layout().devices().len()];
        for (id, _) in aoi.layout().devices_of_column(2) {
            lengths[id.0] = 108.0;
        }
        let c = characterize(aoi, &lengths, "AOI21X1_x", CharacterizeOptions::default()).unwrap();
        let base_a = aoi.arc_from("A").unwrap().delay.lookup(0.05, 0.01);
        let base_c = aoi.arc_from("C").unwrap().delay.lookup(0.05, 0.01);
        let new_a = c.arc_from("A").unwrap().delay.lookup(0.05, 0.01);
        let new_c = c.arc_from("C").unwrap().delay.lookup(0.05, 0.01);
        assert!((new_a - base_a).abs() < 1e-12, "A arc untouched");
        assert!((new_c / base_c - 1.2).abs() < 1e-9, "C arc 20% slower");
    }

    #[test]
    fn sensitivity_knob_scales_the_effect() {
        let lib = Library::svt90();
        let inv = lib.cell("INVX1").unwrap();
        let opts = CharacterizeOptions {
            delay_sensitivity: 0.5,
            ..CharacterizeOptions::default()
        };
        let c = characterize(inv, &[99.0, 99.0], "INVX1_half", opts).unwrap();
        let base = inv.arcs()[0].delay.lookup(0.05, 0.01);
        assert!((c.arcs[0].delay.lookup(0.05, 0.01) / base - 1.05).abs() < 1e-9);
    }

    #[test]
    fn wrong_length_counts_are_rejected() {
        let lib = Library::svt90();
        let inv = lib.cell("INVX1").unwrap();
        assert!(characterize(inv, &[90.0], "x", CharacterizeOptions::default()).is_err());
        assert!(characterize(inv, &[90.0, -1.0], "x", CharacterizeOptions::default()).is_err());
    }

    #[test]
    fn accessors_find_pins_and_arcs() {
        let lib = Library::svt90();
        let nand = lib.cell("NAND2X1").unwrap();
        let lengths = vec![90.0; nand.layout().devices().len()];
        let c = characterize(nand, &lengths, "v", CharacterizeOptions::default()).unwrap();
        assert!(c.arc_from("A").is_some());
        assert!(c.arc_from("Q").is_none());
        assert!(c.pin("B").is_some());
        assert_eq!(c.variant_name, "v");
    }
}
