//! `svt-snap` binary encodings of the public stdcell types.
//!
//! Field order is the wire format (see `docs/SNAPSHOT_FORMAT.md` §
//! "Per-type encodings") — changing it is a format break and requires a
//! `FORMAT_VERSION` bump in `svt-snap`. Types with private invariants
//! (`NldmTable`) re-validate through their public constructors on
//! decode, so a tampered snapshot can never materialize an invalid
//! value. Impls for `PitchCdTable` / `ExpandedLibrary` live in
//! `expand.rs` next to their private fields.

use svt_snap::{Deserialize, Deserializer, Serialize, Serializer, SnapError};

use crate::{
    CellContext, CharacterizedCell, ContextBin, DeviceId, Direction, NldmTable, Pin, TimingArc,
};

impl Serialize for Direction {
    fn serialize(&self, out: &mut Serializer) {
        out.write_u8(match self {
            Direction::Input => 0,
            Direction::Output => 1,
        });
    }
}

impl Deserialize for Direction {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<Direction, SnapError> {
        match input.read_u8()? {
            0 => Ok(Direction::Input),
            1 => Ok(Direction::Output),
            other => Err(SnapError::Malformed {
                what: format!("pin direction tag {other}"),
            }),
        }
    }
}

impl Serialize for Pin {
    fn serialize(&self, out: &mut Serializer) {
        self.name.serialize(out);
        self.direction.serialize(out);
        self.capacitance_pf.serialize(out);
    }
}

impl Deserialize for Pin {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<Pin, SnapError> {
        Ok(Pin {
            name: String::deserialize(input)?,
            direction: Direction::deserialize(input)?,
            capacitance_pf: f64::deserialize(input)?,
        })
    }
}

impl Serialize for DeviceId {
    fn serialize(&self, out: &mut Serializer) {
        self.0.serialize(out);
    }
}

impl Deserialize for DeviceId {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<DeviceId, SnapError> {
        Ok(DeviceId(usize::deserialize(input)?))
    }
}

impl Serialize for ContextBin {
    fn serialize(&self, out: &mut Serializer) {
        // The same stable codes as variant names ('0'/'1'/'2'), as u8.
        out.write_u8(match self {
            ContextBin::Dense => 0,
            ContextBin::Medium => 1,
            ContextBin::Isolated => 2,
        });
    }
}

impl Deserialize for ContextBin {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<ContextBin, SnapError> {
        match input.read_u8()? {
            0 => Ok(ContextBin::Dense),
            1 => Ok(ContextBin::Medium),
            2 => Ok(ContextBin::Isolated),
            other => Err(SnapError::Malformed {
                what: format!("context bin tag {other}"),
            }),
        }
    }
}

impl Serialize for CellContext {
    fn serialize(&self, out: &mut Serializer) {
        self.lt.serialize(out);
        self.rt.serialize(out);
        self.lb.serialize(out);
        self.rb.serialize(out);
    }
}

impl Deserialize for CellContext {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<CellContext, SnapError> {
        Ok(CellContext {
            lt: ContextBin::deserialize(input)?,
            rt: ContextBin::deserialize(input)?,
            lb: ContextBin::deserialize(input)?,
            rb: ContextBin::deserialize(input)?,
        })
    }
}

impl Serialize for NldmTable {
    fn serialize(&self, out: &mut Serializer) {
        self.slew_axis().serialize(out);
        self.load_axis().serialize(out);
        out.write_len(self.values().len());
        for row in self.values() {
            row.serialize(out);
        }
    }
}

impl Deserialize for NldmTable {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<NldmTable, SnapError> {
        let slew = Vec::<f64>::deserialize(input)?;
        let load = Vec::<f64>::deserialize(input)?;
        let rows = input.read_len()?;
        let mut values = Vec::with_capacity(rows);
        for _ in 0..rows {
            values.push(Vec::<f64>::deserialize(input)?);
        }
        // Re-validate through the public constructor: axes must be
        // strictly increasing and the matrix rectangular.
        NldmTable::new(slew, load, values).map_err(|e| SnapError::Malformed {
            what: format!("NLDM table: {e}"),
        })
    }
}

impl Serialize for TimingArc {
    fn serialize(&self, out: &mut Serializer) {
        self.from_pin.serialize(out);
        self.to_pin.serialize(out);
        self.delay.serialize(out);
        self.output_slew.serialize(out);
        self.devices.serialize(out);
    }
}

impl Deserialize for TimingArc {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<TimingArc, SnapError> {
        let from_pin = String::deserialize(input)?;
        let to_pin = String::deserialize(input)?;
        let delay = NldmTable::deserialize(input)?;
        let output_slew = NldmTable::deserialize(input)?;
        let devices = Vec::<DeviceId>::deserialize(input)?;
        if devices.is_empty() {
            return Err(SnapError::Malformed {
                what: format!("arc {from_pin}->{to_pin} has no devices"),
            });
        }
        Ok(TimingArc {
            from_pin,
            to_pin,
            delay,
            output_slew,
            devices,
        })
    }
}

impl Serialize for CharacterizedCell {
    fn serialize(&self, out: &mut Serializer) {
        self.cell_name.serialize(out);
        self.variant_name.serialize(out);
        self.device_lengths_nm.serialize(out);
        self.pins.serialize(out);
        self.arcs.serialize(out);
    }
}

impl Deserialize for CharacterizedCell {
    fn deserialize(input: &mut Deserializer<'_>) -> Result<CharacterizedCell, SnapError> {
        Ok(CharacterizedCell {
            cell_name: String::deserialize(input)?,
            variant_name: String::deserialize(input)?,
            device_lengths_nm: Vec::<f64>::deserialize(input)?,
            pins: Vec::<Pin>::deserialize(input)?,
            arcs: Vec::<TimingArc>::deserialize(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{characterize, CharacterizeOptions, Library};
    use svt_snap::{from_bytes, to_bytes};

    #[test]
    fn characterized_cell_round_trips_bit_exactly() {
        let lib = Library::svt90();
        let nand = lib.cell("NAND2X1").unwrap();
        let lengths: Vec<f64> = (0..nand.layout().devices().len())
            .map(|i| 90.0 + 0.37 * i as f64)
            .collect();
        let cell = characterize(
            nand,
            &lengths,
            "NAND2X1_snap",
            CharacterizeOptions::default(),
        )
        .unwrap();
        let back: CharacterizedCell = from_bytes(&to_bytes(&cell)).unwrap();
        assert_eq!(back, cell);
        // PartialEq is value equality; additionally pin down exact bits
        // of the scaled tables.
        for (a, b) in cell.arcs.iter().zip(&back.arcs) {
            for (ra, rb) in a.delay.values().iter().zip(b.delay.values()) {
                for (va, vb) in ra.iter().zip(rb) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
    }

    #[test]
    fn all_81_contexts_round_trip() {
        for ctx in CellContext::enumerate() {
            let back: CellContext = from_bytes(&to_bytes(&ctx)).unwrap();
            assert_eq!(back, ctx);
        }
    }

    #[test]
    fn invalid_table_bytes_are_rejected_on_decode() {
        // A non-increasing slew axis fails NldmTable::new on restore.
        let bad = (
            vec![0.2f64, 0.1],
            vec![0.01f64],
            1u64, // one row follows
        );
        let mut bytes = to_bytes(&bad);
        bytes.extend_from_slice(&to_bytes(&vec![0.05f64]));
        assert!(matches!(
            from_bytes::<NldmTable>(&bytes),
            Err(SnapError::Malformed { .. })
        ));
    }
}
