use std::collections::BTreeMap;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use svt_exec::{qf64, resolve_threads, try_par_map_threads, MemoCache};
use svt_litho::LithoSimulator;
use svt_opc::{LibraryOpc, ModelOpc, OpcOptions};

use crate::{
    characterize, CellContext, CharacterizeOptions, CharacterizedCell, Library, Region,
    StdcellError,
};

/// A post-OPC printed-CD lookup table over (left, right) neighbor-poly
/// spacing — the "look-up table which matches pitch to printed CD" of paper
/// §3.1.1, used for cell-boundary devices.
///
/// Each entry is built by running model-based OPC on a three-line pattern
/// (the device flanked at the requested spacings) and measuring the printed
/// device CD with the sign-off simulator. Spacings at or beyond the radius
/// of influence are represented by an "isolated" sentinel column/row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PitchCdTable {
    /// Grid of characterized spacings (nm), ascending; the last entry acts
    /// as the isolated sentinel.
    spacings_nm: Vec<f64>,
    /// `cd[i][j]` for left spacing `spacings_nm[i]`, right `spacings_nm[j]`.
    cd_nm: Vec<Vec<f64>>,
    drawn_cd_nm: f64,
}

impl PitchCdTable {
    /// Builds the table by OPC + sign-off simulation on every spacing pair.
    ///
    /// # Errors
    ///
    /// Returns [`StdcellError::Expansion`] if any pattern fails to correct
    /// or print.
    pub fn build(
        signoff: &LithoSimulator,
        opc: &ModelOpc,
        drawn_cd_nm: f64,
        spacings_nm: &[f64],
    ) -> Result<PitchCdTable, StdcellError> {
        Self::build_with_threads(signoff, opc, drawn_cd_nm, spacings_nm, None)
    }

    /// [`PitchCdTable::build`] with an explicit worker-thread count
    /// (`None` resolves via `SVT_THREADS` / available parallelism). All
    /// spacing pairs are simulated independently across the pool; the
    /// table layout is identical to the sequential nested loop.
    ///
    /// # Errors
    ///
    /// See [`PitchCdTable::build`].
    pub fn build_with_threads(
        signoff: &LithoSimulator,
        opc: &ModelOpc,
        drawn_cd_nm: f64,
        spacings_nm: &[f64],
        threads: Option<usize>,
    ) -> Result<PitchCdTable, StdcellError> {
        if spacings_nm.len() < 2 || spacings_nm.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StdcellError::Expansion {
                reason: "need at least two strictly increasing spacings".into(),
            });
        }
        let _span = svt_obs::span("stdcell.pitch_table.build");
        let n = spacings_nm.len();
        let pairs: Vec<(f64, f64)> = spacings_nm
            .iter()
            .flat_map(|&left| spacings_nm.iter().map(move |&right| (left, right)))
            .collect();
        let flat = try_par_map_threads(resolve_threads(threads), &pairs, |&(left, right)| {
            let _pair = svt_obs::span("stdcell.pitch_table.pair");
            Self::entry(signoff, opc, drawn_cd_nm, left, right)
        })?;
        let cd = flat.chunks(n).map(<[f64]>::to_vec).collect();
        Ok(PitchCdTable {
            spacings_nm: spacings_nm.to_vec(),
            cd_nm: cd,
            drawn_cd_nm,
        })
    }

    fn entry(
        signoff: &LithoSimulator,
        opc: &ModelOpc,
        drawn: f64,
        left: f64,
        right: f64,
    ) -> Result<f64, StdcellError> {
        // OPC + sign-off on the three-line pattern is the dominant cost of
        // a table build; identical (engine, geometry) inputs always print
        // the same CD, so rebuilds hit the memo. Failures are never cached.
        let key = (
            signoff.identity(),
            opc.identity(),
            qf64(drawn),
            qf64(left),
            qf64(right),
        );
        if let Some(cd) = pair_cache().get(&key) {
            return Ok(cd);
        }
        let cd = Self::entry_uncached(signoff, opc, drawn, left, right)?;
        pair_cache().insert(key, cd);
        Ok(cd)
    }

    fn entry_uncached(
        signoff: &LithoSimulator,
        opc: &ModelOpc,
        drawn: f64,
        left: f64,
        right: f64,
    ) -> Result<f64, StdcellError> {
        use svt_opc::{CutlinePattern, OpcLine};
        let mut pattern = CutlinePattern::new(-2048.0, 4096.0);
        pattern.push(OpcLine::gate(0.0, drawn));
        pattern.push(OpcLine::dummy(-(left + drawn), drawn));
        pattern.push(OpcLine::dummy(right + drawn, drawn));
        opc.correct(&mut pattern)
            .map_err(|e| StdcellError::Expansion {
                reason: format!("OPC failed at spacings ({left}, {right}): {e}"),
            })?;
        signoff
            .print_device_cd(
                pattern.x0(),
                pattern.length(),
                &pattern.chrome(),
                0.0,
                0.0,
                1.0,
            )
            .map_err(|e| StdcellError::Expansion {
                reason: format!("sign-off failed at spacings ({left}, {right}): {e}"),
            })
    }

    /// Drawn CD the table was characterized for.
    #[must_use]
    pub fn drawn_cd_nm(&self) -> f64 {
        self.drawn_cd_nm
    }

    /// The characterized spacing grid.
    #[must_use]
    pub fn spacings_nm(&self) -> &[f64] {
        &self.spacings_nm
    }

    /// Printed CD for a device with the given neighbor spacings (`None` =
    /// no neighbor within the radius of influence). Bilinear interpolation
    /// inside the grid; spacings clamp to the grid ends.
    #[must_use]
    pub fn cd_at(&self, left_nm: Option<f64>, right_nm: Option<f64>) -> f64 {
        let iso = *self.spacings_nm.last().expect("validated nonempty");
        let l = left_nm.unwrap_or(iso).clamp(self.spacings_nm[0], iso);
        let r = right_nm.unwrap_or(iso).clamp(self.spacings_nm[0], iso);
        let (i, ti) = segment(&self.spacings_nm, l);
        let (j, tj) = segment(&self.spacings_nm, r);
        let v00 = self.cd_nm[i][j];
        let v01 = self.cd_nm[i][j + 1];
        let v10 = self.cd_nm[i + 1][j];
        let v11 = self.cd_nm[i + 1][j + 1];
        let a = v00 + (v01 - v00) * tj;
        let b = v10 + (v11 - v10) * tj;
        a + (b - a) * ti
    }

    /// Half-range of the CD variation across the table — the `lvar_pitch`
    /// contribution of paper §3.3 ("denote the total range of CD variation
    /// after OPC by ±lvar_pitch").
    #[must_use]
    pub fn lvar_pitch(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.cd_nm {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (hi - lo) / 2.0
    }
}

/// Key of one pitch-table entry: sign-off identity, OPC-engine identity,
/// and exact bits of (drawn, left spacing, right spacing).
pub type PitchPairKey = ([u64; 9], [u64; 15], u64, u64, u64);
type PairKey = PitchPairKey;

fn pair_cache() -> &'static MemoCache<PairKey, f64> {
    static CACHE: OnceLock<MemoCache<PairKey, f64>> = OnceLock::new();
    static TELEMETRY: OnceLock<()> = OnceLock::new();
    let cache = CACHE.get_or_init(MemoCache::default);
    TELEMETRY.get_or_init(|| svt_exec::register_cache_telemetry("stdcell.pitch_pairs", cache));
    cache
}

/// Key of one library-OPC row: engine identity, exact bits of every gate
/// `(center, drawn)`, and the cell width (`cell_lo` is always 0 here).
pub type OpcRowKey = ([u64; 17], Vec<(u64, u64)>, u64);
type RowKey = OpcRowKey;

fn row_cache() -> &'static MemoCache<RowKey, Vec<f64>> {
    static CACHE: OnceLock<MemoCache<RowKey, Vec<f64>>> = OnceLock::new();
    static TELEMETRY: OnceLock<()> = OnceLock::new();
    let cache = CACHE.get_or_init(MemoCache::default);
    TELEMETRY.get_or_init(|| svt_exec::register_cache_telemetry("stdcell.opc_rows", cache));
    cache
}

/// Drops the expansion memo caches (pitch-table entries and library-OPC
/// row CDs). Benchmarks call this between cold-cache measurements; cached
/// values are bit-identical to recomputed ones, so results never depend on
/// cache state.
pub fn clear_expand_caches() {
    pair_cache().clear();
    row_cache().clear();
}

/// Targeted invalidation of pitch-table memo entries: drops every cached
/// pair whose left *or* right neighbor spacing matches one of
/// `spacings_nm` (exact-bit match, the same [`qf64`] quantization the
/// keys use), across all engine identities. Returns the number of
/// entries dropped.
///
/// This is the keyed-invalidation hook the ECO flow calls when an edit
/// moves geometry at the given spacings: the affected table rows go cold
/// and are recomputed (and re-memoized) on the next
/// [`PitchCdTable::build`], while every other pair stays warm. Memoized
/// CDs are pure in their key, so invalidation is always *conservative* —
/// it can cost a recomputation, never change a printed CD; the
/// differential suite holds results bit-identical across any cache
/// state.
pub fn invalidate_pitch_pairs(spacings_nm: &[f64]) -> usize {
    let bits: Vec<u64> = spacings_nm.iter().map(|&s| qf64(s)).collect();
    let dropped = pair_cache()
        .retain(|&(_, _, _, left, right), _| !bits.contains(&left) && !bits.contains(&right));
    svt_obs::counter!("stdcell.pitch_pairs.invalidated").add(dropped as u64);
    dropped
}

/// Hit/miss counters of the expansion memo caches, as
/// `(pitch-table pairs, library-OPC rows)`.
#[must_use]
pub fn expand_cache_stats() -> (svt_exec::CacheStats, svt_exec::CacheStats) {
    (pair_cache().stats(), row_cache().stats())
}

/// A portable copy of the expansion memo caches (pitch-table pairs and
/// library-OPC row CDs), as produced by [`export_expand_caches`] and
/// consumed by [`preload_expand_caches`]. Entries are key-sorted, so the
/// same cache contents always serialize to the same bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpandCacheSnapshot {
    /// Pitch-table pair entries (key → printed CD bits).
    pub pairs: Vec<(PitchPairKey, f64)>,
    /// Library-OPC row entries (key → per-device printed CDs).
    pub rows: Vec<(OpcRowKey, Vec<f64>)>,
}

/// Exports the current contents of the expansion memo caches, key-sorted
/// for deterministic serialization. Memoized values are pure in their
/// keys, so an exported snapshot is valid for any process whose engine
/// identities match the keys.
#[must_use]
pub fn export_expand_caches() -> ExpandCacheSnapshot {
    let mut pairs = pair_cache().export_entries();
    pairs.sort_unstable_by_key(|a| a.0);
    let mut rows = row_cache().export_entries();
    rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    ExpandCacheSnapshot { pairs, rows }
}

/// Preloads the expansion memo caches from a snapshot (existing entries
/// win). Returns the number of entries actually loaded. Keys embed the
/// engine identities, so a snapshot from a different engine build simply
/// never hits — preloading is always safe, at worst useless.
pub fn preload_expand_caches(snapshot: &ExpandCacheSnapshot) -> usize {
    pair_cache().preload(snapshot.pairs.iter().cloned())
        + row_cache().preload(snapshot.rows.iter().cloned())
}

impl svt_snap::Serialize for ExpandCacheSnapshot {
    fn serialize(&self, out: &mut svt_snap::Serializer) {
        self.pairs.serialize(out);
        self.rows.serialize(out);
    }
}

impl svt_snap::Deserialize for ExpandCacheSnapshot {
    fn deserialize(
        input: &mut svt_snap::Deserializer<'_>,
    ) -> Result<ExpandCacheSnapshot, svt_snap::SnapError> {
        Ok(ExpandCacheSnapshot {
            pairs: svt_snap::Deserialize::deserialize(input)?,
            rows: svt_snap::Deserialize::deserialize(input)?,
        })
    }
}

impl svt_snap::Serialize for PitchCdTable {
    fn serialize(&self, out: &mut svt_snap::Serializer) {
        self.spacings_nm.serialize(out);
        self.cd_nm.serialize(out);
        self.drawn_cd_nm.serialize(out);
    }
}

impl svt_snap::Deserialize for PitchCdTable {
    fn deserialize(
        input: &mut svt_snap::Deserializer<'_>,
    ) -> Result<PitchCdTable, svt_snap::SnapError> {
        let spacings_nm: Vec<f64> = svt_snap::Deserialize::deserialize(input)?;
        let cd_nm: Vec<Vec<f64>> = svt_snap::Deserialize::deserialize(input)?;
        let drawn_cd_nm: f64 = svt_snap::Deserialize::deserialize(input)?;
        // Re-validate the build invariants so a tampered snapshot cannot
        // produce a table `cd_at` would index out of bounds.
        if spacings_nm.len() < 2 || spacings_nm.windows(2).any(|w| w[0] >= w[1]) {
            return Err(svt_snap::SnapError::Malformed {
                what: "pitch table spacings must be >= 2 and strictly increasing".into(),
            });
        }
        if cd_nm.len() != spacings_nm.len()
            || cd_nm.iter().any(|row| row.len() != spacings_nm.len())
        {
            return Err(svt_snap::SnapError::Malformed {
                what: format!(
                    "pitch table CD matrix must be {n}x{n}",
                    n = spacings_nm.len()
                ),
            });
        }
        Ok(PitchCdTable {
            spacings_nm,
            cd_nm,
            drawn_cd_nm,
        })
    }
}

impl svt_snap::Serialize for ExpandedLibrary {
    fn serialize(&self, out: &mut svt_snap::Serializer) {
        self.library_name.serialize(out);
        self.pitch_table.serialize(out);
        self.base_cds.serialize(out);
        self.variants.serialize(out);
    }
}

impl svt_snap::Deserialize for ExpandedLibrary {
    fn deserialize(
        input: &mut svt_snap::Deserializer<'_>,
    ) -> Result<ExpandedLibrary, svt_snap::SnapError> {
        Ok(ExpandedLibrary {
            library_name: svt_snap::Deserialize::deserialize(input)?,
            pitch_table: svt_snap::Deserialize::deserialize(input)?,
            base_cds: svt_snap::Deserialize::deserialize(input)?,
            variants: svt_snap::Deserialize::deserialize(input)?,
        })
    }
}

fn segment(axis: &[f64], x: f64) -> (usize, f64) {
    let i = match axis.partition_point(|&a| a <= x) {
        0 => 0,
        k if k >= axis.len() => axis.len() - 2,
        k => k - 1,
    };
    let t = ((x - axis[i]) / (axis[i + 1] - axis[i])).clamp(0.0, 1.0);
    (i, t)
}

/// Options of the expanded-library build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpandOptions {
    /// Spacing grid of the boundary-device CD table.
    pub table_spacings_nm: Vec<f64>,
    /// OPC engine options.
    pub opc: OpcOptions,
    /// Characterization options.
    pub characterize: CharacterizeOptions,
    /// Worker-thread count for the expansion (`None` resolves via the
    /// `SVT_THREADS` environment variable, then available parallelism).
    /// Results are identical for every thread count.
    pub threads: Option<usize>,
}

impl Default for ExpandOptions {
    fn default() -> ExpandOptions {
        ExpandOptions {
            table_spacings_nm: vec![150.0, 200.0, 250.0, 300.0, 400.0, 500.0, 700.0],
            opc: OpcOptions::default(),
            characterize: CharacterizeOptions::default(),
            threads: None,
        }
    }
}

impl ExpandOptions {
    /// A cheap configuration for tests and quick experiments.
    #[must_use]
    pub fn fast() -> ExpandOptions {
        ExpandOptions {
            table_spacings_nm: vec![200.0, 400.0, 700.0],
            ..ExpandOptions::default()
        }
    }
}

/// The context-expanded library: every cell of the base library
/// characterized in all 81 placement contexts, "a `.lib` which has 81
/// versions of each cell in the original library" (paper §3.1.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpandedLibrary {
    library_name: String,
    pitch_table: PitchCdTable,
    /// Library-OPC printed CD per device of each cell (interior baseline).
    base_cds: BTreeMap<String, Vec<f64>>,
    variants: BTreeMap<String, CharacterizedCell>,
}

impl ExpandedLibrary {
    /// Name of the base library.
    #[must_use]
    pub fn library_name(&self) -> &str {
        &self.library_name
    }

    /// The boundary-device CD lookup table.
    #[must_use]
    pub fn pitch_table(&self) -> &PitchCdTable {
        &self.pitch_table
    }

    /// The library-OPC printed CDs of a cell (aligned with its devices).
    #[must_use]
    pub fn base_cds(&self, cell: &str) -> Option<&[f64]> {
        self.base_cds.get(cell).map(Vec::as_slice)
    }

    /// The characterized variant of a cell in a placement context.
    #[must_use]
    pub fn variant(&self, cell: &str, context: CellContext) -> Option<&CharacterizedCell> {
        self.variants.get(&variant_name(cell, context))
    }

    /// All variants (≈ 81 × cell count).
    pub fn variants(&self) -> impl Iterator<Item = &CharacterizedCell> {
        self.variants.values()
    }

    /// Number of variants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }
}

/// The canonical variant name of a cell in a context.
#[must_use]
pub fn variant_name(cell: &str, context: CellContext) -> String {
    format!("{cell}_ctx{}", context.code())
}

/// Builds the context-expanded library.
///
/// Pipeline (paper §3.1):
/// 1. library-based OPC of every cell master in a dummy environment —
///    interior devices get their printed CD from this step;
/// 2. a through-pitch CD table for boundary devices;
/// 3. for each of the 81 contexts, boundary-device CDs are re-read from the
///    table at the context's representative (pessimistic) spacings and the
///    cell is re-characterized.
///
/// # Errors
///
/// Returns [`StdcellError::Expansion`] when OPC or simulation fails.
pub fn expand_library(
    library: &Library,
    signoff: &LithoSimulator,
    options: &ExpandOptions,
) -> Result<ExpandedLibrary, StdcellError> {
    let _span = svt_obs::span("stdcell.expand");
    let threads = resolve_threads(options.threads);
    let opc = ModelOpc::with_production_model(signoff, options.opc);
    let pitch_table = PitchCdTable::build_with_threads(
        signoff,
        &opc,
        options.characterize.nominal_length_nm,
        &options.table_spacings_nm,
        options.threads,
    )?;
    let library_opc = LibraryOpc::new(opc, 150.0, options.characterize.nominal_length_nm);

    // Phase 1 — library OPC, parallel over cells. Each cell's printed
    // baseline CDs and its boundary corners are independent of every
    // other cell.
    let cells = library.cells();
    let prepped: Vec<(Vec<f64>, Vec<BoundaryCorner>)> =
        try_par_map_threads(threads, cells, |cell| {
            let _cell = svt_obs::span("stdcell.expand.library_opc");
            let layout = cell.layout();
            let mut cds = vec![options.characterize.nominal_length_nm; layout.devices().len()];
            // Library OPC row by row: each device row has its own cutline.
            for region in [Region::P, Region::N] {
                let gates: Vec<(f64, f64)> = layout
                    .row_spans(region)
                    .iter()
                    .map(|&(_, (lo, hi))| ((lo + hi) / 2.0, hi - lo))
                    .collect();
                let ids: Vec<usize> = layout
                    .row_spans(region)
                    .iter()
                    .map(|&(id, _)| id.0)
                    .collect();
                let key: RowKey = (
                    library_opc.identity(),
                    gates.iter().map(|&(c, w)| (qf64(c), qf64(w))).collect(),
                    qf64(layout.width_nm()),
                );
                let printed = if let Some(cached) = row_cache().get(&key) {
                    cached
                } else {
                    let corrected = library_opc
                        .correct_cell(&gates, 0.0, layout.width_nm())
                        .map_err(|e| StdcellError::Expansion {
                            reason: format!(
                                "library OPC failed for `{}` {region:?} row: {e}",
                                cell.name()
                            ),
                        })?;
                    row_cache().insert(key, corrected.printed_cd_nm.clone());
                    corrected.printed_cd_nm
                };
                for (k, &cd) in printed.iter().enumerate() {
                    cds[ids[k]] = cd;
                }
            }
            // Identify the four boundary devices (leftmost/rightmost per row)
            // and the in-cell spacing on their interior side.
            Ok((cds, boundary_corners(layout)))
        })?;

    // Phase 2 — characterization, parallel over cell × context pairs.
    let work: Vec<(usize, CellContext)> = (0..cells.len())
        .flat_map(|ci| CellContext::enumerate().map(move |context| (ci, context)))
        .collect();
    let characterized = try_par_map_threads(threads, &work, |&(ci, context)| {
        let _ctx = svt_obs::span("stdcell.expand.characterize");
        let cell = &cells[ci];
        let (cds, corners) = &prepped[ci];
        let mut lengths = cds.clone();
        for corner in corners {
            let bin = match (corner.left_is_outside, corner.region) {
                (true, Region::P) => context.lt,
                (true, Region::N) => context.lb,
                (false, Region::P) => context.rt,
                (false, Region::N) => context.rb,
            };
            // nps is measured device edge to neighbor poly, so the
            // bin's representative spacing is used directly.
            let outside = bin.representative_spacing_nm();
            let (left, right) = if corner.left_is_outside {
                (outside, Some(corner.inside_space_nm))
            } else {
                (Some(corner.inside_space_nm), outside)
            };
            lengths[corner.device_index] = pitch_table.cd_at(left, right);
        }
        let name = variant_name(cell.name(), context);
        let cell_variant = characterize(cell, &lengths, &name, options.characterize)?;
        Ok((name, cell_variant))
    })?;

    let base_cds: BTreeMap<String, Vec<f64>> = cells
        .iter()
        .zip(&prepped)
        .map(|(cell, (cds, _))| (cell.name().to_string(), cds.clone()))
        .collect();
    let variants: BTreeMap<String, CharacterizedCell> = characterized.into_iter().collect();

    Ok(ExpandedLibrary {
        library_name: library.name().to_string(),
        pitch_table,
        base_cds,
        variants,
    })
}

/// A boundary device of a cell: which device, which row, which side faces
/// the neighboring cell, and the known in-cell spacing on its interior
/// side.
struct BoundaryCorner {
    device_index: usize,
    region: Region,
    left_is_outside: bool,
    inside_space_nm: f64,
}

fn boundary_corners(layout: &crate::CellAbstract) -> Vec<BoundaryCorner> {
    let mut corners = Vec::with_capacity(4);
    for region in [Region::P, Region::N] {
        let spaces = layout.in_row_spaces(region);
        if spaces.is_empty() {
            continue;
        }
        let first = spaces[0];
        let last = spaces[spaces.len() - 1];
        // With a single device per row the same device owns both corners;
        // both are emitted and the right-corner lookup runs last.
        corners.push(BoundaryCorner {
            device_index: first.0 .0,
            region,
            left_is_outside: true,
            inside_space_nm: first.2,
        });
        corners.push(BoundaryCorner {
            device_index: last.0 .0,
            region,
            left_is_outside: false,
            inside_space_nm: last.1,
        });
    }
    corners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContextBin;
    use svt_litho::Process;
    use svt_snap::Serialize as _;

    fn signoff() -> LithoSimulator {
        Process::nm90().simulator()
    }

    fn small_library() -> Library {
        // Expansion over the full 10-cell library is exercised by the
        // experiment binaries; tests use a 2-cell subset for speed.
        let full = Library::svt90();
        let cells: Vec<_> = full
            .cells()
            .iter()
            .filter(|c| matches!(c.name(), "INVX1" | "NAND2X1"))
            .cloned()
            .collect();
        Library::from_cells("svt90_sub", cells)
    }

    #[test]
    fn targeted_invalidation_recomputes_bit_identically() {
        let sim = signoff();
        let lib = small_library();
        let opts = ExpandOptions::fast();
        let first = expand_library(&lib, &sim, &opts).unwrap();
        assert!(
            expand_cache_stats().0.entries > 0,
            "expansion must populate the pair cache"
        );

        // Invalidate every pair touching one grid spacing: with the fast
        // 3-point grid [200, 400, 700], spacing 400 participates in
        // 3 + 3 - 1 = 5 of the 9 pairs (possibly more if sibling tests
        // populated the shared cache concurrently).
        let dropped = invalidate_pitch_pairs(&[400.0]);
        assert!(dropped >= 5, "dropped only {dropped} of the family");
        // A spacing off every grid drops nothing.
        assert_eq!(invalidate_pitch_pairs(&[123.456]), 0);

        // Rebuild: cold pairs recompute, warm pairs hit, and the table
        // is bit-identical to the fully-warm build.
        let second = expand_library(&lib, &sim, &opts).unwrap();
        let a = first.pitch_table();
        let b = second.pitch_table();
        assert_eq!(a.spacings_nm(), b.spacings_nm());
        for (l, r) in a.spacings_nm().iter().zip(b.spacings_nm()) {
            assert_eq!(l.to_bits(), r.to_bits());
        }
        for (&l, &r) in a.spacings_nm().iter().zip(b.spacings_nm()) {
            let ca = a.cd_at(Some(l), Some(r));
            let cb = b.cd_at(Some(l), Some(r));
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }

    #[test]
    fn parallel_expansion_matches_sequential() {
        let sim = signoff();
        let lib = small_library();
        let seq = expand_library(
            &lib,
            &sim,
            &ExpandOptions {
                threads: Some(1),
                ..ExpandOptions::fast()
            },
        )
        .unwrap();
        let par = expand_library(
            &lib,
            &sim,
            &ExpandOptions {
                threads: Some(4),
                ..ExpandOptions::fast()
            },
        )
        .unwrap();
        // Bit-for-bit: worker count must not change a single CD or arc.
        assert_eq!(seq, par);
    }

    #[test]
    fn warm_pitch_table_rebuild_is_identical() {
        let sim = signoff();
        let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
        let spacings = [200.0, 400.0, 700.0];
        let cold = PitchCdTable::build(&sim, &opc, 90.0, &spacings).unwrap();
        let warm = PitchCdTable::build(&sim, &opc, 90.0, &spacings).unwrap();
        assert_eq!(cold, warm);
    }

    #[test]
    fn pitch_table_varies_with_spacing() {
        let sim = signoff();
        let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
        let table = PitchCdTable::build(&sim, &opc, 90.0, &[200.0, 400.0, 700.0]).unwrap();
        assert!(
            table.lvar_pitch() > 0.1,
            "lvar_pitch {}",
            table.lvar_pitch()
        );
        assert!(
            table.lvar_pitch() < 10.0,
            "lvar_pitch {}",
            table.lvar_pitch()
        );
        // Interpolation stays within the corner values.
        let mid = table.cd_at(Some(300.0), Some(300.0));
        assert!(mid > 70.0 && mid < 110.0);
        // Isolated sentinel works.
        let iso = table.cd_at(None, None);
        assert!((iso - table.cd_at(Some(700.0), Some(700.0))).abs() < 1e-9);
    }

    #[test]
    fn pitch_table_rejects_bad_grids() {
        let sim = signoff();
        let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
        assert!(PitchCdTable::build(&sim, &opc, 90.0, &[300.0]).is_err());
        assert!(PitchCdTable::build(&sim, &opc, 90.0, &[400.0, 300.0]).is_err());
    }

    #[test]
    fn expansion_produces_81_variants_per_cell() {
        let lib = small_library();
        let expanded = expand_library(&lib, &signoff(), &ExpandOptions::fast()).unwrap();
        assert_eq!(expanded.len(), 2 * 81);
        assert!(!expanded.is_empty());
        let ctx = CellContext::default();
        let v = expanded.variant("INVX1", ctx).unwrap();
        assert_eq!(v.cell_name, "INVX1");
        assert_eq!(v.variant_name, variant_name("INVX1", ctx));
        assert!(expanded.variant("NORX9", ctx).is_none());
    }

    #[test]
    fn context_changes_boundary_device_lengths_only() {
        let lib = small_library();
        let expanded = expand_library(&lib, &signoff(), &ExpandOptions::fast()).unwrap();
        let dense = expanded
            .variant("NAND2X1", CellContext::uniform(ContextBin::Dense))
            .unwrap();
        let iso = expanded
            .variant("NAND2X1", CellContext::uniform(ContextBin::Isolated))
            .unwrap();
        let differing: usize = dense
            .device_lengths_nm
            .iter()
            .zip(&iso.device_lengths_nm)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(differing > 0, "contexts must matter");
        // NAND2 has 4 devices, all of which are boundary devices (2 per
        // row), so up to 4 may differ — but never more.
        assert!(differing <= 4);
    }

    #[test]
    fn dense_context_is_slower_or_faster_consistently() {
        // Whatever the sign of the iso-dense bias, a context change must
        // change arc delay through the device lengths.
        let lib = small_library();
        let expanded = expand_library(&lib, &signoff(), &ExpandOptions::fast()).unwrap();
        let dense = expanded
            .variant("INVX1", CellContext::uniform(ContextBin::Dense))
            .unwrap();
        let iso = expanded
            .variant("INVX1", CellContext::uniform(ContextBin::Isolated))
            .unwrap();
        let d_dense = dense.arcs[0].delay.lookup(0.05, 0.01);
        let d_iso = iso.arcs[0].delay.lookup(0.05, 0.01);
        assert!(
            (d_dense - d_iso).abs() > 1e-6,
            "dense {d_dense} vs iso {d_iso} should differ"
        );
    }

    #[test]
    fn expanded_library_snapshot_round_trips_bit_exactly() {
        let lib = small_library();
        let expanded = expand_library(&lib, &signoff(), &ExpandOptions::fast()).unwrap();
        let back: ExpandedLibrary = svt_snap::from_bytes(&svt_snap::to_bytes(&expanded)).unwrap();
        assert_eq!(back, expanded);
        // PartialEq compares f64 by value; additionally require exact bits
        // on a boundary-device length, the most derived quantity we store.
        let ctx = CellContext::uniform(ContextBin::Dense);
        let a = expanded.variant("NAND2X1", ctx).unwrap();
        let b = back.variant("NAND2X1", ctx).unwrap();
        for (x, y) in a.device_lengths_nm.iter().zip(&b.device_lengths_nm) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // The memo caches round-trip the same way, and preloading them into
        // a warm cache is a no-op (existing entries win).
        let caches = export_expand_caches();
        assert!(!caches.pairs.is_empty());
        let restored: ExpandCacheSnapshot =
            svt_snap::from_bytes(&svt_snap::to_bytes(&caches)).unwrap();
        assert_eq!(restored, caches);
        assert_eq!(preload_expand_caches(&restored), 0);
    }

    #[test]
    fn tampered_pitch_table_snapshot_is_rejected() {
        let sim = signoff();
        let opc = ModelOpc::with_production_model(&sim, OpcOptions::default());
        let table = PitchCdTable::build(&sim, &opc, 90.0, &[200.0, 400.0, 700.0]).unwrap();
        let good = svt_snap::to_bytes(&table);
        // Shrink the spacing grid to a single entry without touching the
        // CD matrix: shape validation must reject the decode.
        let mut bad = svt_snap::Serializer::default();
        vec![200.0f64].serialize(&mut bad);
        let mut bytes = bad.into_bytes();
        bytes.extend_from_slice(&good[to_bytes_len_of_spacings(&table)..]);
        assert!(matches!(
            svt_snap::from_bytes::<PitchCdTable>(&bytes),
            Err(svt_snap::SnapError::Malformed { .. })
        ));
    }

    fn to_bytes_len_of_spacings(table: &PitchCdTable) -> usize {
        let mut s = svt_snap::Serializer::default();
        table.spacings_nm.serialize(&mut s);
        s.into_bytes().len()
    }

    #[test]
    fn base_cds_are_near_target_after_library_opc() {
        let lib = small_library();
        let expanded = expand_library(&lib, &signoff(), &ExpandOptions::fast()).unwrap();
        for cell in lib.cells() {
            let cds = expanded.base_cds(cell.name()).unwrap();
            for &cd in cds {
                assert!(
                    (cd - 90.0).abs() < 8.0,
                    "{}: library-OPC CD {cd} too far from target",
                    cell.name()
                );
            }
        }
    }
}
