use serde::{Deserialize, Serialize};

use crate::{CellAbstract, StdcellError, TimingArc};

/// Pin direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Cell input.
    Input,
    /// Cell output.
    Output,
}

/// A logical cell pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pin {
    /// Pin name (`A`, `B`, `Z`, …).
    pub name: String,
    /// Direction.
    pub direction: Direction,
    /// Input capacitance in picofarads (0 for outputs).
    pub capacitance_pf: f64,
}

impl Pin {
    /// An input pin.
    #[must_use]
    pub fn input(name: impl Into<String>, capacitance_pf: f64) -> Pin {
        Pin {
            name: name.into(),
            direction: Direction::Input,
            capacitance_pf,
        }
    }

    /// An output pin.
    #[must_use]
    pub fn output(name: impl Into<String>) -> Pin {
        Pin {
            name: name.into(),
            direction: Direction::Output,
            capacitance_pf: 0.0,
        }
    }
}

/// A standard cell: logic interface, timing arcs, and poly-level layout.
///
/// # Examples
///
/// ```
/// use svt_stdcell::Library;
///
/// let lib = Library::svt90();
/// let inv = lib.cell("INVX1").expect("INVX1 exists");
/// assert_eq!(inv.output_pin().name, "Z");
/// assert_eq!(inv.arcs().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    name: String,
    pins: Vec<Pin>,
    arcs: Vec<TimingArc>,
    layout: CellAbstract,
}

impl Cell {
    /// Creates a cell.
    ///
    /// # Errors
    ///
    /// Returns [`StdcellError::InvalidCell`] unless the cell has exactly one
    /// output pin, at least one input pin, every arc references existing
    /// pins, and arc device ids are valid for the layout.
    pub fn new(
        name: impl Into<String>,
        pins: Vec<Pin>,
        arcs: Vec<TimingArc>,
        layout: CellAbstract,
    ) -> Result<Cell, StdcellError> {
        let name = name.into();
        let outputs = pins
            .iter()
            .filter(|p| p.direction == Direction::Output)
            .count();
        let inputs = pins
            .iter()
            .filter(|p| p.direction == Direction::Input)
            .count();
        if outputs != 1 || inputs == 0 {
            return Err(StdcellError::InvalidCell {
                cell: name,
                reason: format!("need 1 output and ≥1 input, got {outputs}/{inputs}"),
            });
        }
        for arc in &arcs {
            let from_ok = pins
                .iter()
                .any(|p| p.name == arc.from_pin && p.direction == Direction::Input);
            let to_ok = pins
                .iter()
                .any(|p| p.name == arc.to_pin && p.direction == Direction::Output);
            if !from_ok || !to_ok {
                return Err(StdcellError::InvalidCell {
                    cell: name,
                    reason: format!(
                        "arc {}->{} references unknown pins",
                        arc.from_pin, arc.to_pin
                    ),
                });
            }
            if arc.devices.iter().any(|d| d.0 >= layout.devices().len()) {
                return Err(StdcellError::InvalidCell {
                    cell: name,
                    reason: format!(
                        "arc {}->{} references a missing device",
                        arc.from_pin, arc.to_pin
                    ),
                });
            }
        }
        Ok(Cell {
            name,
            pins,
            arcs,
            layout,
        })
    }

    /// Cell name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All pins.
    #[must_use]
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// A pin by name.
    #[must_use]
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// The input pins.
    pub fn input_pins(&self) -> impl Iterator<Item = &Pin> {
        self.pins.iter().filter(|p| p.direction == Direction::Input)
    }

    /// The single output pin.
    ///
    /// # Panics
    ///
    /// Never panics for cells built through [`Cell::new`], which enforces
    /// exactly one output.
    #[must_use]
    pub fn output_pin(&self) -> &Pin {
        self.pins
            .iter()
            .find(|p| p.direction == Direction::Output)
            .expect("Cell::new enforces one output pin")
    }

    /// The timing arcs.
    #[must_use]
    pub fn arcs(&self) -> &[TimingArc] {
        &self.arcs
    }

    /// The arc from a given input pin, if any.
    #[must_use]
    pub fn arc_from(&self, input: &str) -> Option<&TimingArc> {
        self.arcs.iter().find(|a| a.from_pin == input)
    }

    /// The poly-level layout abstract.
    #[must_use]
    pub fn layout(&self) -> &CellAbstract {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::columnar_cell;
    use crate::{DeviceId, NldmTable};

    fn tiny() -> NldmTable {
        NldmTable::new(vec![0.1], vec![0.01], vec![vec![0.05]]).unwrap()
    }

    fn inv_parts() -> (Vec<Pin>, Vec<TimingArc>, CellAbstract) {
        let pins = vec![Pin::input("A", 0.002), Pin::output("Z")];
        let arcs = vec![TimingArc::new(
            "A",
            "Z",
            tiny(),
            tiny(),
            vec![DeviceId(0), DeviceId(1)],
        )];
        (pins, arcs, columnar_cell("INVT", 1, 90.0, 300.0, 205.0))
    }

    #[test]
    fn valid_cell_constructs() {
        let (pins, arcs, layout) = inv_parts();
        let cell = Cell::new("INVT", pins, arcs, layout).unwrap();
        assert_eq!(cell.input_pins().count(), 1);
        assert_eq!(cell.output_pin().name, "Z");
        assert!(cell.arc_from("A").is_some());
        assert!(cell.arc_from("B").is_none());
        assert!(cell.pin("A").is_some());
    }

    #[test]
    fn missing_output_is_rejected() {
        let (_, arcs, layout) = inv_parts();
        let pins = vec![Pin::input("A", 0.002)];
        assert!(Cell::new("INVT", pins, arcs, layout).is_err());
    }

    #[test]
    fn arc_with_unknown_pin_is_rejected() {
        let (pins, _, layout) = inv_parts();
        let arcs = vec![TimingArc::new("B", "Z", tiny(), tiny(), vec![DeviceId(0)])];
        assert!(Cell::new("INVT", pins, arcs, layout).is_err());
    }

    #[test]
    fn arc_with_bad_device_is_rejected() {
        let (pins, _, layout) = inv_parts();
        let arcs = vec![TimingArc::new("A", "Z", tiny(), tiny(), vec![DeviceId(99)])];
        assert!(Cell::new("INVT", pins, arcs, layout).is_err());
    }
}
