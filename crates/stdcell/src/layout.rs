use serde::{Deserialize, Serialize};

use svt_geom::{CellLayout, Layer, Nm, Rect, Shape};

/// Which device row of the cell a gate segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// PMOS row (top of the cell).
    P,
    /// NMOS row (bottom of the cell).
    N,
}

/// Index of a device within its cell's device list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

/// One transistor gate segment on a cell cutline.
///
/// A device is where a vertical poly line crosses a diffusion row. The
/// paper's methodology is entirely 1-D: what matters about a device is its
/// x-interval on its row's cutline (its drawn gate length and position) and
/// which logical gate column it implements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Logical gate column (one per independently switched poly line).
    pub column: usize,
    /// Device row.
    pub region: Region,
    /// Gate center x in cell-local nanometres.
    pub center_nm: f64,
    /// Drawn gate length in nanometres.
    pub length_nm: f64,
}

impl Device {
    /// Gate x-span `(lo, hi)`.
    #[must_use]
    pub fn span(&self) -> (f64, f64) {
        (
            self.center_nm - self.length_nm / 2.0,
            self.center_nm + self.length_nm / 2.0,
        )
    }
}

/// The four cell-boundary spacings of paper §3.1.3: distance from the cell
/// outline to the closest device on each corner (left/right × top/bottom).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundarySpacings {
    /// Left outline to leftmost p-device edge.
    pub s_lt: f64,
    /// Left outline to leftmost n-device edge.
    pub s_lb: f64,
    /// Rightmost p-device edge to right outline.
    pub s_rt: f64,
    /// Rightmost n-device edge to right outline.
    pub s_rb: f64,
}

/// The poly-level abstract of a standard cell: outline, device rows, and
/// gate segments.
///
/// # Examples
///
/// ```
/// use svt_stdcell::Library;
///
/// let lib = Library::svt90();
/// let inv = lib.cell("INVX1").expect("INVX1 exists");
/// let abs = inv.layout();
/// assert_eq!(abs.devices().len(), 2); // one P and one N gate
/// let s = abs.boundary_spacings();
/// assert!(s.s_lt > 0.0 && s.s_rb > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellAbstract {
    name: String,
    width_nm: f64,
    height_nm: f64,
    devices: Vec<Device>,
}

impl CellAbstract {
    /// Standard cell height of the svt90 library (nm).
    pub const CELL_HEIGHT_NM: f64 = 2400.0;
    /// y-coordinate of the p-row cutline.
    pub const P_CUTLINE_Y_NM: f64 = 1800.0;
    /// y-coordinate of the n-row cutline.
    pub const N_CUTLINE_Y_NM: f64 = 600.0;

    /// Creates an abstract. Devices are sorted by `(region, center)`.
    ///
    /// # Panics
    ///
    /// Panics if the outline is degenerate or a device escapes it.
    #[must_use]
    pub fn new(name: impl Into<String>, width_nm: f64, devices: Vec<Device>) -> CellAbstract {
        assert!(width_nm > 0.0, "cell width must be positive");
        let name = name.into();
        for d in &devices {
            let (lo, hi) = d.span();
            assert!(
                lo > 0.0 && hi < width_nm,
                "device at {} escapes cell `{name}` of width {width_nm}",
                d.center_nm
            );
        }
        let mut devices = devices;
        devices.sort_by(|a, b| {
            (a.region, a.center_nm)
                .partial_cmp(&(b.region, b.center_nm))
                .expect("device coordinates are finite")
        });
        CellAbstract {
            name,
            width_nm,
            height_nm: Self::CELL_HEIGHT_NM,
            devices,
        }
    }

    /// Cell name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Placement width in nanometres.
    #[must_use]
    pub fn width_nm(&self) -> f64 {
        self.width_nm
    }

    /// Placement height in nanometres.
    #[must_use]
    pub fn height_nm(&self) -> f64 {
        self.height_nm
    }

    /// All devices, sorted by `(region, center)`.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The devices of one row, in left-to-right order.
    pub fn devices_in(&self, region: Region) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.region == region)
            .map(|(i, d)| (DeviceId(i), d))
    }

    /// Devices implementing a logical gate column.
    pub fn devices_of_column(&self, column: usize) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.column == column)
            .map(|(i, d)| (DeviceId(i), d))
    }

    /// The boundary spacings of paper §3.1.3.
    ///
    /// # Panics
    ///
    /// Panics if either device row is empty (every svt90 cell populates
    /// both rows).
    #[must_use]
    pub fn boundary_spacings(&self) -> BoundarySpacings {
        let row = |region: Region| -> (f64, f64) {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (_, d) in self.devices_in(region) {
                let (a, b) = d.span();
                lo = lo.min(a);
                hi = hi.max(b);
            }
            assert!(
                lo.is_finite(),
                "cell `{}` has an empty {region:?} row",
                self.name
            );
            (lo, hi)
        };
        let (p_lo, p_hi) = row(Region::P);
        let (n_lo, n_hi) = row(Region::N);
        BoundarySpacings {
            s_lt: p_lo,
            s_lb: n_lo,
            s_rt: self.width_nm - p_hi,
            s_rb: self.width_nm - n_hi,
        }
    }

    /// The x-interval gate spans of one row, for cutline simulation,
    /// left-to-right, paired with their device ids.
    #[must_use]
    pub fn row_spans(&self, region: Region) -> Vec<(DeviceId, (f64, f64))> {
        self.devices_in(region)
            .map(|(id, d)| (id, d.span()))
            .collect()
    }

    /// Space between adjacent devices of one row (mask edge to edge), and
    /// to the cell outline at the row ends, for each device:
    /// `(left_space, right_space)` where outline distances come back too.
    #[must_use]
    pub fn in_row_spaces(&self, region: Region) -> Vec<(DeviceId, f64, f64)> {
        let spans = self.row_spans(region);
        spans
            .iter()
            .enumerate()
            .map(|(k, &(id, (lo, hi)))| {
                let left = if k == 0 { lo } else { lo - spans[k - 1].1 .1 };
                let right = if k + 1 == spans.len() {
                    self.width_nm - hi
                } else {
                    spans[k + 1].1 .0 - hi
                };
                (id, left, right)
            })
            .collect()
    }

    /// Renders the abstract as a [`CellLayout`] on the geometry layers
    /// (poly gates + diffusion rows + outline), for mask assembly and
    /// visualization.
    #[must_use]
    pub fn to_cell_layout(&self) -> CellLayout {
        let w = Nm::from_f64(self.width_nm);
        let h = Nm::from_f64(self.height_nm);
        let mut cell = CellLayout::new(self.name.clone(), Rect::new(Nm(0), Nm(0), w, h));
        // Diffusion rows.
        let p_y = Nm::from_f64(Self::P_CUTLINE_Y_NM);
        let n_y = Nm::from_f64(Self::N_CUTLINE_Y_NM);
        let half_diff = Nm(300);
        cell.push(Shape::new(
            Layer::Diffusion,
            Rect::new(Nm(100), p_y - half_diff, w - Nm(100), p_y + half_diff),
        ));
        cell.push(Shape::new(
            Layer::Diffusion,
            Rect::new(Nm(100), n_y - half_diff, w - Nm(100), n_y + half_diff),
        ));
        // Gate poly: one rect per device spanning its diffusion row plus
        // end caps.
        for d in &self.devices {
            let (lo, hi) = d.span();
            let (y0, y1) = match d.region {
                Region::P => (p_y - half_diff - Nm(100), p_y + half_diff + Nm(100)),
                Region::N => (n_y - half_diff - Nm(100), n_y + half_diff + Nm(100)),
            };
            cell.push(Shape::new(
                Layer::Poly,
                Rect::new(Nm::from_f64(lo), y0, Nm::from_f64(hi), y1),
            ));
        }
        cell
    }
}

/// Builds a simple multi-column cell: `columns` poly lines at `pitch_nm`,
/// aligned p/n rows, first gate at `edge_nm` from the left outline and the
/// same margin on the right. Used by the library constructors.
pub(crate) fn columnar_cell(
    name: &str,
    columns: usize,
    gate_len_nm: f64,
    pitch_nm: f64,
    edge_nm: f64,
) -> CellAbstract {
    columnar_cell_with_offsets(name, columns, gate_len_nm, pitch_nm, edge_nm, &[])
}

/// Builds a cell whose p-row and n-row use *different* gate pitches —
/// real layout practice: series stacks (the NAND n-stack, the NOR p-stack)
/// carry no contacts between gates and pack at sub-contacted pitch, while
/// the parallel row needs contact space. Both rows are centered in the
/// cell, which makes the four boundary spacings naturally distinct.
pub(crate) fn two_pitch_cell(
    name: &str,
    columns: usize,
    gate_len_nm: f64,
    p_pitch_nm: f64,
    n_pitch_nm: f64,
    edge_nm: f64,
) -> CellAbstract {
    assert!(columns >= 1);
    let extent = |pitch: f64| (columns - 1) as f64 * pitch + gate_len_nm;
    let p_extent = extent(p_pitch_nm);
    let n_extent = extent(n_pitch_nm);
    let width = 2.0 * edge_nm + p_extent.max(n_extent);
    let mut devices = Vec::with_capacity(2 * columns);
    for (region, pitch, ext) in [
        (Region::P, p_pitch_nm, p_extent),
        (Region::N, n_pitch_nm, n_extent),
    ] {
        let start = (width - ext) / 2.0 + gate_len_nm / 2.0;
        for c in 0..columns {
            devices.push(Device {
                column: c,
                region,
                center_nm: start + c as f64 * pitch,
                length_nm: gate_len_nm,
            });
        }
    }
    CellAbstract::new(name, width, devices)
}

/// Like [`columnar_cell`], but offsets the *n*-row gate of the listed
/// columns by `(column, dx)` — the poly jogs that make top and bottom
/// boundary spacings differ (paper §3.1.2, footnote 3).
pub(crate) fn columnar_cell_with_offsets(
    name: &str,
    columns: usize,
    gate_len_nm: f64,
    pitch_nm: f64,
    edge_nm: f64,
    n_offsets: &[(usize, f64)],
) -> CellAbstract {
    assert!(columns >= 1);
    let width = 2.0 * edge_nm + (columns - 1) as f64 * pitch_nm + gate_len_nm;
    let mut devices = Vec::with_capacity(2 * columns);
    for c in 0..columns {
        let x = edge_nm + gate_len_nm / 2.0 + c as f64 * pitch_nm;
        devices.push(Device {
            column: c,
            region: Region::P,
            center_nm: x,
            length_nm: gate_len_nm,
        });
        let dx = n_offsets
            .iter()
            .find(|(col, _)| *col == c)
            .map(|(_, dx)| *dx)
            .unwrap_or(0.0);
        devices.push(Device {
            column: c,
            region: Region::N,
            center_nm: x + dx,
            length_nm: gate_len_nm,
        });
    }
    CellAbstract::new(name, width, devices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2_like() -> CellAbstract {
        columnar_cell("NAND2T", 2, 90.0, 300.0, 205.0)
    }

    #[test]
    fn columnar_geometry_is_consistent() {
        let c = nand2_like();
        assert_eq!(c.devices().len(), 4);
        assert_eq!(c.width_nm(), 2.0 * 205.0 + 300.0 + 90.0);
        let s = c.boundary_spacings();
        assert_eq!(s.s_lt, 205.0);
        assert_eq!(s.s_lb, 205.0);
        assert_eq!(s.s_rt, 205.0);
        assert_eq!(s.s_rb, 205.0);
    }

    #[test]
    fn n_offsets_skew_bottom_spacings() {
        let c = columnar_cell_with_offsets("SKEW", 2, 90.0, 300.0, 205.0, &[(1, 60.0)]);
        let s = c.boundary_spacings();
        assert_eq!(s.s_lt, s.s_lb, "left column is unskewed");
        assert!(s.s_rb < s.s_rt, "offset n gate moves toward the right edge");
        assert!((s.s_rt - s.s_rb - 60.0).abs() < 1e-9);
    }

    #[test]
    fn in_row_spaces_cover_neighbors_and_outline() {
        let c = nand2_like();
        let spaces = c.in_row_spaces(Region::P);
        assert_eq!(spaces.len(), 2);
        let (_, l0, r0) = spaces[0];
        assert_eq!(l0, 205.0);
        assert_eq!(r0, 300.0 - 90.0); // pitch minus gate length
        let (_, l1, r1) = spaces[1];
        assert_eq!(l1, 210.0);
        assert_eq!(r1, 205.0);
    }

    #[test]
    fn row_iteration_is_left_to_right() {
        let c = nand2_like();
        let xs: Vec<f64> = c.devices_in(Region::N).map(|(_, d)| d.center_nm).collect();
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn devices_of_column_spans_both_rows() {
        let c = nand2_like();
        let regions: Vec<Region> = c.devices_of_column(1).map(|(_, d)| d.region).collect();
        assert_eq!(regions.len(), 2);
        assert!(regions.contains(&Region::P) && regions.contains(&Region::N));
    }

    #[test]
    #[should_panic(expected = "escapes cell")]
    fn device_outside_outline_is_rejected() {
        let d = Device {
            column: 0,
            region: Region::P,
            center_nm: 10.0,
            length_nm: 90.0,
        };
        let _ = CellAbstract::new("BAD", 600.0, vec![d]);
    }

    #[test]
    fn geometry_export_has_poly_and_diffusion() {
        let layout = nand2_like().to_cell_layout();
        assert_eq!(layout.shapes_on(Layer::Poly).count(), 4);
        assert_eq!(layout.shapes_on(Layer::Diffusion).count(), 2);
        assert!(layout.validate(Nm(0)).is_ok());
    }
}
