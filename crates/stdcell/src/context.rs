use serde::{Deserialize, Serialize};

/// One of the three neighbor-spacing bins of the expanded library
/// (paper §4: nps values are binned into {200–400, 400–600, ≥600} nm).
///
/// "Since dense geometries print larger in the process, we use the lower of
/// the bin extremes to be pessimistic in our timing estimates" — each bin
/// therefore exposes a representative spacing at its dense edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContextBin {
    /// Neighbor poly within 200–400 nm.
    Dense,
    /// Neighbor poly within 400–600 nm.
    Medium,
    /// No neighbor poly within the 600 nm radius of influence.
    Isolated,
}

impl ContextBin {
    /// All bins, dense to isolated.
    pub const ALL: [ContextBin; 3] = [ContextBin::Dense, ContextBin::Medium, ContextBin::Isolated];

    /// Bins a neighbor-poly spacing (edge to edge, nm). `None` spacing
    /// (no neighbor in the window) is isolated.
    #[must_use]
    pub fn from_spacing(spacing_nm: Option<f64>) -> ContextBin {
        match spacing_nm {
            Some(s) if s < 400.0 => ContextBin::Dense,
            Some(s) if s < 600.0 => ContextBin::Medium,
            _ => ContextBin::Isolated,
        }
    }

    /// The representative (pessimistic, dense-edge) spacing of the bin in
    /// nanometres; `None` for isolated (beyond the radius of influence).
    #[must_use]
    pub fn representative_spacing_nm(self) -> Option<f64> {
        match self {
            ContextBin::Dense => Some(200.0),
            ContextBin::Medium => Some(400.0),
            ContextBin::Isolated => None,
        }
    }

    /// A stable single-character code used in expanded-cell names.
    #[must_use]
    pub fn code(self) -> char {
        match self {
            ContextBin::Dense => '0',
            ContextBin::Medium => '1',
            ContextBin::Isolated => '2',
        }
    }

    /// Parses a bin code.
    #[must_use]
    pub fn from_code(c: char) -> Option<ContextBin> {
        match c {
            '0' => Some(ContextBin::Dense),
            '1' => Some(ContextBin::Medium),
            '2' => Some(ContextBin::Isolated),
            _ => None,
        }
    }
}

/// A placement context of a cell: the four binned neighbor-poly spacings
/// `nps_LT`, `nps_RT`, `nps_LB`, `nps_RB` of paper §3.1.2.
///
/// # Examples
///
/// ```
/// use svt_stdcell::{CellContext, ContextBin};
///
/// assert_eq!(CellContext::enumerate().count(), 81);
/// let ctx = CellContext::uniform(ContextBin::Isolated);
/// assert_eq!(ctx.code(), "2222");
/// assert_eq!(CellContext::from_code("0121"), Some(CellContext::new(
///     ContextBin::Dense, ContextBin::Medium, ContextBin::Isolated, ContextBin::Medium,
/// )));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellContext {
    /// Left-top (p-row, left side) neighbor spacing bin.
    pub lt: ContextBin,
    /// Right-top bin.
    pub rt: ContextBin,
    /// Left-bottom (n-row) bin.
    pub lb: ContextBin,
    /// Right-bottom bin.
    pub rb: ContextBin,
}

impl CellContext {
    /// Creates a context from its four bins (LT, RT, LB, RB order).
    #[must_use]
    pub fn new(lt: ContextBin, rt: ContextBin, lb: ContextBin, rb: ContextBin) -> CellContext {
        CellContext { lt, rt, lb, rb }
    }

    /// The same bin on all four corners.
    #[must_use]
    pub fn uniform(bin: ContextBin) -> CellContext {
        CellContext::new(bin, bin, bin, bin)
    }

    /// Enumerates all 3⁴ = 81 contexts in a stable order.
    pub fn enumerate() -> impl Iterator<Item = CellContext> {
        ContextBin::ALL.into_iter().flat_map(|lt| {
            ContextBin::ALL.into_iter().flat_map(move |rt| {
                ContextBin::ALL.into_iter().flat_map(move |lb| {
                    ContextBin::ALL
                        .into_iter()
                        .map(move |rb| CellContext::new(lt, rt, lb, rb))
                })
            })
        })
    }

    /// Four-character code (LT RT LB RB), used to suffix expanded cell
    /// names, e.g. `NAND2X1_ctx0121`.
    #[must_use]
    pub fn code(&self) -> String {
        [self.lt, self.rt, self.lb, self.rb]
            .iter()
            .map(|b| b.code())
            .collect()
    }

    /// Parses a four-character code.
    #[must_use]
    pub fn from_code(code: &str) -> Option<CellContext> {
        let mut chars = code.chars();
        let lt = ContextBin::from_code(chars.next()?)?;
        let rt = ContextBin::from_code(chars.next()?)?;
        let lb = ContextBin::from_code(chars.next()?)?;
        let rb = ContextBin::from_code(chars.next()?)?;
        if chars.next().is_some() {
            return None;
        }
        Some(CellContext::new(lt, rt, lb, rb))
    }
}

impl Default for CellContext {
    /// The fully isolated context — the pessimism-free default when no
    /// placement information exists.
    fn default() -> CellContext {
        CellContext::uniform(ContextBin::Isolated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_binning_matches_paper_edges() {
        assert_eq!(ContextBin::from_spacing(Some(200.0)), ContextBin::Dense);
        assert_eq!(ContextBin::from_spacing(Some(399.9)), ContextBin::Dense);
        assert_eq!(ContextBin::from_spacing(Some(400.0)), ContextBin::Medium);
        assert_eq!(ContextBin::from_spacing(Some(599.9)), ContextBin::Medium);
        assert_eq!(ContextBin::from_spacing(Some(600.0)), ContextBin::Isolated);
        assert_eq!(ContextBin::from_spacing(None), ContextBin::Isolated);
    }

    #[test]
    fn representative_spacings_are_dense_edges() {
        assert_eq!(ContextBin::Dense.representative_spacing_nm(), Some(200.0));
        assert_eq!(ContextBin::Medium.representative_spacing_nm(), Some(400.0));
        assert_eq!(ContextBin::Isolated.representative_spacing_nm(), None);
    }

    #[test]
    fn enumeration_is_complete_and_unique() {
        let all: Vec<CellContext> = CellContext::enumerate().collect();
        assert_eq!(all.len(), 81);
        let mut codes: Vec<String> = all.iter().map(CellContext::code).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 81);
    }

    #[test]
    fn codes_round_trip() {
        for ctx in CellContext::enumerate() {
            assert_eq!(CellContext::from_code(&ctx.code()), Some(ctx));
        }
        assert_eq!(CellContext::from_code("012"), None);
        assert_eq!(CellContext::from_code("01234"), None);
        assert_eq!(CellContext::from_code("01x1"), None);
    }

    #[test]
    fn default_is_isolated() {
        assert_eq!(
            CellContext::default(),
            CellContext::uniform(ContextBin::Isolated)
        );
    }
}
