//! The 90 nm-class standard-cell library of the `svt` workspace.
//!
//! The paper's experiment takes "the 10 most frequently used cells in a
//! 90 nm standard-cell library", applies library-based OPC to them,
//! characterizes 81 context versions of each (3 bins × 4 neighbor-spacing
//! parameters), and times placed circuits against the expanded library.
//! This crate provides every piece of that chain:
//!
//! * [`CellAbstract`] / [`Device`] — procedural poly-level layouts of the
//!   10 cells on two device cutlines (p and n), including boundary-device
//!   spacings (`s_LT`, `s_LB`, `s_RT`, `s_RB` of paper §3.1.3),
//! * [`Cell`], [`Library`] — logic pins, timing arcs with their device
//!   lists, and the base NLDM ([`NldmTable`]) characterization,
//! * [`CellContext`] / [`ContextBin`] — the 3⁴ = 81 placement contexts,
//! * [`characterize`] — gate-length-scaled table generation (delay linear
//!   in gate length, paper §3.1.2),
//! * [`ExpandedLibrary`] — the full 81-version context library built from
//!   library-OPC printed CDs and a through-pitch CD lookup,
//! * [`liberty`] — a Liberty-flavoured text format writer and parser so the
//!   expanded libraries can round-trip to disk.
//!
//! # Examples
//!
//! ```
//! use svt_stdcell::Library;
//!
//! let lib = Library::svt90();
//! assert_eq!(lib.cells().len(), 10);
//! let nand = lib.cell("NAND2X1").expect("NAND2X1 exists");
//! assert_eq!(nand.input_pins().count(), 2);
//! assert!(!nand.arcs().is_empty());
//! ```

mod arc;
mod cell;
mod characterize;
mod context;
mod error;
mod expand;
mod layout;
pub mod liberty;
mod library;
mod nldm;
mod snap_impls;

pub use arc::TimingArc;
pub use cell::{Cell, Direction, Pin};
pub use characterize::{characterize, CharacterizeOptions, CharacterizedCell};
pub use context::{CellContext, ContextBin};
pub use error::StdcellError;
pub use expand::{
    clear_expand_caches, expand_cache_stats, expand_library, export_expand_caches,
    invalidate_pitch_pairs, preload_expand_caches, variant_name, ExpandCacheSnapshot,
    ExpandOptions, ExpandedLibrary, OpcRowKey, PitchCdTable, PitchPairKey,
};
pub use layout::{BoundarySpacings, CellAbstract, Device, DeviceId, Region};
pub use library::Library;
pub use nldm::NldmTable;
