use serde::{Deserialize, Serialize};

use crate::layout::{columnar_cell, columnar_cell_with_offsets, two_pitch_cell};
use crate::{Cell, CellAbstract, DeviceId, NldmTable, Pin, Region, StdcellError, TimingArc};

/// The svt90 standard-cell library: the "10 most frequently used cells" of
/// the paper's experiment.
///
/// | Cell | Function | Gate columns | Notes |
/// |---|---|---|---|
/// | INVX1 | inverter | 1 | |
/// | INVX2 | inverter, 2 fingers | 2 | dense 240 nm finger pitch |
/// | BUFX2 | buffer (2 stages) | 2 | sparse 360 nm stage pitch |
/// | NAND2X1 / NAND3X1 / NAND4X1 | NAND | 2 / 3 / 4 | |
/// | NOR2X1 / NOR3X1 | NOR | 2 / 3 | 320 nm pitch |
/// | AOI21X1 / OAI21X1 | and-or / or-and invert | 3 | jogged n-poly |
///
/// # Examples
///
/// ```
/// use svt_stdcell::Library;
///
/// let lib = Library::svt90();
/// assert!(lib.cell("NAND3X1").is_some());
/// assert!(lib.cell("DFFX1").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
}

/// Electrical recipe of one cell used to synthesize its base NLDM tables.
struct Recipe {
    /// Drive resistance in ns/pF.
    drive_r: f64,
    /// Intrinsic delay in ns.
    intrinsic: f64,
    /// Delay sensitivity to input slew (dimensionless).
    slew_gain: f64,
    /// Input pin capacitance in pF.
    pin_cap: f64,
}

impl Library {
    /// Builds the svt90 library.
    ///
    /// # Panics
    ///
    /// Never panics: the construction is validated by tests; invalid
    /// internal definitions would be a bug.
    #[must_use]
    pub fn svt90() -> Library {
        let cells = vec![
            build_inverter(
                "INVX1",
                1,
                300.0,
                205.0,
                Recipe {
                    drive_r: 2.8,
                    intrinsic: 0.020,
                    slew_gain: 0.16,
                    pin_cap: 0.0020,
                },
            ),
            build_inverter(
                "INVX2",
                2,
                240.0,
                165.0,
                Recipe {
                    drive_r: 1.5,
                    intrinsic: 0.018,
                    slew_gain: 0.14,
                    pin_cap: 0.0039,
                },
            ),
            build_buffer(
                "BUFX2",
                Recipe {
                    drive_r: 1.6,
                    intrinsic: 0.042,
                    slew_gain: 0.10,
                    pin_cap: 0.0021,
                },
            ),
            build_nand(
                "NAND2X1",
                2,
                300.0,
                205.0,
                Recipe {
                    drive_r: 3.0,
                    intrinsic: 0.026,
                    slew_gain: 0.18,
                    pin_cap: 0.0023,
                },
            ),
            build_nand(
                "NAND3X1",
                3,
                300.0,
                205.0,
                Recipe {
                    drive_r: 3.3,
                    intrinsic: 0.031,
                    slew_gain: 0.20,
                    pin_cap: 0.0024,
                },
            ),
            build_nand(
                "NAND4X1",
                4,
                280.0,
                165.0,
                Recipe {
                    drive_r: 3.6,
                    intrinsic: 0.036,
                    slew_gain: 0.22,
                    pin_cap: 0.0025,
                },
            ),
            build_nor(
                "NOR2X1",
                2,
                320.0,
                235.0,
                Recipe {
                    drive_r: 3.4,
                    intrinsic: 0.029,
                    slew_gain: 0.19,
                    pin_cap: 0.0022,
                },
            ),
            build_nor(
                "NOR3X1",
                3,
                320.0,
                235.0,
                Recipe {
                    drive_r: 3.8,
                    intrinsic: 0.035,
                    slew_gain: 0.21,
                    pin_cap: 0.0023,
                },
            ),
            build_aoi21(
                "AOI21X1",
                Recipe {
                    drive_r: 3.5,
                    intrinsic: 0.033,
                    slew_gain: 0.20,
                    pin_cap: 0.0024,
                },
            ),
            build_oai21(
                "OAI21X1",
                Recipe {
                    drive_r: 3.5,
                    intrinsic: 0.034,
                    slew_gain: 0.20,
                    pin_cap: 0.0024,
                },
            ),
        ];
        Library {
            name: "svt90".into(),
            cells,
        }
    }

    /// Creates a library from explicit cells (used for sub-libraries in
    /// tests and experiments).
    #[must_use]
    pub fn from_cells(name: impl Into<String>, cells: Vec<Cell>) -> Library {
        Library {
            name: name.into(),
            cells,
        }
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// A cell by name.
    #[must_use]
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name() == name)
    }

    /// The inverter used as the default mapping target.
    ///
    /// # Panics
    ///
    /// Never panics for the svt90 library.
    #[must_use]
    pub fn inverter(&self) -> &Cell {
        self.cell("INVX1").expect("svt90 always has INVX1")
    }
}

impl Default for Library {
    fn default() -> Library {
        Library::svt90()
    }
}

/// NLDM axes shared by the whole library.
fn slew_axis() -> Vec<f64> {
    vec![0.008, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8]
}

fn load_axis() -> Vec<f64> {
    vec![0.0005, 0.002, 0.005, 0.012, 0.025, 0.05, 0.1]
}

/// Base delay/slew tables from an electrical recipe. `stack` scales the
/// drive resistance for series stacks (NAND n-stack, NOR p-stack).
fn tables(recipe: &Recipe, stack: f64) -> (NldmTable, NldmTable) {
    let r = recipe.drive_r * stack;
    let t0 = recipe.intrinsic;
    let ks = recipe.slew_gain;
    let delay = NldmTable::from_fn(slew_axis(), load_axis(), |s, c| {
        t0 + ks * s + r * c + 0.8 * s * c
    })
    .expect("axes are valid by construction");
    let slew = NldmTable::from_fn(slew_axis(), load_axis(), |s, c| {
        0.6 * t0 + 0.10 * s + 1.9 * r * c
    })
    .expect("axes are valid by construction");
    (delay, slew)
}

/// Device ids of one column.
fn column_devices(layout: &CellAbstract, column: usize) -> (DeviceId, DeviceId) {
    let mut p = None;
    let mut n = None;
    for (id, d) in layout.devices_of_column(column) {
        match d.region {
            Region::P => p = Some(id),
            Region::N => n = Some(id),
        }
    }
    (
        p.expect("column has a P device"),
        n.expect("column has an N device"),
    )
}

fn expect_cell(result: Result<Cell, StdcellError>) -> Cell {
    result.expect("library cell definitions are valid by construction")
}

fn input_names(count: usize) -> Vec<&'static str> {
    const NAMES: [&str; 4] = ["A", "B", "C", "D"];
    NAMES[..count].to_vec()
}

/// Inverter: every finger is driven by A; the arc involves all devices.
fn build_inverter(name: &str, fingers: usize, pitch: f64, edge: f64, recipe: Recipe) -> Cell {
    let layout = columnar_cell(name, fingers, 90.0, pitch, edge);
    let devices: Vec<DeviceId> = (0..fingers)
        .flat_map(|c| {
            let (p, n) = column_devices(&layout, c);
            [p, n]
        })
        .collect();
    let (delay, slew) = tables(&recipe, 1.0);
    let pins = vec![Pin::input("A", recipe.pin_cap), Pin::output("Z")];
    let arcs = vec![TimingArc::new("A", "Z", delay, slew, devices)];
    expect_cell(Cell::new(name, pins, arcs, layout))
}

/// Buffer: input inverter (column 0) drives output inverter (column 1);
/// the single arc crosses both stages.
fn build_buffer(name: &str, recipe: Recipe) -> Cell {
    let layout = columnar_cell(name, 2, 90.0, 360.0, 255.0);
    let (p0, n0) = column_devices(&layout, 0);
    let (p1, n1) = column_devices(&layout, 1);
    let (delay, slew) = tables(&recipe, 1.0);
    let pins = vec![Pin::input("A", recipe.pin_cap), Pin::output("Z")];
    let arcs = vec![TimingArc::new("A", "Z", delay, slew, vec![p0, n0, p1, n1])];
    expect_cell(Cell::new(name, pins, arcs, layout))
}

/// NAND: parallel p devices (contacted pitch), series n stack packed at
/// sub-contacted pitch (no contacts land between series gates); the arc
/// from input `i` involves its p device plus the whole n stack.
fn build_nand(name: &str, inputs: usize, pitch: f64, edge: f64, recipe: Recipe) -> Cell {
    let layout = if inputs >= 2 {
        two_pitch_cell(name, inputs, 90.0, pitch, 260.0, edge)
    } else {
        columnar_cell(name, inputs, 90.0, pitch, edge)
    };
    let (delay, slew) = tables(&recipe, 1.0 + 0.25 * (inputs as f64 - 1.0));
    let mut pins: Vec<Pin> = input_names(inputs)
        .iter()
        .map(|n| Pin::input(*n, recipe.pin_cap))
        .collect();
    pins.push(Pin::output("Z"));
    let arcs = input_names(inputs)
        .iter()
        .enumerate()
        .map(|(i, pin)| {
            let (p, _) = column_devices(&layout, i);
            let mut devs = vec![p];
            for c in 0..inputs {
                devs.push(column_devices(&layout, c).1);
            }
            TimingArc::new(*pin, "Z", delay.clone(), slew.clone(), devs)
        })
        .collect();
    expect_cell(Cell::new(name, pins, arcs, layout))
}

/// NOR: series p stack at sub-contacted pitch, parallel n devices at the
/// contacted pitch.
fn build_nor(name: &str, inputs: usize, pitch: f64, edge: f64, recipe: Recipe) -> Cell {
    let layout = if inputs >= 2 {
        two_pitch_cell(name, inputs, 90.0, 260.0, pitch, edge)
    } else {
        columnar_cell(name, inputs, 90.0, pitch, edge)
    };
    let (delay, slew) = tables(&recipe, 1.0 + 0.45 * (inputs as f64 - 1.0));
    let mut pins: Vec<Pin> = input_names(inputs)
        .iter()
        .map(|n| Pin::input(*n, recipe.pin_cap))
        .collect();
    pins.push(Pin::output("Z"));
    let arcs = input_names(inputs)
        .iter()
        .enumerate()
        .map(|(i, pin)| {
            let (_, n) = column_devices(&layout, i);
            let mut devs = vec![n];
            for c in 0..inputs {
                devs.push(column_devices(&layout, c).0);
            }
            TimingArc::new(*pin, "Z", delay.clone(), slew.clone(), devs)
        })
        .collect();
    expect_cell(Cell::new(name, pins, arcs, layout))
}

/// AOI21: Z = !((A·B) + C). Jogged n-poly on column 2 skews the bottom
/// boundary spacing.
fn build_aoi21(name: &str, recipe: Recipe) -> Cell {
    let layout = columnar_cell_with_offsets(name, 3, 90.0, 300.0, 185.0, &[(2, 60.0)]);
    let (delay, slew) = tables(&recipe, 1.4);
    let pins = vec![
        Pin::input("A", recipe.pin_cap),
        Pin::input("B", recipe.pin_cap),
        Pin::input("C", recipe.pin_cap),
        Pin::output("Z"),
    ];
    let dev = |c: usize| column_devices(&layout, c);
    let arcs = vec![
        TimingArc::new("A", "Z", delay.clone(), slew.clone(), {
            let (pa, na) = dev(0);
            let (_, nb) = dev(1);
            vec![pa, na, nb]
        }),
        TimingArc::new("B", "Z", delay.clone(), slew.clone(), {
            let (pb, nb) = dev(1);
            let (_, na) = dev(0);
            vec![pb, nb, na]
        }),
        TimingArc::new("C", "Z", delay, slew, {
            let (pc, nc) = dev(2);
            vec![pc, nc]
        }),
    ];
    expect_cell(Cell::new(name, pins, arcs, layout))
}

/// OAI21: Z = !((A + B)·C). Jogged n-poly on column 0.
fn build_oai21(name: &str, recipe: Recipe) -> Cell {
    let layout = columnar_cell_with_offsets(name, 3, 90.0, 300.0, 215.0, &[(0, 55.0)]);
    let (delay, slew) = tables(&recipe, 1.4);
    let pins = vec![
        Pin::input("A", recipe.pin_cap),
        Pin::input("B", recipe.pin_cap),
        Pin::input("C", recipe.pin_cap),
        Pin::output("Z"),
    ];
    let dev = |c: usize| column_devices(&layout, c);
    let arcs = vec![
        TimingArc::new("A", "Z", delay.clone(), slew.clone(), {
            let (pa, na) = dev(0);
            let (pb, _) = dev(1);
            vec![pa, na, pb]
        }),
        TimingArc::new("B", "Z", delay.clone(), slew.clone(), {
            let (pb, nb) = dev(1);
            let (pa, _) = dev(0);
            vec![pb, nb, pa]
        }),
        TimingArc::new("C", "Z", delay, slew, {
            let (pc, nc) = dev(2);
            vec![pc, nc]
        }),
    ];
    expect_cell(Cell::new(name, pins, arcs, layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    #[test]
    fn library_has_ten_valid_cells() {
        let lib = Library::svt90();
        assert_eq!(lib.cells().len(), 10);
        for cell in lib.cells() {
            assert_eq!(
                cell.pins()
                    .iter()
                    .filter(|p| p.direction == Direction::Output)
                    .count(),
                1,
                "{}",
                cell.name()
            );
            assert_eq!(
                cell.arcs().len(),
                cell.input_pins().count(),
                "{} has one arc per input",
                cell.name()
            );
        }
    }

    #[test]
    fn arc_delays_are_monotone_in_load_and_slew() {
        let lib = Library::svt90();
        for cell in lib.cells() {
            for arc in cell.arcs() {
                let fast = arc.delay.lookup(0.02, 0.002);
                let loaded = arc.delay.lookup(0.02, 0.05);
                let slow_in = arc.delay.lookup(0.4, 0.002);
                assert!(loaded > fast, "{} load monotonicity", cell.name());
                assert!(slow_in > fast, "{} slew monotonicity", cell.name());
            }
        }
    }

    #[test]
    fn bigger_stacks_are_slower() {
        let lib = Library::svt90();
        let d = |name: &str| lib.cell(name).unwrap().arcs()[0].delay.lookup(0.05, 0.012);
        assert!(d("NAND3X1") > d("NAND2X1"));
        assert!(d("NAND4X1") > d("NAND3X1"));
        assert!(d("NOR3X1") > d("NOR2X1"));
        assert!(d("INVX2") < d("INVX1"), "X2 drives harder");
    }

    #[test]
    fn jogged_cells_have_asymmetric_boundaries() {
        let lib = Library::svt90();
        for name in ["AOI21X1", "OAI21X1"] {
            let s = lib.cell(name).unwrap().layout().boundary_spacings();
            assert!(
                (s.s_lt - s.s_lb).abs() > 1.0 || (s.s_rt - s.s_rb).abs() > 1.0,
                "{name} should have a jog"
            );
        }
    }

    #[test]
    fn all_cell_widths_are_positive_and_distinct_enough() {
        let lib = Library::svt90();
        let mut widths: Vec<f64> = lib.cells().iter().map(|c| c.layout().width_nm()).collect();
        widths.sort_by(f64::total_cmp);
        assert!(widths[0] > 400.0);
        assert!(widths.last().unwrap() > &1000.0, "NAND4 is wide");
    }

    #[test]
    fn nand_arcs_include_the_full_n_stack() {
        let lib = Library::svt90();
        let nand3 = lib.cell("NAND3X1").unwrap();
        let arc = nand3.arc_from("B").unwrap();
        // 1 p device + 3 n devices.
        assert_eq!(arc.devices.len(), 4);
    }

    #[test]
    fn inverter_accessor_returns_invx1() {
        let lib = Library::svt90();
        assert_eq!(lib.inverter().name(), "INVX1");
        assert_eq!(Library::default(), lib);
    }
}
