use serde::{Deserialize, Serialize};

use crate::{DeviceId, NldmTable};

/// A combinational timing arc: input pin to output pin, with its base NLDM
/// tables and the devices involved in the worst-case transition.
///
/// The device list is what the systematic-variation methodology consumes:
/// arcs are labeled smile / frown / self-compensated by the iso/dense
/// classification of these devices (paper §3.2), and arc delay scales with
/// their mean printed gate length (paper §3.1.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingArc {
    /// Input pin name.
    pub from_pin: String,
    /// Output pin name.
    pub to_pin: String,
    /// Base delay table at nominal gate length (ns).
    pub delay: NldmTable,
    /// Base output-slew table at nominal gate length (ns).
    pub output_slew: NldmTable,
    /// Devices participating in the worst-case transition of this arc.
    pub devices: Vec<DeviceId>,
}

impl TimingArc {
    /// Creates an arc.
    ///
    /// # Panics
    ///
    /// Panics if the device list is empty — an arc with no devices cannot
    /// be classified by the methodology.
    #[must_use]
    pub fn new(
        from_pin: impl Into<String>,
        to_pin: impl Into<String>,
        delay: NldmTable,
        output_slew: NldmTable,
        devices: Vec<DeviceId>,
    ) -> TimingArc {
        assert!(!devices.is_empty(), "timing arc needs at least one device");
        TimingArc {
            from_pin: from_pin.into(),
            to_pin: to_pin.into(),
            delay,
            output_slew,
            devices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_table() -> NldmTable {
        NldmTable::new(vec![0.1], vec![0.01], vec![vec![0.05]]).unwrap()
    }

    #[test]
    fn arc_carries_pins_and_devices() {
        let arc = TimingArc::new("A", "Z", tiny_table(), tiny_table(), vec![DeviceId(0)]);
        assert_eq!(arc.from_pin, "A");
        assert_eq!(arc.to_pin, "Z");
        assert_eq!(arc.devices, vec![DeviceId(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_device_list_is_rejected() {
        let _ = TimingArc::new("A", "Z", tiny_table(), tiny_table(), vec![]);
    }
}
