use std::error::Error;
use std::fmt;

/// Errors produced by the standard-cell crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StdcellError {
    /// An NLDM table description was malformed.
    InvalidTable {
        /// Human-readable reason.
        reason: String,
    },
    /// A cell definition was inconsistent.
    InvalidCell {
        /// Offending cell name.
        cell: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A characterization input was inconsistent with the cell.
    InvalidCharacterization {
        /// Offending cell name.
        cell: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The Liberty-flavoured text could not be parsed.
    ParseLibertyError {
        /// Line number (1-based) of the failure.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The lithography / OPC stage of library expansion failed.
    Expansion {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for StdcellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StdcellError::InvalidTable { reason } => write!(f, "invalid NLDM table: {reason}"),
            StdcellError::InvalidCell { cell, reason } => {
                write!(f, "invalid cell `{cell}`: {reason}")
            }
            StdcellError::InvalidCharacterization { cell, reason } => {
                write!(f, "cannot characterize `{cell}`: {reason}")
            }
            StdcellError::ParseLibertyError { line, reason } => {
                write!(f, "liberty parse error at line {line}: {reason}")
            }
            StdcellError::Expansion { reason } => {
                write!(f, "library expansion failed: {reason}")
            }
        }
    }
}

impl Error for StdcellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = StdcellError::ParseLibertyError {
            line: 42,
            reason: "unexpected token".into(),
        };
        assert!(e.to_string().contains("42"));
        let e = StdcellError::InvalidCell {
            cell: "NAND2X1".into(),
            reason: "no output".into(),
        };
        assert!(e.to_string().contains("NAND2X1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<StdcellError>();
    }
}
