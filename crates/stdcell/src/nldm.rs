use serde::{Deserialize, Serialize};

use crate::StdcellError;

/// A non-linear delay-model lookup table: values over an input-slew axis
/// and an output-load axis, with bilinear interpolation inside the grid and
/// linear extrapolation at the edges (matching mainstream STA semantics).
///
/// Units are nanoseconds for slews/delays and picofarads for loads.
///
/// # Examples
///
/// ```
/// use svt_stdcell::NldmTable;
///
/// let t = NldmTable::new(
///     vec![0.02, 0.1],
///     vec![0.001, 0.01],
///     vec![vec![0.05, 0.09], vec![0.07, 0.11]],
/// )?;
/// let mid = t.lookup(0.06, 0.0055);
/// assert!(mid > 0.05 && mid < 0.11);
/// # Ok::<(), svt_stdcell::StdcellError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NldmTable {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    /// `values[i][j]` at `slew_axis[i]`, `load_axis[j]`.
    values: Vec<Vec<f64>>,
}

impl NldmTable {
    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns [`StdcellError::InvalidTable`] unless both axes are strictly
    /// increasing, non-empty, and the value matrix has matching dimensions.
    pub fn new(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        values: Vec<Vec<f64>>,
    ) -> Result<NldmTable, StdcellError> {
        fn increasing(axis: &[f64]) -> bool {
            !axis.is_empty() && axis.windows(2).all(|w| w[0] < w[1])
        }
        if !increasing(&slew_axis) || !increasing(&load_axis) {
            return Err(StdcellError::InvalidTable {
                reason: "axes must be non-empty and strictly increasing".into(),
            });
        }
        if values.len() != slew_axis.len() || values.iter().any(|row| row.len() != load_axis.len())
        {
            return Err(StdcellError::InvalidTable {
                reason: format!(
                    "value matrix must be {}x{}",
                    slew_axis.len(),
                    load_axis.len()
                ),
            });
        }
        Ok(NldmTable {
            slew_axis,
            load_axis,
            values,
        })
    }

    /// Builds a table by evaluating `f(slew, load)` on the axis grid.
    ///
    /// # Errors
    ///
    /// Same validation as [`NldmTable::new`].
    pub fn from_fn<F: Fn(f64, f64) -> f64>(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        f: F,
    ) -> Result<NldmTable, StdcellError> {
        let values = slew_axis
            .iter()
            .map(|&s| load_axis.iter().map(|&c| f(s, c)).collect())
            .collect();
        NldmTable::new(slew_axis, load_axis, values)
    }

    /// The input-slew axis (ns).
    #[must_use]
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The output-load axis (pF).
    #[must_use]
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// The value matrix.
    #[must_use]
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Bilinear lookup with edge extrapolation.
    #[must_use]
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (i, ti) = segment(&self.slew_axis, slew);
        let (j, tj) = segment(&self.load_axis, load);
        if self.slew_axis.len() == 1 && self.load_axis.len() == 1 {
            return self.values[0][0];
        }
        if self.slew_axis.len() == 1 {
            return lerp(self.values[0][j], self.values[0][j + 1], tj);
        }
        if self.load_axis.len() == 1 {
            return lerp(self.values[i][0], self.values[i + 1][0], ti);
        }
        let v00 = self.values[i][j];
        let v01 = self.values[i][j + 1];
        let v10 = self.values[i + 1][j];
        let v11 = self.values[i + 1][j + 1];
        lerp(lerp(v00, v01, tj), lerp(v10, v11, tj), ti)
    }

    /// Returns a copy with every value multiplied by `factor` — the linear
    /// gate-length scaling of paper §3.1.2.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> NldmTable {
        NldmTable {
            slew_axis: self.slew_axis.clone(),
            load_axis: self.load_axis.clone(),
            values: self
                .values
                .iter()
                .map(|row| row.iter().map(|v| v * factor).collect())
                .collect(),
        }
    }

    /// The maximum table value (a cheap upper bound used in sanity checks).
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Locates `x` on `axis`: returns the segment index `i` and the (possibly
/// out-of-[0,1]) interpolation parameter toward `i + 1`. Single-point axes
/// return `(0, 0.0)`.
fn segment(axis: &[f64], x: f64) -> (usize, f64) {
    if axis.len() == 1 {
        return (0, 0.0);
    }
    let i = match axis.partition_point(|&a| a <= x) {
        0 => 0,
        k if k >= axis.len() => axis.len() - 2,
        k => k - 1,
    };
    let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, t)
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> NldmTable {
        NldmTable::new(
            vec![0.02, 0.1, 0.3],
            vec![0.001, 0.01, 0.05],
            vec![
                vec![0.05, 0.09, 0.25],
                vec![0.07, 0.11, 0.27],
                vec![0.13, 0.17, 0.33],
            ],
        )
        .unwrap()
    }

    #[test]
    fn exact_grid_points_round_trip() {
        let t = table();
        assert_eq!(t.lookup(0.02, 0.001), 0.05);
        assert_eq!(t.lookup(0.3, 0.05), 0.33);
        assert_eq!(t.lookup(0.1, 0.01), 0.11);
    }

    #[test]
    fn interior_interpolation_is_bilinear() {
        let t = table();
        // Midpoint of the first cell: average of the four corners.
        let v = t.lookup(0.06, 0.0055);
        assert!((v - (0.05 + 0.09 + 0.07 + 0.11) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolation_extends_edge_slopes() {
        let t = table();
        // Below the slew axis: slope between rows 0 and 1 continues.
        let inside = t.lookup(0.02, 0.001);
        let below = t.lookup(0.0, 0.001);
        assert!(below < inside, "extrapolation should continue downward");
        // Above the load axis.
        let above = t.lookup(0.02, 0.1);
        assert!(above > t.lookup(0.02, 0.05));
    }

    #[test]
    fn scaling_multiplies_all_values() {
        let t = table().scaled(1.1);
        assert!((t.lookup(0.02, 0.001) - 0.055).abs() < 1e-12);
        assert!((t.max_value() - 0.33 * 1.1).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(NldmTable::new(vec![], vec![0.1], vec![]).is_err());
        assert!(NldmTable::new(vec![0.2, 0.1], vec![0.1], vec![vec![1.0], vec![1.0]]).is_err());
        assert!(NldmTable::new(vec![0.1], vec![0.1], vec![vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn degenerate_single_point_axes() {
        let t = NldmTable::new(vec![0.1], vec![0.01], vec![vec![0.5]]).unwrap();
        assert_eq!(t.lookup(0.7, 9.0), 0.5);
        let t = NldmTable::new(vec![0.1], vec![0.01, 0.02], vec![vec![0.5, 0.7]]).unwrap();
        assert!((t.lookup(0.7, 0.015) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn from_fn_matches_direct_evaluation() {
        let t = NldmTable::from_fn(vec![0.1, 0.2], vec![0.01, 0.02], |s, c| s + c).unwrap();
        assert!((t.lookup(0.1, 0.02) - 0.12).abs() < 1e-12);
    }
}
