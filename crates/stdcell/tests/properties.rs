//! Property-based tests of characterization and the context machinery.

use proptest::prelude::*;

use svt_stdcell::{characterize, CellContext, CharacterizeOptions, ContextBin, Library};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arc delay is exactly linear in the mean gate length of its devices
    /// (the paper's §3.1.2 model), for every cell and arbitrary lengths.
    #[test]
    fn delay_is_linear_in_mean_length(
        cell_idx in 0usize..10,
        scale in 0.7f64..1.3,
        slew in 0.01f64..0.6,
        load in 0.001f64..0.08,
    ) {
        let lib = Library::svt90();
        let cell = &lib.cells()[cell_idx];
        let n = cell.layout().devices().len();
        let lengths: Vec<f64> = vec![90.0 * scale; n];
        let c = characterize(cell, &lengths, "p", CharacterizeOptions::default()).unwrap();
        for (orig, scaled) in cell.arcs().iter().zip(&c.arcs) {
            let base = orig.delay.lookup(slew, load);
            let got = scaled.delay.lookup(slew, load);
            // factor = 1 + (scale·90/90 − 1) = scale.
            prop_assert!((got - base * scale).abs() < 1e-9 * (1.0 + base));
        }
    }

    /// Characterization at mixed lengths equals characterization at the
    /// per-arc mean.
    #[test]
    fn per_arc_mean_is_what_matters(
        jitter in prop::collection::vec(-8.0f64..8.0, 8),
    ) {
        let lib = Library::svt90();
        let cell = lib.cell("NAND2X1").unwrap();
        let n = cell.layout().devices().len();
        let lengths: Vec<f64> = (0..n).map(|i| 90.0 + jitter[i % jitter.len()]).collect();
        let c = characterize(cell, &lengths, "p", CharacterizeOptions::default()).unwrap();
        for (orig, scaled) in cell.arcs().iter().zip(&c.arcs) {
            let mean: f64 = orig.devices.iter().map(|d| lengths[d.0]).sum::<f64>()
                / orig.devices.len() as f64;
            let uniform = characterize(
                cell,
                &vec![mean; n],
                "u",
                CharacterizeOptions::default(),
            )
            .unwrap();
            let matching = uniform
                .arcs
                .iter()
                .find(|a| a.from_pin == orig.from_pin)
                .unwrap();
            let a = scaled.delay.lookup(0.05, 0.01);
            let b = matching.delay.lookup(0.05, 0.01);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Context codes round-trip for arbitrary bin choices.
    #[test]
    fn context_codes_round_trip(lt in 0usize..3, rt in 0usize..3, lb in 0usize..3, rb in 0usize..3) {
        let bin = |i: usize| ContextBin::ALL[i];
        let ctx = CellContext::new(bin(lt), bin(rt), bin(lb), bin(rb));
        prop_assert_eq!(CellContext::from_code(&ctx.code()), Some(ctx));
    }

    /// Spacing binning is monotone: larger spacing never yields a denser
    /// bin.
    #[test]
    fn binning_is_monotone(a in 0.0f64..1200.0, b in 0.0f64..1200.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let bin_lo = ContextBin::from_spacing(Some(lo));
        let bin_hi = ContextBin::from_spacing(Some(hi));
        prop_assert!(bin_lo <= bin_hi, "{bin_lo:?} vs {bin_hi:?} for {lo} <= {hi}");
    }

    /// Boundary spacings are always positive and consistent with the cell
    /// width for every library cell.
    #[test]
    fn boundary_spacings_are_consistent(cell_idx in 0usize..10) {
        let lib = Library::svt90();
        let cell = &lib.cells()[cell_idx];
        let s = cell.layout().boundary_spacings();
        let w = cell.layout().width_nm();
        for v in [s.s_lt, s.s_lb, s.s_rt, s.s_rb] {
            prop_assert!(v > 0.0 && v < w);
        }
    }
}
