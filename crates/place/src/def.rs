//! A DEF-flavoured text format for placements.
//!
//! ```text
//! DESIGN c432 ;
//! UNITS NANOMETERS ;
//! ROW row0 0 ;
//! ROW row1 2400 ;
//! COMPONENT u0 NAND2X1 ROW 0 X 1230 ;
//! END DESIGN
//! ```
//!
//! # Examples
//!
//! ```
//! use svt_netlist::{bench, technology_map};
//! use svt_place::{def, place, PlacementOptions};
//! use svt_stdcell::Library;
//!
//! let lib = Library::svt90();
//! let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
//! let mapped = technology_map(&n, &lib)?;
//! let placement = place(&mapped, &lib, &PlacementOptions::default())?;
//! let text = def::write(&placement, &mapped);
//! let round_trip = def::parse(&text, &mapped)?;
//! assert_eq!(round_trip, placement);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use svt_netlist::MappedNetlist;

use crate::{PlaceError, PlacedInstance, Placement, PlacementRow};

/// Serializes a placement.
#[must_use]
pub fn write(placement: &Placement, netlist: &MappedNetlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("DESIGN {} ;\n", placement.design()));
    out.push_str("UNITS NANOMETERS ;\n");
    for row in placement.rows() {
        out.push_str(&format!("ROW row{} {} ;\n", row.index, row.y_nm));
    }
    for row in placement.rows() {
        for &m in &row.members {
            let p = &placement.placed()[m];
            let name = &netlist.instances()[p.instance].name;
            out.push_str(&format!(
                "COMPONENT {name} {} ROW {} X {} ;\n",
                p.cell, p.row, p.x_nm
            ));
        }
    }
    out.push_str("END DESIGN\n");
    out
}

/// Parses DEF-flavoured text back into a placement attached to `netlist`.
///
/// # Errors
///
/// Returns [`PlaceError::ParseDefError`] on malformed text and
/// [`PlaceError::Mismatch`] when a component does not exist in the netlist.
pub fn parse(text: &str, netlist: &MappedNetlist) -> Result<Placement, PlaceError> {
    let mut design = String::new();
    let mut rows: Vec<PlacementRow> = Vec::new();
    let mut placed: Vec<PlacedInstance> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| PlaceError::ParseDefError {
            line: lineno,
            reason: reason.to_string(),
        };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["DESIGN", name, ";"] => design = (*name).to_string(),
            ["UNITS", "NANOMETERS", ";"] => {}
            ["ROW", _name, y, ";"] => {
                let y_nm: f64 = y.parse().map_err(|_| err("bad row y"))?;
                rows.push(PlacementRow {
                    index: rows.len(),
                    y_nm,
                    members: Vec::new(),
                });
            }
            ["COMPONENT", name, cell, "ROW", row, "X", x, ";"] => {
                let row: usize = row.parse().map_err(|_| err("bad row index"))?;
                let x_nm: f64 = x.parse().map_err(|_| err("bad x"))?;
                let instance = netlist
                    .instances()
                    .iter()
                    .position(|i| i.name == *name)
                    .ok_or_else(|| PlaceError::Mismatch {
                        reason: format!("component `{name}` not in netlist"),
                    })?;
                if netlist.instances()[instance].cell != *cell {
                    return Err(PlaceError::Mismatch {
                        reason: format!(
                            "component `{name}` is a {} in the netlist, {cell} in the DEF",
                            netlist.instances()[instance].cell
                        ),
                    });
                }
                if row >= rows.len() {
                    return Err(err("component references an undeclared row"));
                }
                rows[row].members.push(placed.len());
                placed.push(PlacedInstance {
                    instance,
                    cell: (*cell).to_string(),
                    row,
                    x_nm,
                });
            }
            ["END", "DESIGN"] => break,
            _ => return Err(err("unrecognized statement")),
        }
    }

    // Keep row members sorted by x, matching the placer's invariant.
    for row in &mut rows {
        row.members
            .sort_by(|&a, &b| placed[a].x_nm.total_cmp(&placed[b].x_nm));
    }
    Ok(Placement::from_parts(design, placed, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, PlacementOptions};
    use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};
    use svt_stdcell::Library;

    fn setup() -> (MappedNetlist, Placement) {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let mapped = technology_map(&n, &lib).unwrap();
        let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        (mapped, placement)
    }

    #[test]
    fn round_trip_preserves_placement() {
        let (mapped, placement) = setup();
        let text = write(&placement, &mapped);
        let parsed = parse(&text, &mapped).unwrap();
        assert_eq!(parsed, placement);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let (mapped, _) = setup();
        match parse("DESIGN x ;\nGARBAGE\n", &mapped) {
            Err(PlaceError::ParseDefError { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_component_is_a_mismatch() {
        let (mapped, _) = setup();
        let text = "DESIGN x ;\nROW row0 0 ;\nCOMPONENT nope INVX1 ROW 0 X 0 ;\nEND DESIGN\n";
        assert!(matches!(
            parse(text, &mapped),
            Err(PlaceError::Mismatch { .. })
        ));
    }

    #[test]
    fn wrong_cell_is_a_mismatch() {
        let (mapped, placement) = setup();
        let text = write(&placement, &mapped);
        // Swap a cell name to force a mismatch.
        let broken = text.replacen("NAND2X1", "NOR2X1", 1);
        if broken != text {
            assert!(parse(&broken, &mapped).is_err());
        }
    }

    #[test]
    fn undeclared_row_is_rejected() {
        let (mapped, _) = setup();
        let name = &mapped.instances()[0].name;
        let cell = &mapped.instances()[0].cell;
        let text = format!("DESIGN x ;\nCOMPONENT {name} {cell} ROW 0 X 0 ;\nEND DESIGN\n");
        assert!(parse(&text, &mapped).is_err());
    }
}
