//! Row-based standard-cell placement for the `svt` workspace.
//!
//! The paper's experiment times "synthesized and placed circuits"; what the
//! methodology actually consumes from placement is 1-D: the horizontal
//! neighbor relationships of cells in rows, the whitespace between them,
//! and the resulting neighbor-poly spacings (`nps` of paper §3.1.2 /
//! Fig. 4). This crate provides:
//!
//! * [`place`] — a deterministic row placer with a seeded whitespace
//!   distribution (the whitespace statistics drive how many devices end up
//!   isolated, which the paper calls out explicitly),
//! * [`Placement`] — queries for instance positions, per-instance
//!   [`svt_stdcell::CellContext`] extraction, per-device absolute spacings
//!   ([`DeviceSite`]) for iso/dense classification and full-chip OPC, and
//!   row poly patterns,
//! * [`def`] — a DEF-flavoured text format for placements.
//!
//! # Examples
//!
//! ```
//! use svt_netlist::{bench, technology_map};
//! use svt_place::{place, PlacementOptions};
//! use svt_stdcell::Library;
//!
//! let lib = Library::svt90();
//! let n = bench::parse("# t\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n")?;
//! let mapped = technology_map(&n, &lib)?;
//! let placement = place(&mapped, &lib, &PlacementOptions::default())?;
//! assert_eq!(placement.placed_instances().count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod def;
mod error;
mod nps;
mod placer;

pub use error::PlaceError;
pub use nps::{instance_contexts_from_sites, DeviceSite, InstanceNps};
pub use placer::{place, PlacedInstance, Placement, PlacementOptions, PlacementRow};
