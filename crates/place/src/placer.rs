use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use svt_netlist::MappedNetlist;
use svt_stdcell::{CellAbstract, Library};

use crate::PlaceError;

/// Knobs of the row placer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementOptions {
    /// Target row utilization in `(0, 1]`; the remainder becomes
    /// whitespace, distributed by the seeded gap mixture.
    pub utilization: f64,
    /// Seed of the whitespace distribution.
    pub seed: u64,
    /// Placement site grid in nanometres; x positions snap to it.
    pub site_nm: f64,
}

impl Default for PlacementOptions {
    fn default() -> PlacementOptions {
        PlacementOptions {
            utilization: 0.7,
            seed: 1,
            site_nm: 10.0,
        }
    }
}

/// One placed instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedInstance {
    /// Index into the mapped netlist's instance list.
    pub instance: usize,
    /// Library cell name.
    pub cell: String,
    /// Row index.
    pub row: usize,
    /// Lower-left x in nanometres.
    pub x_nm: f64,
}

/// One placement row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRow {
    /// Row index.
    pub index: usize,
    /// Lower y coordinate in nanometres.
    pub y_nm: f64,
    /// Indices into [`Placement::placed`] of the row members, left to
    /// right.
    pub members: Vec<usize>,
}

/// A row-based placement of a mapped netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    design: String,
    placed: Vec<PlacedInstance>,
    rows: Vec<PlacementRow>,
}

impl Placement {
    pub(crate) fn from_parts(
        design: String,
        placed: Vec<PlacedInstance>,
        rows: Vec<PlacementRow>,
    ) -> Placement {
        Placement {
            design,
            placed,
            rows,
        }
    }

    /// Design name.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.design
    }

    /// All placed instances, in placement order.
    #[must_use]
    pub fn placed(&self) -> &[PlacedInstance] {
        &self.placed
    }

    /// The rows.
    #[must_use]
    pub fn rows(&self) -> &[PlacementRow] {
        &self.rows
    }

    /// Iterator over placed instances.
    pub fn placed_instances(&self) -> impl Iterator<Item = &PlacedInstance> {
        self.placed.iter()
    }

    /// The placed record of a netlist instance index, if placed.
    #[must_use]
    pub fn of_instance(&self, instance: usize) -> Option<&PlacedInstance> {
        self.placed.iter().find(|p| p.instance == instance)
    }

    /// Records a new cell master for a placed instance (ECO cell swap).
    ///
    /// Position is unchanged; geometric legality (e.g. a wider master
    /// overlapping its right-hand neighbor) is the editor's concern —
    /// this is a dumb bookkeeping update so `svt-eco` can validate
    /// against library widths *before* committing.
    ///
    /// # Errors
    ///
    /// [`PlaceError::InvalidEdit`] if the instance is not placed.
    pub fn set_cell(&mut self, instance: usize, cell: &str) -> Result<(), PlaceError> {
        let p_idx = self.placed_index(instance)?;
        self.placed[p_idx].cell = cell.to_string();
        Ok(())
    }

    /// Moves a placed instance to `x_nm` within its current row (ECO
    /// spacing adjustment), keeping the row's member list sorted left to
    /// right. Overlap legality is the editor's concern.
    ///
    /// # Errors
    ///
    /// [`PlaceError::InvalidEdit`] if the instance is not placed.
    pub fn move_within_row(&mut self, instance: usize, x_nm: f64) -> Result<(), PlaceError> {
        let p_idx = self.placed_index(instance)?;
        let row = self.placed[p_idx].row;
        self.relocate(instance, row, x_nm)
    }

    /// Moves a placed instance to (`row`, `x_nm`), keeping both rows'
    /// member lists sorted left to right. Overlap legality is the
    /// editor's concern.
    ///
    /// # Errors
    ///
    /// [`PlaceError::InvalidEdit`] if the instance is not placed or the
    /// row does not exist.
    pub fn relocate(&mut self, instance: usize, row: usize, x_nm: f64) -> Result<(), PlaceError> {
        let p_idx = self.placed_index(instance)?;
        if row >= self.rows.len() {
            return Err(PlaceError::InvalidEdit {
                reason: format!("row {row} out of range ({} rows)", self.rows.len()),
            });
        }
        let old_row = self.placed[p_idx].row;
        self.rows[old_row].members.retain(|&m| m != p_idx);
        self.placed[p_idx].row = row;
        self.placed[p_idx].x_nm = x_nm;
        let placed = &self.placed;
        let members = &mut self.rows[row].members;
        let at = members.partition_point(|&m| placed[m].x_nm <= x_nm);
        members.insert(at, p_idx);
        Ok(())
    }

    fn placed_index(&self, instance: usize) -> Result<usize, PlaceError> {
        self.placed
            .iter()
            .position(|p| p.instance == instance)
            .ok_or_else(|| PlaceError::InvalidEdit {
                reason: format!("instance index {instance} is not placed"),
            })
    }

    /// Achieved utilization: total cell width over total row extent.
    #[must_use]
    pub fn utilization(&self, library: &Library) -> f64 {
        let mut cell_width = 0.0;
        let mut extent = 0.0;
        for row in &self.rows {
            let Some(&last) = row.members.last() else {
                continue;
            };
            let first = row.members[0];
            let row_start = self.placed[first].x_nm;
            let last_inst = &self.placed[last];
            let last_width = library
                .cell(&last_inst.cell)
                .map(|c| c.layout().width_nm())
                .unwrap_or(0.0);
            extent += last_inst.x_nm + last_width - row_start;
            for &m in &row.members {
                cell_width += library
                    .cell(&self.placed[m].cell)
                    .map(|c| c.layout().width_nm())
                    .unwrap_or(0.0);
            }
        }
        if extent > 0.0 {
            cell_width / extent
        } else {
            1.0
        }
    }
}

/// Places a mapped netlist into rows.
///
/// Instances are placed in netlist order, wrapping into rows sized for a
/// roughly square core. Between consecutive cells the placer inserts a
/// whitespace gap drawn from a seeded mixture (abutment / small / medium /
/// large) tuned so the achieved utilization approaches
/// [`PlacementOptions::utilization`] while producing the broad
/// iso/dense population spread the methodology studies.
///
/// # Errors
///
/// * [`PlaceError::InvalidOptions`] if utilization or the site grid are out
///   of range.
/// * [`PlaceError::UnknownCell`] if an instance's cell is missing from the
///   library.
pub fn place(
    netlist: &MappedNetlist,
    library: &Library,
    options: &PlacementOptions,
) -> Result<Placement, PlaceError> {
    let _span = svt_obs::span("place.place");
    if options.utilization <= 0.0 || options.utilization > 1.0 {
        return Err(PlaceError::InvalidOptions {
            reason: format!("utilization {} not in (0, 1]", options.utilization),
        });
    }
    if options.site_nm <= 0.0 {
        return Err(PlaceError::InvalidOptions {
            reason: "site grid must be positive".into(),
        });
    }

    // Collect widths and validate cells.
    let mut total_width = 0.0;
    let mut widths = Vec::with_capacity(netlist.instances().len());
    for inst in netlist.instances() {
        let cell = library
            .cell(&inst.cell)
            .ok_or_else(|| PlaceError::UnknownCell {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
            })?;
        let w = cell.layout().width_nm();
        widths.push(w);
        total_width += w;
    }

    // Aim for a square core: rows × row_width ≈ total_width / utilization,
    // rows × CELL_HEIGHT ≈ row_width.
    let spread_width = total_width / options.utilization;
    let row_count = ((spread_width / CellAbstract::CELL_HEIGHT_NM).sqrt().ceil() as usize).max(1);
    let row_width = spread_width / row_count as f64;

    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut placed = Vec::with_capacity(netlist.instances().len());
    let mut rows: Vec<PlacementRow> = Vec::new();
    let mut row = 0usize;
    let mut cursor = 0.0f64;
    rows.push(PlacementRow {
        index: 0,
        y_nm: 0.0,
        members: Vec::new(),
    });

    // Mean whitespace per gap that meets the utilization target.
    let mean_gap = if netlist.instances().is_empty() {
        0.0
    } else {
        (spread_width - total_width) / netlist.instances().len() as f64
    };

    for (idx, _inst) in netlist.instances().iter().enumerate() {
        let w = widths[idx];
        if cursor + w > row_width && !rows[row].members.is_empty() {
            row += 1;
            cursor = 0.0;
            rows.push(PlacementRow {
                index: row,
                y_nm: row as f64 * CellAbstract::CELL_HEIGHT_NM,
                members: Vec::new(),
            });
        }
        let x = snap(cursor, options.site_nm);
        rows[row].members.push(placed.len());
        placed.push(PlacedInstance {
            instance: idx,
            cell: netlist.instances()[idx].cell.clone(),
            row,
            x_nm: x,
        });
        cursor = x + w + sample_gap(&mut rng, mean_gap);
    }

    Ok(Placement::from_parts(
        netlist.name().to_string(),
        placed,
        rows,
    ))
}

fn snap(x: f64, site: f64) -> f64 {
    (x / site).round() * site
}

/// Whitespace mixture: abutment, small, medium, and large gaps whose
/// expectation equals `mean_gap`. The mixture (not just the mean) matters:
/// it populates all three context bins of the expanded library.
fn sample_gap(rng: &mut SmallRng, mean_gap: f64) -> f64 {
    // Component means as multiples of the overall mean:
    // 30% abutment (0), 30% small (0.4×), 25% medium (1.2×), 15% large (2.7×).
    // 0.3·0 + 0.3·0.4 + 0.25·1.2 + 0.15·2.7 ≈ 0.825 — rescale to hit 1.
    const SCALE: f64 = 1.0 / 0.825;
    let u: f64 = rng.gen();
    let factor = if u < 0.30 {
        0.0
    } else if u < 0.60 {
        0.4 * rng.gen_range(0.5..1.5)
    } else if u < 0.85 {
        1.2 * rng.gen_range(0.5..1.5)
    } else {
        2.7 * rng.gen_range(0.5..1.5)
    };
    factor * mean_gap * SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};

    fn c432_placement() -> (MappedNetlist, Library, Placement) {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let mapped = technology_map(&n, &lib).unwrap();
        let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        (mapped, lib, placement)
    }

    #[test]
    fn every_instance_is_placed_once() {
        let (mapped, _, placement) = c432_placement();
        assert_eq!(placement.placed().len(), mapped.instances().len());
        let mut seen: Vec<usize> = placement.placed().iter().map(|p| p.instance).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), mapped.instances().len());
    }

    #[test]
    fn rows_do_not_overlap_horizontally() {
        let (_, lib, placement) = c432_placement();
        for row in placement.rows() {
            let mut last_end = f64::NEG_INFINITY;
            for &m in &row.members {
                let p = &placement.placed()[m];
                assert!(
                    p.x_nm >= last_end - 1e-9,
                    "row {} overlap at x {}",
                    row.index,
                    p.x_nm
                );
                let w = lib.cell(&p.cell).unwrap().layout().width_nm();
                last_end = p.x_nm + w;
            }
        }
    }

    #[test]
    fn utilization_approaches_the_target() {
        let (_, lib, placement) = c432_placement();
        let u = placement.utilization(&lib);
        assert!(u > 0.5 && u < 0.92, "achieved utilization {u}");
    }

    #[test]
    fn placement_is_deterministic_and_seed_sensitive() {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let mapped = technology_map(&n, &lib).unwrap();
        let a = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        let b = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        assert_eq!(a, b);
        let c = place(
            &mapped,
            &lib,
            &PlacementOptions {
                seed: 99,
                ..PlacementOptions::default()
            },
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn core_is_roughly_square() {
        let (_, _, placement) = c432_placement();
        let rows = placement.rows().len();
        assert!(rows >= 3, "only {rows} rows for c432");
        let height = rows as f64 * CellAbstract::CELL_HEIGHT_NM;
        let width = placement
            .placed()
            .iter()
            .map(|p| p.x_nm)
            .fold(0.0, f64::max);
        let aspect = width / height;
        assert!(aspect > 0.3 && aspect < 3.0, "aspect {aspect}");
    }

    #[test]
    fn options_are_validated() {
        let (mapped, lib, _) = c432_placement();
        let bad = PlacementOptions {
            utilization: 0.0,
            ..PlacementOptions::default()
        };
        assert!(place(&mapped, &lib, &bad).is_err());
        let bad = PlacementOptions {
            site_nm: -1.0,
            ..PlacementOptions::default()
        };
        assert!(place(&mapped, &lib, &bad).is_err());
    }

    #[test]
    fn edits_keep_rows_sorted() {
        let (_, _, mut placement) = c432_placement();
        // Move the first member of row 0 past its right neighbor.
        let row0 = placement.rows()[0].clone();
        assert!(row0.members.len() >= 3, "row 0 too small to test");
        let first = row0.members[0];
        let third = row0.members[2];
        let inst = placement.placed()[first].instance;
        let target_x = placement.placed()[third].x_nm + 5000.0;
        placement.move_within_row(inst, target_x).unwrap();
        for row in placement.rows() {
            let mut last = f64::NEG_INFINITY;
            for &m in &row.members {
                let x = placement.placed()[m].x_nm;
                assert!(x >= last, "row {} member order broken", row.index);
                last = x;
            }
        }
        assert_eq!(placement.of_instance(inst).unwrap().x_nm, target_x);
    }

    #[test]
    fn relocate_moves_between_rows() {
        let (_, _, mut placement) = c432_placement();
        let inst = placement.rows()[0].members[0];
        let inst = placement.placed()[inst].instance;
        let old_count_r1 = placement.rows()[1].members.len();
        placement.relocate(inst, 1, 40.0).unwrap();
        let p = placement.of_instance(inst).unwrap();
        assert_eq!((p.row, p.x_nm), (1, 40.0));
        assert_eq!(placement.rows()[1].members.len(), old_count_r1 + 1);
        assert!(!placement.rows()[0]
            .members
            .iter()
            .any(|&m| placement.placed()[m].instance == inst));
        // Bad edits are rejected.
        assert!(placement.relocate(inst, 10_000, 0.0).is_err());
        assert!(placement.set_cell(usize::MAX, "INVX1").is_err());
    }

    #[test]
    fn x_positions_are_on_the_site_grid() {
        let (_, _, placement) = c432_placement();
        for p in placement.placed() {
            let q = p.x_nm / 10.0;
            assert!((q - q.round()).abs() < 1e-9, "x {} off grid", p.x_nm);
        }
    }
}
