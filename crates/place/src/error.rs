use std::error::Error;
use std::fmt;

/// Errors produced by placement and the DEF-flavoured format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlaceError {
    /// An instance references a cell the library does not contain.
    UnknownCell {
        /// Instance name.
        instance: String,
        /// Missing cell name.
        cell: String,
    },
    /// Placement options were out of range.
    InvalidOptions {
        /// Human-readable reason.
        reason: String,
    },
    /// DEF-flavoured text could not be parsed.
    ParseDefError {
        /// 1-based line of the failure.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A parsed placement does not match the netlist it is being attached
    /// to.
    Mismatch {
        /// Human-readable reason.
        reason: String,
    },
    /// An incremental placement edit was rejected.
    InvalidEdit {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::UnknownCell { instance, cell } => {
                write!(f, "instance `{instance}` uses unknown cell `{cell}`")
            }
            PlaceError::InvalidOptions { reason } => {
                write!(f, "invalid placement options: {reason}")
            }
            PlaceError::ParseDefError { line, reason } => {
                write!(f, "def parse error at line {line}: {reason}")
            }
            PlaceError::Mismatch { reason } => write!(f, "placement/netlist mismatch: {reason}"),
            PlaceError::InvalidEdit { reason } => write!(f, "invalid placement edit: {reason}"),
        }
    }
}

impl Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = PlaceError::UnknownCell {
            instance: "u7".into(),
            cell: "GHOST".into(),
        };
        assert!(e.to_string().contains("u7") && e.to_string().contains("GHOST"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<PlaceError>();
    }
}
