use serde::{Deserialize, Serialize};

use svt_netlist::MappedNetlist;
use svt_stdcell::{CellContext, ContextBin, DeviceId, Library, Region};

use crate::placer::PlacementRow;
use crate::{PlaceError, Placement};

/// The four neighbor-poly spacings of one placed instance (paper Fig. 4):
/// device edge to nearest poly edge of the neighboring cell, per corner;
/// `None` when there is no neighbor in the row on that side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceNps {
    /// Left-top (p-row) spacing.
    pub lt: Option<f64>,
    /// Right-top spacing.
    pub rt: Option<f64>,
    /// Left-bottom (n-row) spacing.
    pub lb: Option<f64>,
    /// Right-bottom spacing.
    pub rb: Option<f64>,
}

impl InstanceNps {
    /// Bins the spacings into the expanded library's placement context.
    #[must_use]
    pub fn context(&self) -> CellContext {
        CellContext::new(
            ContextBin::from_spacing(self.lt),
            ContextBin::from_spacing(self.rt),
            ContextBin::from_spacing(self.lb),
            ContextBin::from_spacing(self.rb),
        )
    }
}

/// One device of the placed design, with its absolute gate span on its row
/// cutline and the empty space to the nearest poly on each side (within the
/// row, crossing cell boundaries). This is the flattened view the
/// iso/dense classifier and the full-chip OPC flow consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSite {
    /// Netlist instance index.
    pub instance: usize,
    /// Device id within the instance's cell.
    pub device: DeviceId,
    /// Device row region.
    pub region: Region,
    /// Row index.
    pub row: usize,
    /// Absolute gate span `(lo, hi)` in nanometres.
    pub span_abs: (f64, f64),
    /// Space to the nearest poly on the left (`None` = none in the row).
    pub left_space: Option<f64>,
    /// Space to the nearest poly on the right.
    pub right_space: Option<f64>,
}

impl Placement {
    /// Computes the neighbor-poly spacings of every placed instance,
    /// indexed by netlist instance index.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::UnknownCell`] if an instance's cell is missing
    /// from the library.
    pub fn instance_nps(
        &self,
        netlist: &MappedNetlist,
        library: &Library,
    ) -> Result<Vec<InstanceNps>, PlaceError> {
        let sites = self.device_sites(netlist, library)?;
        Ok(instance_nps_from_all_sites(
            netlist.instances().len(),
            &sites,
        ))
    }

    /// The placement context (binned nps) of every instance, indexed by
    /// netlist instance index.
    ///
    /// # Errors
    ///
    /// See [`Placement::instance_nps`].
    pub fn instance_contexts(
        &self,
        netlist: &MappedNetlist,
        library: &Library,
    ) -> Result<Vec<CellContext>, PlaceError> {
        Ok(self
            .instance_nps(netlist, library)?
            .iter()
            .map(InstanceNps::context)
            .collect())
    }

    /// Flattens every device of the design with absolute spans and
    /// neighbor spacings, row by row.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::UnknownCell`] if an instance's cell is missing
    /// from the library.
    pub fn device_sites(
        &self,
        netlist: &MappedNetlist,
        library: &Library,
    ) -> Result<Vec<DeviceSite>, PlaceError> {
        let mut sites = Vec::new();
        for row in self.rows() {
            self.row_device_sites(row, netlist, library, &mut sites)?;
        }
        Ok(sites)
    }

    /// [`Placement::device_sites`] restricted to the listed rows (any
    /// order; duplicates ignored), in placement row order.
    ///
    /// Spans and neighbor spacings are row-local computations, so for
    /// the listed rows the result agrees bit-for-bit with the slice of a
    /// full-design extraction — the property the incremental (ECO) flow
    /// relies on when it re-extracts only the rows an edit touched.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::UnknownCell`] if an instance's cell is
    /// missing from the library.
    pub fn device_sites_in_rows(
        &self,
        rows: &[usize],
        netlist: &MappedNetlist,
        library: &Library,
    ) -> Result<Vec<DeviceSite>, PlaceError> {
        let mut sites = Vec::new();
        for row in self.rows() {
            if rows.contains(&row.index) {
                self.row_device_sites(row, netlist, library, &mut sites)?;
            }
        }
        Ok(sites)
    }

    /// The placement contexts of every instance placed in the listed
    /// rows, as `(instance index, context)` pairs sorted by instance
    /// index — the row-scoped counterpart of
    /// [`Placement::instance_contexts`], and bit-identical to it for the
    /// covered instances (see [`Placement::device_sites_in_rows`]).
    ///
    /// # Errors
    ///
    /// See [`Placement::instance_nps`].
    pub fn instance_contexts_in_rows(
        &self,
        rows: &[usize],
        netlist: &MappedNetlist,
        library: &Library,
    ) -> Result<Vec<(usize, CellContext)>, PlaceError> {
        let sites = self.device_sites_in_rows(rows, netlist, library)?;
        let mut idxs: Vec<usize> = sites.iter().map(|s| s.instance).collect();
        idxs.sort_unstable();
        idxs.dedup();
        Ok(idxs
            .into_iter()
            .map(|idx| (idx, instance_nps_from_sites(idx, &sites).context()))
            .collect())
    }

    /// Flattens one row's devices (both regions) with absolute spans and
    /// within-row neighbor spacings, appending to `out`.
    fn row_device_sites(
        &self,
        row: &PlacementRow,
        netlist: &MappedNetlist,
        library: &Library,
        out: &mut Vec<DeviceSite>,
    ) -> Result<(), PlaceError> {
        for region in [Region::P, Region::N] {
            let mut row_sites: Vec<DeviceSite> = Vec::new();
            for &m in &row.members {
                let p = &self.placed()[m];
                let inst = &netlist.instances()[p.instance];
                let cell = library
                    .cell(&inst.cell)
                    .ok_or_else(|| PlaceError::UnknownCell {
                        instance: inst.name.clone(),
                        cell: inst.cell.clone(),
                    })?;
                for (id, d) in cell.layout().devices_in(region) {
                    let (lo, hi) = d.span();
                    row_sites.push(DeviceSite {
                        instance: p.instance,
                        device: id,
                        region,
                        row: row.index,
                        span_abs: (p.x_nm + lo, p.x_nm + hi),
                        left_space: None,
                        right_space: None,
                    });
                }
            }
            row_sites.sort_by(|a, b| a.span_abs.0.total_cmp(&b.span_abs.0));
            let n = row_sites.len();
            for k in 0..n {
                if k > 0 {
                    row_sites[k].left_space =
                        Some(row_sites[k].span_abs.0 - row_sites[k - 1].span_abs.1);
                }
                if k + 1 < n {
                    row_sites[k].right_space =
                        Some(row_sites[k + 1].span_abs.0 - row_sites[k].span_abs.1);
                }
            }
            out.extend(row_sites);
        }
        Ok(())
    }

    /// The absolute poly gate spans of one row's cutline (for full-chip
    /// OPC), left to right.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::UnknownCell`] if an instance's cell is missing
    /// from the library.
    pub fn row_poly_pattern(
        &self,
        row: usize,
        region: Region,
        netlist: &MappedNetlist,
        library: &Library,
    ) -> Result<Vec<(f64, f64)>, PlaceError> {
        let Some(row) = self.rows().get(row) else {
            return Ok(Vec::new());
        };
        let mut spans = Vec::new();
        for &m in &row.members {
            let p = &self.placed()[m];
            let inst = &netlist.instances()[p.instance];
            let cell = library
                .cell(&inst.cell)
                .ok_or_else(|| PlaceError::UnknownCell {
                    instance: inst.name.clone(),
                    cell: inst.cell.clone(),
                })?;
            for (_, d) in cell.layout().devices_in(region) {
                let (lo, hi) = d.span();
                spans.push((p.x_nm + lo, p.x_nm + hi));
            }
        }
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(spans)
    }
}

/// The placement contexts of every instance derived from an
/// already-extracted full-design site list — the single-extraction path
/// for flows that also need the [`DeviceSite`]s themselves (the sign-off
/// flow classifies iso/dense from the same list). Bit-identical to
/// [`Placement::instance_contexts`], in one O(sites) pass.
#[must_use]
pub fn instance_contexts_from_sites(instances: usize, sites: &[DeviceSite]) -> Vec<CellContext> {
    instance_nps_from_all_sites(instances, sites)
        .iter()
        .map(InstanceNps::context)
        .collect()
}

/// Grouped boundary-device aggregation: one pass over the full site list
/// computing every instance's four corner spacings, replacing the
/// per-instance O(sites) filter (O(instances × sites) total) of
/// [`instance_nps_from_sites`].
///
/// Tie semantics match `Iterator::min_by`/`max_by` on the filtered
/// per-instance list: among equal leftmost spans the *first* site in
/// order wins (strict less to replace), among equal rightmost spans the
/// *last* wins (replace on greater-or-equal).
fn instance_nps_from_all_sites(instances: usize, sites: &[DeviceSite]) -> Vec<InstanceNps> {
    use std::cmp::Ordering;

    #[derive(Clone, Copy)]
    struct Ends {
        occupied: bool,
        left_key: f64,
        left_space: Option<f64>,
        right_key: f64,
        right_space: Option<f64>,
    }
    const EMPTY: Ends = Ends {
        occupied: false,
        left_key: 0.0,
        left_space: None,
        right_key: 0.0,
        right_space: None,
    };
    // [P, N] ends per instance.
    let mut ends = vec![[EMPTY; 2]; instances];
    for s in sites {
        let r = match s.region {
            Region::P => 0,
            Region::N => 1,
        };
        let e = &mut ends[s.instance][r];
        if !e.occupied {
            *e = Ends {
                occupied: true,
                left_key: s.span_abs.0,
                left_space: s.left_space,
                right_key: s.span_abs.1,
                right_space: s.right_space,
            };
            continue;
        }
        if s.span_abs.0.total_cmp(&e.left_key) == Ordering::Less {
            e.left_key = s.span_abs.0;
            e.left_space = s.left_space;
        }
        if s.span_abs.1.total_cmp(&e.right_key) != Ordering::Less {
            e.right_key = s.span_abs.1;
            e.right_space = s.right_space;
        }
    }
    ends.iter()
        .map(|[p, n]| InstanceNps {
            lt: if p.occupied { p.left_space } else { None },
            rt: if p.occupied { p.right_space } else { None },
            lb: if n.occupied { n.left_space } else { None },
            rb: if n.occupied { n.right_space } else { None },
        })
        .collect()
}

/// Boundary-device aggregation of one instance's sites: the leftmost /
/// rightmost device per region supplies the four corner spacings. Kept
/// for row-scoped (ECO) extraction, where the site list is small.
fn instance_nps_from_sites(idx: usize, sites: &[DeviceSite]) -> InstanceNps {
    let mut nps = InstanceNps {
        lt: None,
        rt: None,
        lb: None,
        rb: None,
    };
    for region in [Region::P, Region::N] {
        let row_devices: Vec<&DeviceSite> = sites
            .iter()
            .filter(|s| s.instance == idx && s.region == region)
            .collect();
        let Some(leftmost) = row_devices
            .iter()
            .min_by(|a, b| a.span_abs.0.total_cmp(&b.span_abs.0))
        else {
            continue;
        };
        let rightmost = row_devices
            .iter()
            .max_by(|a, b| a.span_abs.1.total_cmp(&b.span_abs.1))
            .expect("nonempty");
        match region {
            Region::P => {
                nps.lt = leftmost.left_space;
                nps.rt = rightmost.right_space;
            }
            Region::N => {
                nps.lb = leftmost.left_space;
                nps.rb = rightmost.right_space;
            }
        }
    }
    nps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, PlacementOptions};
    use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile};

    fn setup() -> (MappedNetlist, Library, Placement) {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let mapped = technology_map(&n, &lib).unwrap();
        let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        (mapped, lib, placement)
    }

    #[test]
    fn device_sites_cover_all_devices() {
        let (mapped, lib, placement) = setup();
        let sites = placement.device_sites(&mapped, &lib).unwrap();
        let expected: usize = mapped
            .instances()
            .iter()
            .map(|i| lib.cell(&i.cell).unwrap().layout().devices().len())
            .sum();
        assert_eq!(sites.len(), expected);
    }

    #[test]
    fn neighbor_spacings_are_consistent() {
        let (mapped, lib, placement) = setup();
        let sites = placement.device_sites(&mapped, &lib).unwrap();
        for s in &sites {
            if let Some(l) = s.left_space {
                assert!(l >= 0.0, "negative left space {l}");
            }
            if let Some(r) = s.right_space {
                assert!(r >= 0.0, "negative right space {r}");
            }
        }
        // Row-end devices have one open side.
        let open_sides = sites
            .iter()
            .filter(|s| s.left_space.is_none() || s.right_space.is_none())
            .count();
        // Two per (row, region) at least.
        assert!(open_sides >= 2 * placement.rows().len());
    }

    #[test]
    fn contexts_cover_multiple_bins() {
        let (mapped, lib, placement) = setup();
        let contexts = placement.instance_contexts(&mapped, &lib).unwrap();
        assert_eq!(contexts.len(), mapped.instances().len());
        let mut bins: Vec<ContextBin> = contexts
            .iter()
            .flat_map(|c| [c.lt, c.rt, c.lb, c.rb])
            .collect();
        bins.sort();
        bins.dedup();
        assert!(
            bins.len() >= 2,
            "whitespace mixture should produce at least two context bins, got {bins:?}"
        );
    }

    #[test]
    fn nps_matches_manual_computation_for_a_pair() {
        use svt_netlist::bench;
        let lib = Library::svt90();
        let n = bench::parse("# two\nINPUT(a)\nOUTPUT(z)\nOUTPUT(y)\nz = NOT(a)\ny = NOT(z)\n")
            .unwrap();
        let mapped = technology_map(&n, &lib).unwrap();
        let placement = place(&mapped, &lib, &PlacementOptions::default()).unwrap();
        let nps = placement.instance_nps(&mapped, &lib).unwrap();
        // Two inverters; if in the same row, the right spacing of the left
        // one equals the left spacing of the right one.
        if placement.rows().len() == 1 {
            let left = &placement.placed()[placement.rows()[0].members[0]];
            let right = &placement.placed()[placement.rows()[0].members[1]];
            let l_nps = nps[left.instance];
            let r_nps = nps[right.instance];
            assert_eq!(l_nps.rt, r_nps.lt);
            assert!(l_nps.lt.is_none(), "leftmost cell has no left neighbor");
            assert!(r_nps.rt.is_none());
        }
    }

    #[test]
    fn row_scoped_extraction_matches_the_full_design() {
        let (mapped, lib, placement) = setup();
        let full_sites = placement.device_sites(&mapped, &lib).unwrap();
        let full_contexts = placement.instance_contexts(&mapped, &lib).unwrap();
        for row in [0usize, 1, placement.rows().len() - 1] {
            let subset = placement
                .device_sites_in_rows(&[row], &mapped, &lib)
                .unwrap();
            let expected: Vec<&DeviceSite> = full_sites.iter().filter(|s| s.row == row).collect();
            assert_eq!(subset.len(), expected.len(), "row {row} site count");
            for (s, e) in subset.iter().zip(expected) {
                assert_eq!(s, e, "row {row} site mismatch");
            }
            let ctxs = placement
                .instance_contexts_in_rows(&[row], &mapped, &lib)
                .unwrap();
            assert!(!ctxs.is_empty());
            for (idx, ctx) in ctxs {
                assert_eq!(ctx, full_contexts[idx], "context of instance {idx}");
            }
        }
        // Multi-row subsets cover every member instance exactly once.
        let two = placement
            .instance_contexts_in_rows(&[0, 1], &mapped, &lib)
            .unwrap();
        let mut seen: Vec<usize> = two.iter().map(|(i, _)| *i).collect();
        seen.dedup();
        assert_eq!(seen.len(), two.len(), "sorted unique instance list");
    }

    #[test]
    fn grouped_nps_matches_the_per_instance_filter() {
        let (mapped, lib, placement) = setup();
        let sites = placement.device_sites(&mapped, &lib).unwrap();
        let grouped = instance_nps_from_all_sites(mapped.instances().len(), &sites);
        for (idx, nps) in grouped.iter().enumerate() {
            assert_eq!(nps, &instance_nps_from_sites(idx, &sites), "instance {idx}");
        }
        // And the context derivation agrees with the two-pass API.
        let contexts = instance_contexts_from_sites(mapped.instances().len(), &sites);
        assert_eq!(
            contexts,
            placement.instance_contexts(&mapped, &lib).unwrap()
        );
    }

    #[test]
    fn row_poly_pattern_is_sorted_and_disjoint() {
        let (mapped, lib, placement) = setup();
        let spans = placement
            .row_poly_pattern(0, Region::P, &mapped, &lib)
            .unwrap();
        assert!(!spans.is_empty());
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping poly {w:?}");
        }
        // Out-of-range rows yield empty patterns.
        assert!(placement
            .row_poly_pattern(9999, Region::P, &mapped, &lib)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn context_binning_uses_the_paper_edges() {
        let nps = InstanceNps {
            lt: Some(350.0),
            rt: Some(450.0),
            lb: None,
            rb: Some(800.0),
        };
        let ctx = nps.context();
        assert_eq!(ctx.lt, ContextBin::Dense);
        assert_eq!(ctx.rt, ContextBin::Medium);
        assert_eq!(ctx.lb, ContextBin::Isolated);
        assert_eq!(ctx.rb, ContextBin::Isolated);
    }
}
