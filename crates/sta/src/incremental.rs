//! Cone-limited incremental timing analysis.
//!
//! [`analyze_full`](crate::analyze_full) returns a [`StaState`] — the
//! timing report plus the internal products a re-analysis needs (the
//! interned netlist topology, net loads, per-arc delays, completion
//! order). [`analyze_incremental`] advances that state after a small
//! netlist/binding edit by recomputing only the affected cones:
//!
//! * **forward (fan-out) cone** — arrival times and slews of every net
//!   reachable from a changed instance,
//! * **backward (fan-in) cone** — required times of every net from which
//!   a changed instance is reachable.
//!
//! The result is *bit-identical* to a from-scratch
//! [`analyze`](crate::analyze) of the edited design, by construction:
//!
//! 1. Per-instance evaluation is a pure function of the bound variant,
//!    the upstream net timings, and the output load — dirty instances
//!    re-run exactly the shared evaluation routine, in a valid
//!    topological order (the stored completion order; edits never change
//!    connectivity).
//! 2. Arrival/required merges are max/min *selections*, which are
//!    order-insensitive for the non-NaN values the timer produces.
//! 3. The only order-sensitive floating-point arithmetic in the timer is
//!    the net-load accumulation — so the load vector is recomputed from
//!    scratch in the canonical order on every update (O(pins), cheap)
//!    and bit-diffed against the previous one to discover nets whose
//!    drivers must be re-evaluated (e.g. a cell swap changing input pin
//!    capacitance slows the *upstream* driver).
//!
//! Everything the per-update passes touch repeatedly is integer-keyed:
//! [`Topology`] interns net names once per full analysis, and all timing
//! state lives in flat id-indexed vectors (see
//! [`TimingReport`]), so the incremental path does no string hashing
//! beyond an O(connections) equality sweep that verifies connectivity is
//! unchanged. Per-update temporaries (seed flags, cone marks, the DFS
//! stack) are carved from a caller-supplied
//! [`ScratchArena`](svt_exec::ScratchArena) — warm updates through
//! [`analyze_incremental_in`] touch the heap only for the cloned result
//! vectors. That keeps the per-update fixed cost small enough for the
//! `svt-eco` latency target (a single-cell ECO must re-sign-off ≥ 10×
//! faster than a warm full rebuild).
//!
//! The equivalence is enforced by the `svt-eco` differential test, which
//! compares incremental sessions against full rebuilds bit-for-bit
//! across `SVT_THREADS` settings.

use std::collections::HashMap;
use std::sync::Arc;

use svt_exec::ScratchArena;
use svt_netlist::MappedNetlist;

use crate::analysis::{
    compute_loads, connected_input_pins, evaluate_instance, validate, EvalScratch,
};
use crate::report::TimingReport;
use crate::{CellBinding, StaError, TimingOptions};

/// The netlist connectivity with every net name interned to a dense id,
/// plus the instance⇄net relations every timing pass walks. Built once
/// (see [`SharedTopology::build`]) and shared (via [`Arc`]) by every
/// state advanced from it — edits that qualify for incremental analysis
/// never change connectivity, so the topology never goes stale (and
/// [`Topology::verify`] rejects states whose netlist did change).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Topology {
    /// Design name, carried so reports need no netlist back-reference.
    pub(crate) design: String,
    /// Interned net names; `net_names[id]` is the name of net `id`.
    pub(crate) net_names: Vec<String>,
    /// Net name → id, for mapping externally keyed inputs (wire caps).
    pub(crate) net_ids: HashMap<String, u32>,
    /// Interned pin names; `pin_names[id]` is the name of pin id `id`.
    pub(crate) pin_names: Vec<String>,
    /// Per instance, the net id of each `connections` entry, in order.
    pub(crate) conn_ids: Vec<Vec<u32>>,
    /// Per instance, the pin-name id of each `connections` entry — used
    /// only to reconstruct path reports without the netlist.
    pub(crate) conn_pins: Vec<Vec<u16>>,
    /// Per instance, the net id its output pin drives.
    pub(crate) out_net: Vec<u32>,
    /// Per net, the driving instance (`u32::MAX` for primary inputs and
    /// undriven nets).
    pub(crate) driver_of: Vec<u32>,
    /// Per net, the sink instances — one entry per connected *input
    /// pin*, so an instance sampling a net twice appears twice (the
    /// levelizer counts pins, not distinct nets).
    pub(crate) users_of: Vec<Vec<u32>>,
    /// Primary-output net ids, in `netlist.outputs()` order.
    pub(crate) po_ids: Vec<u32>,
}

impl Topology {
    /// Interns the bound netlist. Pin roles come from the binding: the
    /// first zero-capacitance pin is the output (as everywhere else in
    /// the timer), every positive-capacitance pin is an input.
    pub(crate) fn build(
        netlist: &MappedNetlist,
        binding: &CellBinding,
    ) -> Result<Topology, StaError> {
        let n = netlist.instances().len();
        let mut net_names: Vec<String> = Vec::new();
        let mut net_ids: HashMap<String, u32> = HashMap::new();
        let mut intern = |name: &str, net_names: &mut Vec<String>| -> u32 {
            if let Some(&id) = net_ids.get(name) {
                return id;
            }
            let id = u32::try_from(net_names.len()).expect("net count fits u32");
            net_ids.insert(name.to_string(), id);
            net_names.push(name.to_string());
            id
        };

        // Deterministic id order: primary inputs, then instance
        // connections in netlist order, then primary outputs.
        for pi in netlist.inputs() {
            intern(pi, &mut net_names);
        }
        let mut conn_ids: Vec<Vec<u32>> = Vec::with_capacity(n);
        for inst in netlist.instances() {
            conn_ids.push(
                inst.connections
                    .iter()
                    .map(|(_, net)| intern(net, &mut net_names))
                    .collect(),
            );
        }
        let po_ids: Vec<u32> = netlist
            .outputs()
            .iter()
            .map(|po| intern(po, &mut net_names))
            .collect();

        // Pin names recur across the whole design (a handful per
        // library), so a linear probe beats hashing.
        let mut pin_names: Vec<String> = Vec::new();
        let mut conn_pins: Vec<Vec<u16>> = Vec::with_capacity(n);
        for inst in netlist.instances() {
            conn_pins.push(
                inst.connections
                    .iter()
                    .map(|(pin, _)| match pin_names.iter().position(|p| p == pin) {
                        Some(i) => u16::try_from(i).expect("pin name count fits u16"),
                        None => {
                            pin_names.push(pin.clone());
                            u16::try_from(pin_names.len() - 1).expect("pin name count fits u16")
                        }
                    })
                    .collect(),
            );
        }

        let mut out_net: Vec<u32> = Vec::with_capacity(n);
        let mut driver_of: Vec<u32> = vec![u32::MAX; net_names.len()];
        let mut users_of: Vec<Vec<u32>> = vec![Vec::new(); net_names.len()];
        for (idx, inst) in netlist.instances().iter().enumerate() {
            let cell = binding.cell(idx);
            let out_pin = cell
                .pins
                .iter()
                .find(|p| p.capacitance_pf == 0.0)
                .ok_or_else(|| StaError::MissingTiming {
                    instance: inst.name.clone(),
                    reason: "variant has no output pin".into(),
                })?;
            let out_conn = inst
                .connections
                .iter()
                .position(|(pin, _)| *pin == out_pin.name)
                .ok_or_else(|| StaError::MissingTiming {
                    instance: inst.name.clone(),
                    reason: "output pin unconnected".into(),
                })?;
            let out_id = conn_ids[idx][out_conn];
            out_net.push(out_id);
            driver_of[out_id as usize] = u32::try_from(idx).expect("instance count fits u32");
            for pin in &cell.pins {
                if pin.capacitance_pf <= 0.0 {
                    continue;
                }
                let conn = inst
                    .connections
                    .iter()
                    .position(|(name, _)| *name == pin.name)
                    .ok_or_else(|| StaError::MissingTiming {
                        instance: inst.name.clone(),
                        reason: format!("input pin `{}` unconnected", pin.name),
                    })?;
                users_of[conn_ids[idx][conn] as usize]
                    .push(u32::try_from(idx).expect("instance count fits u32"));
            }
        }

        Ok(Topology {
            design: netlist.name().to_string(),
            net_names,
            net_ids,
            pin_names,
            conn_ids,
            conn_pins,
            out_net,
            driver_of,
            users_of,
            po_ids,
        })
    }

    /// The pin name of one `connections` entry of one instance.
    pub(crate) fn conn_pin(&self, inst: u32, conn: u32) -> &str {
        &self.pin_names[self.conn_pins[inst as usize][conn as usize] as usize]
    }

    /// Checks that `netlist`/`binding` still have the connectivity this
    /// topology was interned from: same instance count, same `(pin,
    /// net)` connections, and each bound variant's output pin still
    /// drives the recorded net. O(connections) string *equality* — no
    /// hashing, no allocation.
    pub(crate) fn verify(
        &self,
        netlist: &MappedNetlist,
        binding: &CellBinding,
    ) -> Result<(), StaError> {
        let stale = |reason: &str| StaError::InvalidBinding {
            reason: format!("incremental state is stale: {reason}"),
        };
        if netlist.instances().len() != self.conn_ids.len() {
            return Err(stale("instance count changed"));
        }
        for (idx, inst) in netlist.instances().iter().enumerate() {
            let ids = &self.conn_ids[idx];
            if inst.connections.len() != ids.len() {
                return Err(stale(&format!("connections of `{}` changed", inst.name)));
            }
            for ((_, net), &id) in inst.connections.iter().zip(ids) {
                if self.net_names[id as usize] != *net {
                    return Err(stale(&format!("connections of `{}` changed", inst.name)));
                }
            }
            let cell = binding.cell(idx);
            let out_pin = cell
                .pins
                .iter()
                .find(|p| p.capacitance_pf == 0.0)
                .ok_or_else(|| StaError::MissingTiming {
                    instance: inst.name.clone(),
                    reason: "variant has no output pin".into(),
                })?;
            let out_conn = inst
                .connections
                .iter()
                .position(|(pin, _)| *pin == out_pin.name)
                .ok_or_else(|| StaError::MissingTiming {
                    instance: inst.name.clone(),
                    reason: "output pin unconnected".into(),
                })?;
            if ids[out_conn] != self.out_net[idx] {
                return Err(stale(&format!("output pin of `{}` moved", inst.name)));
            }
        }
        Ok(())
    }
}

/// A reusable handle to the interned connectivity of one bound netlist.
///
/// Building the topology (string interning, driver/user relations) is
/// the only string-heavy step of an analysis. Callers that analyze the
/// same design repeatedly — the sign-off flow runs six corners per
/// `run()`, ECO sessions re-analyze after every edit — build it once and
/// pass it to [`analyze_full_in`](crate::analyze_full_in), which only
/// performs the O(connections) [`verify`](SharedTopology::verify) sweep.
/// Cloning is an [`Arc`] bump.
#[derive(Debug, Clone)]
pub struct SharedTopology(pub(crate) Arc<Topology>);

impl SharedTopology {
    /// Interns the bound netlist's connectivity.
    ///
    /// # Errors
    ///
    /// [`StaError::MissingTiming`] when a bound variant has no output
    /// pin or an input/output pin is unconnected.
    pub fn build(
        netlist: &MappedNetlist,
        binding: &CellBinding,
    ) -> Result<SharedTopology, StaError> {
        Ok(SharedTopology(Arc::new(Topology::build(netlist, binding)?)))
    }

    /// Checks that `netlist`/`binding` still match this topology —
    /// O(connections) string equality, no allocation.
    ///
    /// # Errors
    ///
    /// [`StaError::InvalidBinding`] when connectivity changed,
    /// [`StaError::MissingTiming`] when a variant's pin roles are
    /// inconsistent.
    pub fn verify(&self, netlist: &MappedNetlist, binding: &CellBinding) -> Result<(), StaError> {
        self.0.verify(netlist, binding)
    }
}

/// A completed analysis plus the internal products needed to advance it
/// incrementally: the interned net topology, the canonical per-net load
/// vector, the per-instance arc delays of the backward pass (flat CSR
/// layout), and the topological completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct StaState {
    pub(crate) report: TimingReport,
    /// Net loads (pF) indexed by topology net id.
    pub(crate) loads: Vec<f64>,
    /// Loads on wire-cap nets that are not in the netlist (sorted by
    /// name). No driver can depend on them; kept only so state equality
    /// sees the full load picture.
    pub(crate) extra_loads: Vec<(String, f64)>,
    /// CSR offsets into [`Self::arc_data`]: instance `i`'s evaluated
    /// arcs live at `arc_data[arc_offsets[i]..arc_offsets[i + 1]]`.
    /// Length `instances + 1`.
    pub(crate) arc_offsets: Vec<u32>,
    /// `(input net id, arc delay)` of every evaluated arc, flat.
    pub(crate) arc_data: Vec<(u32, f64)>,
    pub(crate) completion_order: Vec<usize>,
    pub(crate) topo: Arc<Topology>,
}

impl StaState {
    pub(crate) fn new(
        report: TimingReport,
        loads: Vec<f64>,
        extra_loads: Vec<(String, f64)>,
        arc_offsets: Vec<u32>,
        arc_data: Vec<(u32, f64)>,
        completion_order: Vec<usize>,
        topo: Arc<Topology>,
    ) -> StaState {
        StaState {
            report,
            loads,
            extra_loads,
            arc_offsets,
            arc_data,
            completion_order,
            topo,
        }
    }

    /// The timing report of the analysis this state captures.
    #[must_use]
    pub fn report(&self) -> &TimingReport {
        &self.report
    }

    /// Consumes the state, yielding just the timing report.
    #[must_use]
    pub fn into_report(self) -> TimingReport {
        self.report
    }

    /// Instance indices in the order the levelized forward pass resolved
    /// them — a topological order of the instance graph, valid for any
    /// edit that keeps connectivity (cell swaps, moves, resizes).
    #[must_use]
    pub fn completion_order(&self) -> &[usize] {
        &self.completion_order
    }
}

/// Work accounting of one incremental update, for telemetry and for
/// asserting that a small edit really did a small amount of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Directly edited instances plus drivers of load-changed nets.
    pub seed_instances: usize,
    /// Instances re-evaluated in the forward (fan-out) cone.
    pub forward_instances: usize,
    /// Nets whose required time was recomputed in the backward cone.
    pub backward_nets: usize,
}

/// Advances a completed analysis after an edit that re-bound (or
/// re-loaded) the given instances, recomputing only the forward fan-out
/// cone of arrivals and the backward fan-in cone of required times.
///
/// `changed_instances` lists every instance whose bound variant changed
/// (duplicates are fine). Instances whose *loads* changed — e.g. the
/// driver of a net whose sink pin capacitances moved with a cell swap —
/// are discovered automatically by bit-diffing a fresh canonical load
/// vector against `prev`'s, so callers only report what they edited.
///
/// Connectivity must be unchanged since `prev` was computed: nets,
/// pins-to-net connections, and instance count must match (pin-name
/// compatible cell swaps, moves, and resizes all qualify). This is
/// checked — the connections are swept against the interned topology —
/// and violations return
/// [`StaError::InvalidBinding`].
///
/// # Errors
///
/// * [`StaError::InvalidOptions`] / [`StaError::InvalidBinding`] as in
///   [`analyze`](crate::analyze), plus binding-shape mismatches against
///   `prev`,
/// * [`StaError::MissingTiming`] when a re-bound variant lacks an arc
///   for a connected input pin.
pub fn analyze_incremental(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    prev: &StaState,
    changed_instances: &[usize],
) -> Result<(StaState, IncrementalStats), StaError> {
    analyze_incremental_with_wire_caps(
        netlist,
        binding,
        options,
        &HashMap::new(),
        prev,
        changed_instances,
    )
}

/// [`analyze_incremental`] with caller-provided scratch, so repeated
/// updates (an ECO session walking many edits) reuse one arena for the
/// per-update temporaries instead of reallocating them.
///
/// # Errors
///
/// See [`analyze_incremental`].
pub fn analyze_incremental_in(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    prev: &StaState,
    changed_instances: &[usize],
    scratch: &ScratchArena,
) -> Result<(StaState, IncrementalStats), StaError> {
    incremental_soa(
        netlist,
        binding,
        options,
        &HashMap::new(),
        prev,
        changed_instances,
        scratch,
    )
}

/// [`analyze_incremental`] with explicit per-net wire capacitances (pF),
/// mirroring [`analyze_with_wire_caps`](crate::analyze_with_wire_caps).
///
/// # Errors
///
/// See [`analyze_incremental`].
pub fn analyze_incremental_with_wire_caps(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    wire_caps_pf: &HashMap<String, f64>,
    prev: &StaState,
    changed_instances: &[usize],
) -> Result<(StaState, IncrementalStats), StaError> {
    let scratch = ScratchArena::new();
    incremental_soa(
        netlist,
        binding,
        options,
        wire_caps_pf,
        prev,
        changed_instances,
        &scratch,
    )
}

#[allow(clippy::too_many_lines)]
fn incremental_soa(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    wire_caps_pf: &HashMap<String, f64>,
    prev: &StaState,
    changed_instances: &[usize],
    scratch: &ScratchArena,
) -> Result<(StaState, IncrementalStats), StaError> {
    let _span = svt_obs::span("sta.analyze_incremental");
    validate(netlist, binding, options)?;
    let n = netlist.instances().len();
    if prev.completion_order.len() != n || prev.arc_offsets.len() != n + 1 {
        return Err(StaError::InvalidBinding {
            reason: "incremental state does not match the netlist".into(),
        });
    }
    let topo = &prev.topo;
    topo.verify(netlist, binding)?;
    let net_count = topo.net_names.len();

    // Canonical load recompute + bit-diff: a net whose load bits moved
    // re-times its *driver* (delay/slew lookups read the output load).
    let (loads, extra_loads) = compute_loads(netlist, binding, options, wire_caps_pf, topo)?;
    // `dirty` doubles as the seed-dedup set: before the DFS below it
    // holds exactly the seeds.
    let dirty: &mut [bool] = scratch.alloc_slice_fill(n, false);
    let stack: &mut [u32] = scratch.alloc_slice_fill(n, 0u32);
    let mut stack_len = 0usize;
    let mut seed_count = 0usize;
    for &idx in changed_instances {
        if idx >= n {
            return Err(StaError::InvalidBinding {
                reason: format!("changed instance index {idx} out of range"),
            });
        }
        if !dirty[idx] {
            dirty[idx] = true;
            stack[stack_len] = u32::try_from(idx).expect("instance count fits u32");
            stack_len += 1;
            seed_count += 1;
        }
    }
    for (id, cap) in loads.iter().enumerate() {
        if cap.to_bits() != prev.loads[id].to_bits() {
            let d = topo.driver_of[id];
            if d != u32::MAX && !dirty[d as usize] {
                dirty[d as usize] = true;
                stack[stack_len] = d;
                stack_len += 1;
                seed_count += 1;
            }
        }
    }
    // `extra_loads` nets are outside the netlist — nothing drives them,
    // so a change there cannot seed anything.

    // Forward (fan-out) cone: everything reachable from a seed.
    // Mark-on-push bounds the stack by the instance count.
    while stack_len > 0 {
        stack_len -= 1;
        let idx = stack[stack_len] as usize;
        for &u in &topo.users_of[topo.out_net[idx] as usize] {
            if !dirty[u as usize] {
                dirty[u as usize] = true;
                stack[stack_len] = u;
                stack_len += 1;
            }
        }
    }

    // Clone the previous SoA state; only cone members get overwritten,
    // so everything outside the cones stays bit-identical.
    let mut arrival = prev.report.arrival.clone();
    let mut slew = prev.report.slew.clone();
    let mut from = prev.report.from.clone();
    let mut arc_offsets = prev.arc_offsets.clone();
    let mut arc_data = prev.arc_data.clone();

    // A re-bound variant can change the number of connected input pins
    // (and therefore its arc count). When that happens the CSR layout is
    // rebuilt, copying clean instances' slices; dirty slices are written
    // by the re-evaluation below.
    let relayout = (0..n).any(|idx| {
        dirty[idx]
            && connected_input_pins(netlist, binding, idx)
                != (arc_offsets[idx + 1] - arc_offsets[idx]) as usize
    });
    if relayout {
        let mut new_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        new_offsets.push(0);
        for idx in 0..n {
            let count = if dirty[idx] {
                u32::try_from(connected_input_pins(netlist, binding, idx))
                    .expect("arc count fits u32")
            } else {
                arc_offsets[idx + 1] - arc_offsets[idx]
            };
            new_offsets.push(new_offsets[idx] + count);
        }
        let mut new_data: Vec<(u32, f64)> = vec![(u32::MAX, 0.0); new_offsets[n] as usize];
        for idx in 0..n {
            if dirty[idx] {
                continue;
            }
            let src = &arc_data[arc_offsets[idx] as usize..arc_offsets[idx + 1] as usize];
            new_data[new_offsets[idx] as usize..new_offsets[idx + 1] as usize].copy_from_slice(src);
        }
        arc_offsets = new_offsets;
        arc_data = new_data;
    }

    // Re-evaluate dirty instances in the stored topological order; every
    // non-dirty instance keeps bit-identical inputs, so its stored
    // timing is already the post-edit answer.
    let mut eval = EvalScratch::default();
    let mut forward_instances = 0usize;
    for &idx in &prev.completion_order {
        if !dirty[idx] {
            continue;
        }
        forward_instances += 1;
        let out = evaluate_instance(
            netlist,
            binding,
            idx,
            topo,
            &loads,
            &arrival,
            &slew,
            options.mode,
            &mut eval,
        )?;
        arc_data[arc_offsets[idx] as usize..arc_offsets[idx + 1] as usize]
            .copy_from_slice(&eval.arcs);
        let out_id = topo.out_net[idx] as usize;
        arrival[out_id] = out.arrival_ns;
        slew[out_id] = out.slew_ns;
        from[out_id] = out.from;
    }

    // Backward (fan-in) cone: nets whose required time can change are
    // the inputs of dirty instances, closed transitively upstream. One
    // reversed pass computes the closure: consumers of a net appear
    // before its driver in reversed topological order, so membership is
    // settled before the driver's inputs are considered.
    let mut required = prev.report.required.clone();
    let mut has_required = prev.report.has_required.clone();
    let mut backward_nets = 0usize;
    if let Some(period) = options.clock_period_ns {
        if required.len() != net_count {
            // `prev` was analyzed without a clock; start from the empty
            // boundary condition.
            required = vec![0.0; net_count];
            has_required = vec![false; net_count];
        }
        let in_cone: &mut [bool] = scratch.alloc_slice_fill(net_count, false);
        for &idx in prev.completion_order.iter().rev() {
            if dirty[idx] || in_cone[topo.out_net[idx] as usize] {
                for &(in_id, _) in
                    &arc_data[arc_offsets[idx] as usize..arc_offsets[idx + 1] as usize]
                {
                    in_cone[in_id as usize] = true;
                }
            }
        }

        // Reset cone members to their boundary condition, then replay
        // the min-merge contributions — only into the cone; everything
        // outside it keeps bit-identical contributions.
        let is_po: &mut [bool] = scratch.alloc_slice_fill(net_count, false);
        for &po in &topo.po_ids {
            is_po[po as usize] = true;
        }
        for (id, &inside) in in_cone.iter().enumerate() {
            if !inside {
                continue;
            }
            backward_nets += 1;
            if is_po[id] {
                required[id] = period;
                has_required[id] = true;
            } else {
                required[id] = 0.0;
                has_required[id] = false;
            }
        }
        for &idx in prev.completion_order.iter().rev() {
            let out_id = topo.out_net[idx] as usize;
            if !has_required[out_id] {
                continue; // net drives nothing timed
            }
            let r_out = required[out_id];
            for &(in_id, delay) in
                &arc_data[arc_offsets[idx] as usize..arc_offsets[idx + 1] as usize]
            {
                let i = in_id as usize;
                if !in_cone[i] {
                    continue;
                }
                let candidate = r_out - delay;
                if has_required[i] {
                    required[i] = required[i].min(candidate);
                } else {
                    has_required[i] = true;
                    required[i] = candidate;
                }
            }
        }
    }

    svt_obs::counter!("sta.incremental.updates").add(1);
    svt_obs::counter!("sta.incremental.forward_instances").add(forward_instances as u64);
    svt_obs::counter!("sta.incremental.backward_nets").add(backward_nets as u64);

    let report = TimingReport::from_soa(
        Arc::clone(topo),
        options.mode,
        arrival,
        slew,
        from,
        required,
        has_required,
    );
    Ok((
        StaState::new(
            report,
            loads,
            extra_loads,
            arc_offsets,
            arc_data,
            prev.completion_order.clone(),
            Arc::clone(topo),
        ),
        IncrementalStats {
            seed_instances: seed_count,
            forward_instances,
            backward_nets,
        },
    ))
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_full, AnalysisMode};
    use svt_netlist::{bench, generate_benchmark, technology_map, BenchmarkProfile};
    use svt_stdcell::Library;

    fn c432() -> (MappedNetlist, Library) {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        (technology_map(&n, &lib).unwrap(), lib)
    }

    fn assert_states_bit_identical(a: &StaState, b: &StaState) {
        assert_eq!(a.topo.net_names, b.topo.net_names, "interning order");
        let nn = a.topo.net_names.len();
        assert_eq!(a.report.arrival.len(), nn);
        assert_eq!(b.report.arrival.len(), nn);
        for id in 0..nn {
            let net = &a.topo.net_names[id];
            assert_eq!(
                a.report.arrival[id].to_bits(),
                b.report.arrival[id].to_bits(),
                "arrival of `{net}`"
            );
            assert_eq!(
                a.report.slew[id].to_bits(),
                b.report.slew[id].to_bits(),
                "slew of `{net}`"
            );
            assert_eq!(
                a.report.from[id], b.report.from[id],
                "winner arc of `{net}`"
            );
        }
        assert_eq!(a.report.has_required, b.report.has_required);
        assert_eq!(a.report.required.len(), b.report.required.len());
        for id in 0..a.report.required.len() {
            if a.report.has_required[id] {
                assert_eq!(
                    a.report.required[id].to_bits(),
                    b.report.required[id].to_bits(),
                    "required of `{}`",
                    a.topo.net_names[id]
                );
            }
        }
        assert_eq!(a.loads.len(), b.loads.len());
        for (id, l) in a.loads.iter().enumerate() {
            assert_eq!(
                l.to_bits(),
                b.loads[id].to_bits(),
                "load of `{}`",
                a.topo.net_names[id]
            );
        }
        assert_eq!(a.extra_loads, b.extra_loads);
        assert_eq!(a.arc_offsets, b.arc_offsets);
        assert_eq!(a.arc_data.len(), b.arc_data.len());
        for ((nx, dx), (ny, dy)) in a.arc_data.iter().zip(&b.arc_data) {
            assert_eq!(nx, ny);
            assert_eq!(dx.to_bits(), dy.to_bits());
        }
    }

    #[test]
    fn rebinding_one_instance_matches_full_reanalysis() {
        let (m, lib) = c432();
        let opts = TimingOptions {
            clock_period_ns: Some(6.0),
            ..TimingOptions::default()
        };
        let mut binding = CellBinding::uniform_scaled(&m, &lib, 90.0).unwrap();
        let base = analyze_full(&m, &binding, &opts).unwrap();

        // Slow down one mid-design instance to the worst corner.
        let idx = m.instances().len() / 2;
        let cell_name = m.instances()[idx].cell.clone();
        let slow = CellBinding::uniform_scaled_cell(&lib, &cell_name, 99.0).unwrap();
        binding.replace(&m, idx, slow).unwrap();

        let (incr, stats) = analyze_incremental(&m, &binding, &opts, &base, &[idx]).unwrap();
        let full = analyze_full(&m, &binding, &opts).unwrap();
        assert_states_bit_identical(&incr, &full);
        assert!(stats.seed_instances >= 1);
        assert!(
            stats.forward_instances < m.instances().len(),
            "a mid-design edit must not re-time the whole chip \
             ({} of {})",
            stats.forward_instances,
            m.instances().len()
        );
    }

    #[test]
    fn load_change_dirties_the_upstream_driver() {
        // z = NAND(a, y), y = NOT(x), x = NOT(a): swapping the variant
        // bound to the NAND changes its input pin caps, which loads nets
        // `a` and `y` differently — net `y`'s driver (the second
        // inverter) must be re-timed even though it was not edited.
        let lib = Library::svt90();
        let n =
            bench::parse("# skew\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NOT(x)\nz = NAND(a, y)\n")
                .unwrap();
        let m = technology_map(&n, &lib).unwrap();
        let opts = TimingOptions {
            clock_period_ns: Some(2.0),
            ..TimingOptions::default()
        };
        let mut binding = CellBinding::nominal(&m, &lib).unwrap();
        let base = analyze_full(&m, &binding, &opts).unwrap();

        let nand_idx = m
            .instances()
            .iter()
            .position(|i| i.cell == "NAND2X1")
            .unwrap();
        // Corner scaling keeps pin caps, so synthesize a variant with
        // heavier input pins to exercise the load-diff path.
        let mut slow = CellBinding::uniform_scaled_cell(&lib, "NAND2X1", 99.0).unwrap();
        for pin in &mut slow.pins {
            if pin.capacitance_pf > 0.0 {
                pin.capacitance_pf *= 1.25;
            }
        }
        binding.replace(&m, nand_idx, slow).unwrap();

        let (incr, stats) = analyze_incremental(&m, &binding, &opts, &base, &[nand_idx]).unwrap();
        let full = analyze_full(&m, &binding, &opts).unwrap();
        assert_states_bit_identical(&incr, &full);
        assert!(
            stats.seed_instances >= 2,
            "load diff must seed the upstream driver too: {stats:?}"
        );
    }

    #[test]
    fn empty_edit_is_a_bit_identical_no_op() {
        let (m, lib) = c432();
        let opts = TimingOptions::default();
        let binding = CellBinding::nominal(&m, &lib).unwrap();
        let base = analyze_full(&m, &binding, &opts).unwrap();
        let (incr, stats) = analyze_incremental(&m, &binding, &opts, &base, &[]).unwrap();
        assert_states_bit_identical(&incr, &base);
        assert_eq!(stats.forward_instances, 0);
    }

    #[test]
    fn scratch_reuse_across_updates_is_bit_identical() {
        // The ECO path drives many updates through one arena; warm
        // reuse must not perturb results.
        let (m, lib) = c432();
        let opts = TimingOptions {
            clock_period_ns: Some(6.0),
            ..TimingOptions::default()
        };
        let mut binding = CellBinding::uniform_scaled(&m, &lib, 90.0).unwrap();
        let base = analyze_full(&m, &binding, &opts).unwrap();
        let mut scratch = ScratchArena::new();
        for idx in [3usize, 17, 101] {
            let cell_name = m.instances()[idx].cell.clone();
            let slow = CellBinding::uniform_scaled_cell(&lib, &cell_name, 99.0).unwrap();
            binding.replace(&m, idx, slow).unwrap();
            let (incr, _) =
                analyze_incremental_in(&m, &binding, &opts, &base, &[idx], &scratch).unwrap();
            let plain = analyze_incremental(&m, &binding, &opts, &base, &[idx])
                .unwrap()
                .0;
            assert_states_bit_identical(&incr, &plain);
            // Undo for the next round so every step edits from `base`.
            let nominal = CellBinding::uniform_scaled_cell(&lib, &cell_name, 90.0).unwrap();
            binding.replace(&m, idx, nominal).unwrap();
            scratch.reset();
        }
    }

    #[test]
    fn early_mode_cones_match_full() {
        let (m, lib) = c432();
        let opts = TimingOptions {
            mode: AnalysisMode::Early,
            clock_period_ns: Some(6.0),
            ..TimingOptions::default()
        };
        let mut binding = CellBinding::nominal(&m, &lib).unwrap();
        let base = analyze_full(&m, &binding, &opts).unwrap();
        let idx = 7;
        let fast =
            CellBinding::uniform_scaled_cell(&lib, &m.instances()[idx].cell.clone(), 81.0).unwrap();
        binding.replace(&m, idx, fast).unwrap();
        let (incr, _) = analyze_incremental(&m, &binding, &opts, &base, &[idx]).unwrap();
        let full = analyze_full(&m, &binding, &opts).unwrap();
        assert_states_bit_identical(&incr, &full);
    }

    #[test]
    fn stale_state_is_rejected() {
        let (m, lib) = c432();
        let opts = TimingOptions::default();
        let binding = CellBinding::nominal(&m, &lib).unwrap();
        let base = analyze_full(&m, &binding, &opts).unwrap();
        // A different netlist cannot reuse this state.
        let other = {
            let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
            technology_map(&n, &lib).unwrap()
        };
        let other_binding = CellBinding::nominal(&other, &lib).unwrap();
        assert!(analyze_incremental(&other, &other_binding, &opts, &base, &[]).is_err());
        // Out-of-range seed.
        assert!(analyze_incremental(&m, &binding, &opts, &base, &[usize::MAX]).is_err());
    }
}
