use std::error::Error;
use std::fmt;

/// Errors produced by the timing engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StaError {
    /// A binding does not cover or match the netlist.
    InvalidBinding {
        /// Human-readable reason.
        reason: String,
    },
    /// The bound netlist contains a combinational cycle.
    CombinationalCycle {
        /// A net on the cycle.
        net: String,
    },
    /// The analysis options were out of range.
    InvalidOptions {
        /// Human-readable reason.
        reason: String,
    },
    /// A characterized cell is missing an arc or pin the netlist needs.
    MissingTiming {
        /// Instance name.
        instance: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::InvalidBinding { reason } => write!(f, "invalid cell binding: {reason}"),
            StaError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net `{net}`")
            }
            StaError::InvalidOptions { reason } => write!(f, "invalid timing options: {reason}"),
            StaError::MissingTiming { instance, reason } => {
                write!(f, "instance `{instance}` lacks timing data: {reason}")
            }
        }
    }
}

impl Error for StaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = StaError::CombinationalCycle { net: "n42".into() };
        assert!(e.to_string().contains("n42"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<StaError>();
    }
}
