use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use svt_exec::ScratchArena;
use svt_netlist::MappedNetlist;
use svt_stdcell::Library;

use crate::incremental::{SharedTopology, StaState, Topology};
use crate::report::{FromRef, TimingReport};
use crate::{CellBinding, StaError};

/// Late (setup, max-arrival) or early (hold, min-arrival) analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalysisMode {
    /// Max arrivals, worst (largest) slews — the sign-off default.
    #[default]
    Late,
    /// Min arrivals, best (smallest) slews.
    Early,
}

/// Boundary conditions and parasitic assumptions of an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingOptions {
    /// Transition time driven into every primary input (ns).
    pub primary_input_slew_ns: f64,
    /// Capacitive load on every primary output (pF).
    pub output_load_pf: f64,
    /// Lumped wire capacitance added per fanout (pF).
    pub wire_cap_per_fanout_pf: f64,
    /// Analysis mode.
    pub mode: AnalysisMode,
    /// Clock period for required-time and slack computation; `None` skips
    /// the backward pass (meaningful in late mode).
    pub clock_period_ns: Option<f64>,
}

impl Default for TimingOptions {
    fn default() -> TimingOptions {
        TimingOptions {
            primary_input_slew_ns: 0.05,
            output_load_pf: 0.004,
            wire_cap_per_fanout_pf: 0.0006,
            mode: AnalysisMode::Late,
            clock_period_ns: None,
        }
    }
}

/// Runs static timing analysis on a bound netlist.
///
/// Levelized propagation: nets driven by primary inputs start at arrival 0
/// with the boundary slew; every instance is evaluated once all its input
/// nets are resolved; each arc contributes `arrival(input) + delay(slew,
/// load)`; arrivals and slews merge by max (late) or min (early).
///
/// # Errors
///
/// * [`StaError::InvalidOptions`] for non-positive boundary conditions,
/// * [`StaError::CombinationalCycle`] if the netlist cannot be levelized,
/// * [`StaError::MissingTiming`] when a bound variant lacks an arc for a
///   connected input pin.
pub fn analyze(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
) -> Result<TimingReport, StaError> {
    analyze_with_wire_caps(netlist, binding, options, &HashMap::new())
}

/// Like [`analyze`], with explicit per-net wire capacitances (pF) added on
/// top of the per-fanout lump — the hook for placement-extracted
/// parasitics (see `svt_core::hpwl_wire_caps`). Nets absent from the map
/// get only the per-fanout lump.
///
/// # Errors
///
/// See [`analyze`].
pub fn analyze_with_wire_caps(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    wire_caps_pf: &HashMap<String, f64>,
) -> Result<TimingReport, StaError> {
    analyze_full_with_wire_caps(netlist, binding, options, wire_caps_pf).map(StaState::into_report)
}

/// Like [`analyze`], but returns the full [`StaState`] (report plus the
/// net loads, per-arc delays, and completion order) so the analysis can
/// later be advanced incrementally with
/// [`analyze_incremental`](crate::analyze_incremental).
///
/// # Errors
///
/// See [`analyze`].
pub fn analyze_full(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
) -> Result<StaState, StaError> {
    analyze_full_with_wire_caps(netlist, binding, options, &HashMap::new())
}

/// [`analyze_full`] with explicit per-net wire capacitances (pF).
///
/// # Errors
///
/// See [`analyze`].
pub fn analyze_full_with_wire_caps(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    wire_caps_pf: &HashMap<String, f64>,
) -> Result<StaState, StaError> {
    validate(netlist, binding, options)?;
    let topo = Arc::new(Topology::build(netlist, binding)?);
    let scratch = ScratchArena::new();
    analyze_soa(netlist, binding, options, wire_caps_pf, &topo, &scratch)
}

/// [`analyze_full`] against a pre-built [`SharedTopology`] and a
/// caller-provided [`ScratchArena`] — the hot-path entry point. The
/// topology is verified (O(connections), no allocation) rather than
/// rebuilt, and the pass's temporaries are carved from `scratch` instead
/// of the heap, so repeated warm analyses of the same design (the six
/// sign-off corners, ECO re-timing) allocate only their result vectors.
///
/// # Errors
///
/// As [`analyze`], plus [`StaError::InvalidBinding`] when
/// `netlist`/`binding` no longer match `topo`.
pub fn analyze_full_in(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    topo: &SharedTopology,
    scratch: &ScratchArena,
) -> Result<StaState, StaError> {
    validate(netlist, binding, options)?;
    topo.0.verify(netlist, binding)?;
    analyze_soa(netlist, binding, options, &HashMap::new(), &topo.0, scratch)
}

/// The shared SoA analysis core: levelized forward propagation over flat
/// id-indexed lanes, then the backward required-time pass. Temporaries
/// (readiness counts, the pending stack, resolve flags) live in
/// `scratch`; only the result vectors are heap-allocated.
#[allow(clippy::too_many_lines)]
fn analyze_soa(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    wire_caps_pf: &HashMap<String, f64>,
    topo: &Arc<Topology>,
    scratch: &ScratchArena,
) -> Result<StaState, StaError> {
    let _span = svt_obs::span("sta.analyze");
    // Marks the start of one STA wave on the Chrome timeline, so the
    // per-corner analyses inside a parallel batch are tellable apart.
    svt_obs::instant("sta.wave");
    let n = netlist.instances().len();
    let net_count = topo.net_names.len();
    let (loads, extra_loads) = compute_loads(netlist, binding, options, wire_caps_pf, topo)?;

    // Net timing state: one lane per quantity, indexed by net id.
    let mut arrival = vec![0.0_f64; net_count];
    let mut slew = vec![0.0_f64; net_count];
    let mut from = vec![FromRef::NONE; net_count];
    let resolved: &mut [bool] = scratch.alloc_slice_fill(net_count, false);
    for pi in netlist.inputs() {
        if let Some(&id) = topo.net_ids.get(pi) {
            arrival[id as usize] = 0.0;
            slew[id as usize] = options.primary_input_slew_ns;
            resolved[id as usize] = true;
        }
    }

    // Levelize instances by input readiness (Kahn's algorithm over the
    // instance graph) and lay out the CSR arc store: each instance's
    // slot holds one arc per connected input pin.
    let pending: &mut [u32] = scratch.alloc_slice_fill(n, 0u32);
    let mut pending_len = 0usize;
    let unresolved: &mut [u32] = scratch.alloc_slice_fill(n, 0u32);
    let mut arc_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    arc_offsets.push(0);
    for (idx, inst) in netlist.instances().iter().enumerate() {
        let cell = binding.cell(idx);
        let mut count = 0u32;
        let mut arcs_here = 0u32;
        for pin in &cell.pins {
            if pin.capacitance_pf <= 0.0 {
                continue;
            }
            // Connected: Topology::build rejected unconnected input pins.
            if let Some(conn) = inst.connections.iter().position(|(p, _)| *p == pin.name) {
                arcs_here += 1;
                if !resolved[topo.conn_ids[idx][conn] as usize] {
                    count += 1;
                }
            }
        }
        arc_offsets.push(arc_offsets[idx] + arcs_here);
        unresolved[idx] = count;
        if count == 0 {
            pending[pending_len] = u32::try_from(idx).expect("instance count fits u32");
            pending_len += 1;
        }
    }
    let mut arc_data: Vec<(u32, f64)> = vec![(u32::MAX, 0.0); arc_offsets[n] as usize];

    let mut evaluated = 0usize;
    let mut completion_order: Vec<usize> = Vec::with_capacity(n);
    let mut eval = EvalScratch::default();
    while pending_len > 0 {
        pending_len -= 1;
        let idx = pending[pending_len] as usize;
        evaluated += 1;
        completion_order.push(idx);
        let out = evaluate_instance(
            netlist,
            binding,
            idx,
            topo,
            &loads,
            &arrival,
            &slew,
            options.mode,
            &mut eval,
        )?;
        arc_data[arc_offsets[idx] as usize..arc_offsets[idx + 1] as usize]
            .copy_from_slice(&eval.arcs);
        let out_id = topo.out_net[idx] as usize;
        arrival[out_id] = out.arrival_ns;
        slew[out_id] = out.slew_ns;
        from[out_id] = out.from;
        for &u in &topo.users_of[out_id] {
            unresolved[u as usize] -= 1;
            if unresolved[u as usize] == 0 {
                pending[pending_len] = u;
                pending_len += 1;
            }
        }
    }

    if evaluated != n {
        // Some instance never became ready: a cycle.
        let stuck = netlist
            .instances()
            .iter()
            .enumerate()
            .find(|(i, _)| unresolved[*i] > 0)
            .map(|(_, inst)| inst.name.clone())
            .unwrap_or_default();
        return Err(StaError::CombinationalCycle { net: stuck });
    }

    // Backward required-time pass (late mode) against the clock period.
    let mut required: Vec<f64> = Vec::new();
    let mut has_required: Vec<bool> = Vec::new();
    if let Some(period) = options.clock_period_ns {
        required = vec![0.0; net_count];
        has_required = vec![false; net_count];
        for &po in &topo.po_ids {
            let id = po as usize;
            if has_required[id] {
                required[id] = required[id].min(period);
            } else {
                has_required[id] = true;
                required[id] = period;
            }
        }
        for &idx in completion_order.iter().rev() {
            let out_id = topo.out_net[idx] as usize;
            if !has_required[out_id] {
                continue; // net drives nothing timed
            }
            let r_out = required[out_id];
            for &(in_id, delay) in
                &arc_data[arc_offsets[idx] as usize..arc_offsets[idx + 1] as usize]
            {
                let candidate = r_out - delay;
                let i = in_id as usize;
                if has_required[i] {
                    required[i] = required[i].min(candidate);
                } else {
                    has_required[i] = true;
                    required[i] = candidate;
                }
            }
        }
    }

    let report = TimingReport::from_soa(
        Arc::clone(topo),
        options.mode,
        arrival,
        slew,
        from,
        required,
        has_required,
    );
    Ok(StaState::new(
        report,
        loads,
        extra_loads,
        arc_offsets,
        arc_data,
        completion_order,
        Arc::clone(topo),
    ))
}

/// Boundary-condition and binding-shape checks shared by the full and
/// incremental analyses.
pub(crate) fn validate(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
) -> Result<(), StaError> {
    if options.primary_input_slew_ns <= 0.0
        || options.output_load_pf < 0.0
        || options.wire_cap_per_fanout_pf < 0.0
    {
        return Err(StaError::InvalidOptions {
            reason: "boundary slew must be positive and loads non-negative".into(),
        });
    }
    if binding.cells().len() != netlist.instances().len() {
        return Err(StaError::InvalidBinding {
            reason: "binding does not cover the netlist".into(),
        });
    }
    Ok(())
}

/// Net loads (indexed by topology net id): sink pin caps + wire cap per
/// fanout + PO load + explicit wire caps, accumulated in instance
/// order. Wire caps on nets outside the netlist come back separately
/// (sorted by name) — nothing in the design can observe them.
///
/// The incremental analysis recomputes this vector from scratch on
/// every update and bit-diffs it against the previous one: summation
/// order is the only order-sensitive floating-point arithmetic in the
/// timer, so sharing this exact accumulation sequence is what makes
/// incremental results bit-identical to a full rebuild.
#[allow(clippy::type_complexity)]
pub(crate) fn compute_loads(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    options: &TimingOptions,
    wire_caps_pf: &HashMap<String, f64>,
    topo: &Topology,
) -> Result<(Vec<f64>, Vec<(String, f64)>), StaError> {
    let mut loads = vec![0.0_f64; topo.net_names.len()];
    for (idx, inst) in netlist.instances().iter().enumerate() {
        let cell = binding.cell(idx);
        for pin in &cell.pins {
            if pin.capacitance_pf > 0.0 {
                if let Some(conn) = inst.connections.iter().position(|(p, _)| *p == pin.name) {
                    loads[topo.conn_ids[idx][conn] as usize] +=
                        pin.capacitance_pf + options.wire_cap_per_fanout_pf;
                }
            }
        }
    }
    for &po in &topo.po_ids {
        loads[po as usize] += options.output_load_pf;
    }
    let mut extra: Vec<(String, f64)> = Vec::new();
    for (net, cap) in wire_caps_pf {
        if *cap < 0.0 {
            return Err(StaError::InvalidOptions {
                reason: format!("negative wire cap on net `{net}`"),
            });
        }
        match topo.net_ids.get(net) {
            Some(&id) => loads[id as usize] += cap,
            None => extra.push((net.clone(), *cap)),
        }
    }
    extra.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((loads, extra))
}

/// The number of connected input pins of one bound instance — exactly
/// the number of arcs its evaluation produces, which makes the CSR arc
/// layout computable without evaluating anything.
pub(crate) fn connected_input_pins(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    idx: usize,
) -> usize {
    let inst = &netlist.instances()[idx];
    binding
        .cell(idx)
        .pins
        .iter()
        .filter(|pin| {
            pin.capacitance_pf > 0.0 && inst.connections.iter().any(|(p, _)| *p == pin.name)
        })
        .count()
}

/// The timing of one evaluated instance's output net.
pub(crate) struct EvalOut {
    pub arrival_ns: f64,
    pub slew_ns: f64,
    pub from: FromRef,
}

/// Reusable evaluation buffer: the `(input net id, delay)` arcs of the
/// most recent [`evaluate_instance`] call. One buffer serves a whole
/// pass, so per-instance evaluation performs no allocation once it has
/// grown to the widest cell.
#[derive(Default)]
pub(crate) struct EvalScratch {
    pub arcs: Vec<(u32, f64)>,
}

/// Evaluates one instance against resolved upstream net timings: arc
/// delay/slew lookups, worst-slew merge, and the arrival pick. Pure in
/// `(binding.cell(idx), upstream timings, loads)` — the incremental
/// analysis re-runs exactly this function for dirty instances, which is
/// why cone-limited recomputation is bit-identical to a full pass.
///
/// Arcs are left in `eval.arcs` (one per connected input pin, in
/// `cell.pins` order) for the caller to copy into its CSR slot.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_instance(
    netlist: &MappedNetlist,
    binding: &CellBinding,
    idx: usize,
    topo: &Topology,
    loads: &[f64],
    arrival: &[f64],
    slew: &[f64],
    mode: AnalysisMode,
    eval: &mut EvalScratch,
) -> Result<EvalOut, StaError> {
    let pick = |a: f64, b: f64| match mode {
        AnalysisMode::Late => a.max(b),
        AnalysisMode::Early => a.min(b),
    };
    let inst = &netlist.instances()[idx];
    let cell = binding.cell(idx);
    let out_id = topo.out_net[idx];
    let load = loads[out_id as usize];

    eval.arcs.clear();
    let mut best: Option<EvalOut> = None;
    let mut merged_slew: Option<f64> = None;
    for pin in &cell.pins {
        if pin.capacitance_pf <= 0.0 {
            continue;
        }
        let conn = inst
            .connections
            .iter()
            .position(|(p, _)| *p == pin.name)
            .ok_or_else(|| StaError::MissingTiming {
                instance: inst.name.clone(),
                reason: format!("input pin `{}` unconnected", pin.name),
            })?;
        let (pin_name, _) = &inst.connections[conn];
        let in_id = topo.conn_ids[idx][conn] as usize;
        let arc = cell
            .arc_from(pin_name)
            .ok_or_else(|| StaError::MissingTiming {
                instance: inst.name.clone(),
                reason: format!("no arc from pin `{pin_name}`"),
            })?;
        let delay = arc.delay.lookup(slew[in_id], load);
        let out_slew = arc.output_slew.lookup(slew[in_id], load);
        let arc_arrival = arrival[in_id] + delay;
        eval.arcs
            .push((u32::try_from(in_id).expect("net count fits u32"), delay));
        // Slew merges independently of the arrival winner (classic
        // worst-slew propagation).
        merged_slew = Some(match merged_slew {
            None => out_slew,
            Some(s) => pick(s, out_slew),
        });
        let replace = match &best {
            None => true,
            Some(cur) => pick(cur.arrival_ns, arc_arrival) == arc_arrival,
        };
        if replace {
            best = Some(EvalOut {
                arrival_ns: arc_arrival,
                slew_ns: out_slew,
                from: FromRef {
                    inst: u32::try_from(idx).expect("instance count fits u32"),
                    conn: u32::try_from(conn).expect("connection count fits u32"),
                },
            });
        }
    }
    let mut out = best.ok_or_else(|| StaError::MissingTiming {
        instance: inst.name.clone(),
        reason: "no input pins".into(),
    })?;
    out.slew_ns = merged_slew.expect("best implies at least one arc");
    Ok(out)
}

/// Convenience: nominal-corner analysis straight from a library.
///
/// # Errors
///
/// See [`CellBinding::nominal`] and [`analyze`].
pub fn analyze_nominal(
    netlist: &MappedNetlist,
    library: &Library,
    options: &TimingOptions,
) -> Result<TimingReport, StaError> {
    let binding = CellBinding::nominal(netlist, library)?;
    analyze(netlist, &binding, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_netlist::{bench, generate_benchmark, technology_map, BenchmarkProfile};
    use svt_stdcell::Library;

    fn mapped(text: &str) -> (MappedNetlist, Library) {
        let lib = Library::svt90();
        let n = bench::parse(text).unwrap();
        (technology_map(&n, &lib).unwrap(), lib)
    }

    #[test]
    fn single_gate_delay_matches_table() {
        let (m, lib) = mapped("# t\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n");
        let binding = CellBinding::nominal(&m, &lib).unwrap();
        let opts = TimingOptions::default();
        let report = analyze(&m, &binding, &opts).unwrap();
        let expected = binding.cell(0).arcs[0]
            .delay
            .lookup(opts.primary_input_slew_ns, opts.output_load_pf);
        assert!((report.circuit_delay_ns() - expected).abs() < 1e-12);
    }

    #[test]
    fn chain_accumulates_delay() {
        let (m, lib) = mapped("# chain\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NOT(x)\nz = NOT(y)\n");
        let binding = CellBinding::nominal(&m, &lib).unwrap();
        let report = analyze(&m, &binding, &TimingOptions::default()).unwrap();
        let one = {
            let (m1, lib) = mapped("# one\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n");
            let b1 = CellBinding::nominal(&m1, &lib).unwrap();
            analyze(&m1, &b1, &TimingOptions::default())
                .unwrap()
                .circuit_delay_ns()
        };
        assert!(report.circuit_delay_ns() > 2.0 * one);
    }

    #[test]
    fn late_takes_the_slower_input() {
        // z = NAND(a, y) where y = NOT(NOT(a)) is two levels deeper.
        let (m, lib) =
            mapped("# skew\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NOT(x)\nz = NAND(a, y)\n");
        let binding = CellBinding::nominal(&m, &lib).unwrap();
        let report = analyze(&m, &binding, &TimingOptions::default()).unwrap();
        // Critical path must come through y (pin B of the NAND).
        let path = report.critical_path();
        assert!(path.len() >= 3, "path {path:?}");
        let early = analyze(
            &m,
            &binding,
            &TimingOptions {
                mode: AnalysisMode::Early,
                ..TimingOptions::default()
            },
        )
        .unwrap();
        assert!(early.circuit_delay_ns() < report.circuit_delay_ns());
    }

    #[test]
    fn fanout_load_slows_the_driver() {
        let light = mapped("# f1\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n");
        let heavy = mapped(
            "# f4\nINPUT(a)\nOUTPUT(z)\nOUTPUT(q1)\nOUTPUT(q2)\nz = NOT(a)\nq1 = NOT(z)\nq2 = NOT(z)\n",
        );
        let d = |pair: &(MappedNetlist, Library)| {
            let b = CellBinding::nominal(&pair.0, &pair.1).unwrap();
            let r = analyze(&pair.0, &b, &TimingOptions::default()).unwrap();
            r.arrival_of("z").unwrap()
        };
        assert!(d(&heavy) > d(&light), "fanout must add load");
    }

    #[test]
    fn shared_topology_reuse_is_bit_identical() {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let m = technology_map(&n, &lib).unwrap();
        let opts = TimingOptions {
            clock_period_ns: Some(6.0),
            ..TimingOptions::default()
        };
        let binding = CellBinding::nominal(&m, &lib).unwrap();
        let topo = SharedTopology::build(&m, &binding).unwrap();
        let mut scratch = ScratchArena::new();
        let fresh = analyze_full(&m, &binding, &opts).unwrap();
        for _ in 0..3 {
            let warm = analyze_full_in(&m, &binding, &opts, &topo, &scratch).unwrap();
            assert_eq!(warm, fresh, "warm arena/topology reuse must not drift");
            scratch.reset();
        }
    }

    #[test]
    fn shared_topology_rejects_a_different_netlist() {
        let (m, lib) = mapped("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n");
        let binding = CellBinding::nominal(&m, &lib).unwrap();
        let topo = SharedTopology::build(&m, &binding).unwrap();
        let (other, _) = mapped("# u\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n");
        let other_binding = CellBinding::nominal(&other, &lib).unwrap();
        let scratch = ScratchArena::new();
        assert!(analyze_full_in(
            &other,
            &other_binding,
            &TimingOptions::default(),
            &topo,
            &scratch
        )
        .is_err());
    }

    #[test]
    fn corner_bindings_order_correctly() {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c432").unwrap());
        let m = technology_map(&n, &lib).unwrap();
        let opts = TimingOptions::default();
        let delay_at = |l: f64| {
            let b = CellBinding::uniform_scaled(&m, &lib, l).unwrap();
            analyze(&m, &b, &opts).unwrap().circuit_delay_ns()
        };
        let bc = delay_at(81.0);
        let nom = delay_at(90.0);
        let wc = delay_at(99.0);
        assert!(bc < nom && nom < wc, "corners must order: {bc} {nom} {wc}");
        // Linear delay model: corners should bracket nominal roughly
        // symmetrically.
        let up = wc / nom;
        let down = nom / bc;
        assert!(
            (up - down).abs() < 0.06,
            "asymmetric corners: {up} vs {down}"
        );
    }

    #[test]
    fn options_are_validated() {
        let (m, lib) = mapped("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n");
        let b = CellBinding::nominal(&m, &lib).unwrap();
        let bad = TimingOptions {
            primary_input_slew_ns: 0.0,
            ..TimingOptions::default()
        };
        assert!(analyze(&m, &b, &bad).is_err());
    }

    #[test]
    fn benchmark_scale_analysis_completes() {
        let lib = Library::svt90();
        let n = generate_benchmark(&BenchmarkProfile::iscas85("c880").unwrap());
        let m = technology_map(&n, &lib).unwrap();
        let report = analyze_nominal(&m, &lib, &TimingOptions::default()).unwrap();
        assert!(
            report.circuit_delay_ns() > 0.1,
            "c880 should be nontrivially deep"
        );
        let path = report.critical_path();
        assert!(path.len() > 5);
        // Arrivals along the path are non-decreasing.
        for w in path.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns + 1e-12);
        }
    }
}
// Additional slack-propagation tests live below the original suite so the
// forward-path tests stay untouched.
#[cfg(test)]
mod slack_tests {
    use super::*;
    use svt_netlist::bench;
    use svt_netlist::technology_map;
    use svt_stdcell::Library;

    fn mapped(text: &str) -> (MappedNetlist, Library) {
        let lib = Library::svt90();
        let n = bench::parse(text).unwrap();
        (technology_map(&n, &lib).unwrap(), lib)
    }

    fn with_clock(period: f64) -> TimingOptions {
        TimingOptions {
            clock_period_ns: Some(period),
            ..TimingOptions::default()
        }
    }

    #[test]
    fn po_slack_matches_period_minus_arrival() {
        let (m, lib) = mapped("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n");
        let b = CellBinding::nominal(&m, &lib).unwrap();
        let r = analyze(&m, &b, &with_clock(1.0)).unwrap();
        let slack = r.slack_of("z").unwrap();
        assert!((slack - (1.0 - r.arrival_of("z").unwrap())).abs() < 1e-12);
        assert!(slack > 0.0);
    }

    #[test]
    fn required_times_decrease_upstream() {
        let (m, lib) = mapped("# chain\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NOT(x)\nz = NOT(y)\n");
        let b = CellBinding::nominal(&m, &lib).unwrap();
        let r = analyze(&m, &b, &with_clock(2.0)).unwrap();
        let rq = |net: &str| r.required_of(net).unwrap();
        assert!(rq("a") < rq("x"));
        assert!(rq("x") < rq("y"));
        assert!(rq("y") < rq("z"));
        assert!((rq("z") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slack_is_constant_along_the_critical_path() {
        let (m, lib) =
            mapped("# skew\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NOT(x)\nz = NAND(a, y)\n");
        let b = CellBinding::nominal(&m, &lib).unwrap();
        let r = analyze(&m, &b, &with_clock(1.0)).unwrap();
        let path = r.critical_path();
        let slacks: Vec<f64> = path.iter().filter_map(|s| r.slack_of(&s.net)).collect();
        assert!(slacks.len() >= 2);
        for w in slacks.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "slack must be flat on the critical path: {slacks:?}"
            );
        }
        // The worst net slack is the critical path's slack.
        let worst = r.worst_net_slack_ns().unwrap();
        assert!((worst - slacks[0]).abs() < 1e-9);
    }

    #[test]
    fn infeasible_clock_yields_negative_slack() {
        let (m, lib) = mapped("# chain\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NOT(x)\nz = NOT(y)\n");
        let b = CellBinding::nominal(&m, &lib).unwrap();
        let r = analyze(&m, &b, &with_clock(0.01)).unwrap();
        assert!(r.worst_net_slack_ns().unwrap() < 0.0);
        assert!(r.total_negative_slack_ns().unwrap() < 0.0);
    }

    #[test]
    fn no_clock_means_no_slacks() {
        let (m, lib) = mapped("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n");
        let b = CellBinding::nominal(&m, &lib).unwrap();
        let r = analyze(&m, &b, &TimingOptions::default()).unwrap();
        assert_eq!(r.slack_of("z"), None);
        assert_eq!(r.worst_net_slack_ns(), None);
        assert_eq!(r.total_negative_slack_ns(), None);
    }
}
