//! Graph-based static timing analysis for the `svt` workspace.
//!
//! A deliberately mainstream STA core (the paper's methodology plugs into
//! "a traditional static timing analysis", §3.1.3):
//!
//! * [`CellBinding`] — assigns one [`svt_stdcell::CharacterizedCell`] to
//!   every instance of a mapped netlist. Corner analysis and the
//!   in-context flow differ *only* in which variants they bind.
//! * [`analyze`] — levelized propagation of arrival times and slews with
//!   NLDM lookup (bilinear + edge extrapolation), lumped capacitive loads,
//!   worst-slew merging, and late (max) or early (min) mode.
//! * [`TimingReport`] — per-net arrivals, circuit delay, critical path
//!   extraction, and required-time/slack computation against a clock
//!   period.
//! * [`analyze_full`] / [`analyze_incremental`] — the incremental (ECO)
//!   path: a full analysis returns an [`StaState`] that later edits
//!   advance by recomputing only the forward fan-out cone of arrivals
//!   and the backward fan-in cone of required times, bit-identically to
//!   a from-scratch analysis.
//!
//! # Examples
//!
//! ```
//! use svt_netlist::{bench, technology_map};
//! use svt_sta::{analyze, CellBinding, TimingOptions};
//! use svt_stdcell::Library;
//!
//! let lib = Library::svt90();
//! let n = bench::parse("# t\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n")?;
//! let mapped = technology_map(&n, &lib)?;
//! let binding = CellBinding::nominal(&mapped, &lib)?;
//! let report = analyze(&mapped, &binding, &TimingOptions::default())?;
//! assert!(report.circuit_delay_ns() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
mod binding;
mod error;
mod incremental;
mod report;

pub use analysis::{
    analyze, analyze_full, analyze_full_in, analyze_full_with_wire_caps, analyze_nominal,
    analyze_with_wire_caps, AnalysisMode, TimingOptions,
};
pub use binding::CellBinding;
pub use error::StaError;
pub use incremental::{
    analyze_incremental, analyze_incremental_in, analyze_incremental_with_wire_caps,
    IncrementalStats, SharedTopology, StaState,
};
pub use report::{format_path_report, PathStep, TimingReport};
