use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::AnalysisMode;

/// Resolved timing of one net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct NetTiming {
    /// Arrival time in nanoseconds.
    pub arrival_ns: f64,
    /// Transition time in nanoseconds.
    pub slew_ns: f64,
    /// `(instance index, input pin, upstream net)` that set the arrival;
    /// `None` for primary inputs.
    pub from: Option<(usize, String, String)>,
}

/// One step of a reported timing path, ending on `net`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Net the step arrives on.
    pub net: String,
    /// Driving instance index (`None` for the primary-input step).
    pub instance: Option<usize>,
    /// Input pin of the driving instance the path came through.
    pub through_pin: Option<String>,
    /// Arrival time at the net.
    pub arrival_ns: f64,
}

/// The result of one timing analysis.
///
/// # Examples
///
/// ```
/// use svt_netlist::{bench, technology_map};
/// use svt_sta::{analyze, CellBinding, TimingOptions};
/// use svt_stdcell::Library;
///
/// let lib = Library::svt90();
/// let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let mapped = technology_map(&n, &lib)?;
/// let binding = CellBinding::nominal(&mapped, &lib)?;
/// let report = analyze(&mapped, &binding, &TimingOptions::default())?;
/// let slack = report.worst_slack_ns(1.0);
/// assert!(slack > 0.0, "an inverter easily makes a 1 ns clock");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    pub(crate) design: String,
    pub(crate) nets: HashMap<String, NetTiming>,
    pub(crate) outputs: Vec<String>,
    pub(crate) mode: AnalysisMode,
    /// Required times per net (present when a clock period was given).
    pub(crate) required: HashMap<String, f64>,
}

impl TimingReport {
    pub(crate) fn new(
        design: String,
        nets: HashMap<String, NetTiming>,
        outputs: Vec<String>,
        mode: AnalysisMode,
        required: HashMap<String, f64>,
    ) -> TimingReport {
        TimingReport {
            design,
            nets,
            outputs,
            mode,
            required,
        }
    }

    /// Design name.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.design
    }

    /// The analysis mode the report was produced in.
    #[must_use]
    pub fn mode(&self) -> AnalysisMode {
        self.mode
    }

    /// The arrival time of a net, if it was analyzed.
    #[must_use]
    pub fn arrival_of(&self, net: &str) -> Option<f64> {
        self.nets.get(net).map(|t| t.arrival_ns)
    }

    /// The slew of a net, if it was analyzed.
    #[must_use]
    pub fn slew_of(&self, net: &str) -> Option<f64> {
        self.nets.get(net).map(|t| t.slew_ns)
    }

    /// Arrival per primary output, in output order.
    #[must_use]
    pub fn po_arrivals(&self) -> Vec<(String, f64)> {
        self.outputs
            .iter()
            .map(|po| {
                (
                    po.clone(),
                    self.nets.get(po).map(|t| t.arrival_ns).unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// The circuit delay: the extreme primary-output arrival (max in late
    /// mode, min in early mode).
    #[must_use]
    pub fn circuit_delay_ns(&self) -> f64 {
        let arrivals = self.po_arrivals();
        match self.mode {
            AnalysisMode::Late => arrivals.iter().map(|(_, a)| *a).fold(0.0, f64::max),
            AnalysisMode::Early => arrivals
                .iter()
                .map(|(_, a)| *a)
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// The primary output setting the circuit delay.
    #[must_use]
    pub fn critical_output(&self) -> Option<String> {
        let target = self.circuit_delay_ns();
        self.po_arrivals()
            .into_iter()
            .find(|(_, a)| (*a - target).abs() < 1e-12)
            .map(|(po, _)| po)
    }

    /// Walks the critical path backward from the critical output to a
    /// primary input. Steps are returned source-first.
    #[must_use]
    pub fn critical_path(&self) -> Vec<PathStep> {
        let Some(mut net) = self.critical_output() else {
            return Vec::new();
        };
        let mut steps = Vec::new();
        while let Some(timing) = self.nets.get(&net) {
            steps.push(PathStep {
                net: net.clone(),
                instance: timing.from.as_ref().map(|(i, _, _)| *i),
                through_pin: timing.from.as_ref().map(|(_, p, _)| p.clone()),
                arrival_ns: timing.arrival_ns,
            });
            match &timing.from {
                Some((_, _, upstream)) => net = upstream.clone(),
                None => break,
            }
        }
        steps.reverse();
        steps
    }

    /// The required time of a net (available when the analysis ran with a
    /// clock period).
    #[must_use]
    pub fn required_of(&self, net: &str) -> Option<f64> {
        self.required.get(net).copied()
    }

    /// The slack of a net: `required − arrival`. `None` when the net has
    /// no required time (no clock period, or the net drives nothing
    /// timed).
    #[must_use]
    pub fn slack_of(&self, net: &str) -> Option<f64> {
        Some(self.required_of(net)? - self.arrival_of(net)?)
    }

    /// The worst (most negative) slack over all nets with required times,
    /// if the analysis ran with a clock period.
    #[must_use]
    pub fn worst_net_slack_ns(&self) -> Option<f64> {
        self.required
            .keys()
            .filter_map(|net| self.slack_of(net))
            .min_by(f64::total_cmp)
    }

    /// Total negative slack over primary outputs, if a clock period was
    /// given.
    #[must_use]
    pub fn total_negative_slack_ns(&self) -> Option<f64> {
        if self.required.is_empty() {
            return None;
        }
        Some(
            self.outputs
                .iter()
                .filter_map(|po| self.slack_of(po))
                .filter(|s| *s < 0.0)
                .sum(),
        )
    }

    /// Worst slack against a clock period: `period − circuit delay` in late
    /// mode.
    #[must_use]
    pub fn worst_slack_ns(&self, clock_period_ns: f64) -> f64 {
        clock_period_ns - self.circuit_delay_ns()
    }

    /// Per-output slack against a clock period, output order preserved.
    #[must_use]
    pub fn output_slacks_ns(&self, clock_period_ns: f64) -> Vec<(String, f64)> {
        self.po_arrivals()
            .into_iter()
            .map(|(po, a)| (po, clock_period_ns - a))
            .collect()
    }
}

/// Formats the critical path as a classic sign-off text report
/// (startpoint → per-stage increments → endpoint, with slack when the
/// analysis ran against a clock period).
///
/// # Examples
///
/// ```
/// use svt_netlist::{bench, technology_map};
/// use svt_sta::{analyze, format_path_report, CellBinding, TimingOptions};
/// use svt_stdcell::Library;
///
/// let lib = Library::svt90();
/// let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let mapped = technology_map(&n, &lib)?;
/// let binding = CellBinding::nominal(&mapped, &lib)?;
/// let opts = TimingOptions { clock_period_ns: Some(1.0), ..TimingOptions::default() };
/// let report = analyze(&mapped, &binding, &opts)?;
/// let text = format_path_report(&report, &mapped, &binding);
/// assert!(text.contains("Startpoint"));
/// assert!(text.contains("slack"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn format_path_report(
    report: &TimingReport,
    netlist: &svt_netlist::MappedNetlist,
    binding: &crate::CellBinding,
) -> String {
    use std::fmt::Write as _;
    let path = report.critical_path();
    let mut out = String::new();
    let _ = writeln!(out, "Design: {}", report.design());
    match path.first() {
        Some(first) => {
            let _ = writeln!(out, "Startpoint: {} (primary input)", first.net);
        }
        None => {
            out.push_str("No timed paths.\n");
            return out;
        }
    }
    if let Some(last) = path.last() {
        let _ = writeln!(out, "Endpoint:   {} (primary output)", last.net);
    }
    let _ = writeln!(
        out,
        "\n{:<24} {:<20} {:>9} {:>9}",
        "point", "cell (through pin)", "incr", "arrival"
    );
    let mut prev = 0.0;
    for step in &path {
        let through = match (step.instance, &step.through_pin) {
            (Some(idx), Some(pin)) => {
                let inst = &netlist.instances()[idx];
                format!("{} ({}/{})", binding.cell(idx).cell_name, inst.name, pin)
            }
            _ => "(input)".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<24} {:<20} {:>9.4} {:>9.4}",
            step.net,
            through,
            step.arrival_ns - prev,
            step.arrival_ns
        );
        prev = step.arrival_ns;
    }
    let _ = writeln!(out, "\ndata arrival time {:>30.4}", prev);
    if let Some(last) = path.last() {
        if let Some(required) = report.required_of(&last.net) {
            let _ = writeln!(out, "data required time {:>29.4}", required);
            let _ = writeln!(out, "slack {:>42.4}", required - prev);
        }
    }
    out
}

#[cfg(test)]
mod report_format_tests {
    use super::*;
    use crate::{analyze, CellBinding, TimingOptions};
    use svt_netlist::{bench, technology_map};
    use svt_stdcell::Library;

    #[test]
    fn report_lists_every_stage_in_order() {
        let lib = Library::svt90();
        let n =
            bench::parse("# chain\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NAND(a, x)\nz = NOT(y)\n")
                .unwrap();
        let mapped = technology_map(&n, &lib).unwrap();
        let binding = CellBinding::nominal(&mapped, &lib).unwrap();
        let opts = TimingOptions {
            clock_period_ns: Some(1.0),
            ..TimingOptions::default()
        };
        let report = analyze(&mapped, &binding, &opts).unwrap();
        let text = format_path_report(&report, &mapped, &binding);
        assert!(text.contains("Startpoint: a"));
        assert!(text.contains("Endpoint:   z"));
        // Stages appear in arrival order in the table body.
        let body = text.split("arrival").nth(1).expect("table header present");
        let pos = |s: &str| {
            body.find(s)
                .unwrap_or_else(|| panic!("missing {s} in:\n{text}"))
        };
        assert!(pos("\nx ") < pos("\ny "));
        assert!(pos("\ny ") < pos("\nz "));
        assert!(text.contains("slack"));
        // Increments sum to the arrival.
        let arrival = report.circuit_delay_ns();
        assert!(text.contains(&format!("{arrival:.4}")));
    }

    #[test]
    fn report_without_clock_omits_slack() {
        let lib = Library::svt90();
        let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let mapped = technology_map(&n, &lib).unwrap();
        let binding = CellBinding::nominal(&mapped, &lib).unwrap();
        let report = analyze(&mapped, &binding, &TimingOptions::default()).unwrap();
        let text = format_path_report(&report, &mapped, &binding);
        assert!(!text.contains("slack"));
        assert!(text.contains("data arrival time"));
    }
}
