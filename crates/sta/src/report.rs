use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::incremental::Topology;
use crate::AnalysisMode;

/// Sentinel instance id marking "no driving arc" (primary inputs).
pub(crate) const NO_FROM: u32 = u32::MAX;

/// The winning arc of a net's arrival: the driving instance and the index
/// of the `connections` entry the path came through. `inst == NO_FROM`
/// marks a primary input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FromRef {
    /// Driving instance index (`NO_FROM` for primary inputs).
    pub inst: u32,
    /// Index into that instance's `connections` for the input pin.
    pub conn: u32,
}

impl FromRef {
    /// The primary-input marker.
    pub(crate) const NONE: FromRef = FromRef {
        inst: NO_FROM,
        conn: NO_FROM,
    };

    /// Whether this is the primary-input marker.
    pub(crate) fn is_none(self) -> bool {
        self.inst == NO_FROM
    }
}

/// One step of a reported timing path, ending on `net`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Net the step arrives on.
    pub net: String,
    /// Driving instance index (`None` for the primary-input step).
    pub instance: Option<usize>,
    /// Input pin of the driving instance the path came through.
    pub through_pin: Option<String>,
    /// Arrival time at the net.
    pub arrival_ns: f64,
}

/// The result of one timing analysis.
///
/// Timing state is stored as flat structure-of-arrays vectors indexed by
/// the interned net ids of the shared `Topology` — one cache-friendly
/// `f64` lane per quantity instead of a per-net hash map. The public
/// accessors translate names to ids at the boundary, so callers are
/// unaffected by the layout.
///
/// # Examples
///
/// ```
/// use svt_netlist::{bench, technology_map};
/// use svt_sta::{analyze, CellBinding, TimingOptions};
/// use svt_stdcell::Library;
///
/// let lib = Library::svt90();
/// let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let mapped = technology_map(&n, &lib)?;
/// let binding = CellBinding::nominal(&mapped, &lib)?;
/// let report = analyze(&mapped, &binding, &TimingOptions::default())?;
/// let slack = report.worst_slack_ns(1.0);
/// assert!(slack > 0.0, "an inverter easily makes a 1 ns clock");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Interned connectivity the id-indexed lanes below refer to.
    pub(crate) topo: Arc<Topology>,
    pub(crate) mode: AnalysisMode,
    /// Arrival time (ns) per net id.
    pub(crate) arrival: Vec<f64>,
    /// Transition time (ns) per net id.
    pub(crate) slew: Vec<f64>,
    /// Winning arc per net id ([`FromRef::NONE`] for primary inputs).
    pub(crate) from: Vec<FromRef>,
    /// Required time (ns) per net id; empty when the analysis ran without
    /// a clock period. Meaningful only where `has_required` is set.
    pub(crate) required: Vec<f64>,
    /// Whether a net has a required time; empty when no clock was given.
    pub(crate) has_required: Vec<bool>,
}

impl TimingReport {
    pub(crate) fn from_soa(
        topo: Arc<Topology>,
        mode: AnalysisMode,
        arrival: Vec<f64>,
        slew: Vec<f64>,
        from: Vec<FromRef>,
        required: Vec<f64>,
        has_required: Vec<bool>,
    ) -> TimingReport {
        TimingReport {
            topo,
            mode,
            arrival,
            slew,
            from,
            required,
            has_required,
        }
    }

    fn net_id(&self, net: &str) -> Option<usize> {
        self.topo.net_ids.get(net).map(|&id| id as usize)
    }

    /// Design name.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.topo.design
    }

    /// The analysis mode the report was produced in.
    #[must_use]
    pub fn mode(&self) -> AnalysisMode {
        self.mode
    }

    /// The arrival time of a net, if it was analyzed.
    #[must_use]
    pub fn arrival_of(&self, net: &str) -> Option<f64> {
        self.net_id(net).map(|id| self.arrival[id])
    }

    /// The slew of a net, if it was analyzed.
    #[must_use]
    pub fn slew_of(&self, net: &str) -> Option<f64> {
        self.net_id(net).map(|id| self.slew[id])
    }

    /// Arrival per primary output, in output order.
    #[must_use]
    pub fn po_arrivals(&self) -> Vec<(String, f64)> {
        self.topo
            .po_ids
            .iter()
            .map(|&po| {
                (
                    self.topo.net_names[po as usize].clone(),
                    self.arrival[po as usize],
                )
            })
            .collect()
    }

    /// The circuit delay: the extreme primary-output arrival (max in late
    /// mode, min in early mode).
    #[must_use]
    pub fn circuit_delay_ns(&self) -> f64 {
        let arrivals = self.topo.po_ids.iter().map(|&po| self.arrival[po as usize]);
        match self.mode {
            AnalysisMode::Late => arrivals.fold(0.0, f64::max),
            AnalysisMode::Early => arrivals.fold(f64::INFINITY, f64::min),
        }
    }

    /// The primary output setting the circuit delay.
    #[must_use]
    pub fn critical_output(&self) -> Option<String> {
        let target = self.circuit_delay_ns();
        self.topo
            .po_ids
            .iter()
            .find(|&&po| (self.arrival[po as usize] - target).abs() < 1e-12)
            .map(|&po| self.topo.net_names[po as usize].clone())
    }

    /// Walks the critical path backward from the critical output to a
    /// primary input. Steps are returned source-first.
    #[must_use]
    pub fn critical_path(&self) -> Vec<PathStep> {
        let Some(mut id) = self.critical_output().and_then(|net| self.net_id(&net)) else {
            return Vec::new();
        };
        let mut steps = Vec::new();
        loop {
            let from = self.from[id];
            steps.push(PathStep {
                net: self.topo.net_names[id].clone(),
                instance: (!from.is_none()).then_some(from.inst as usize),
                through_pin: (!from.is_none())
                    .then(|| self.topo.conn_pin(from.inst, from.conn).to_string()),
                arrival_ns: self.arrival[id],
            });
            if from.is_none() {
                break;
            }
            id = self.topo.conn_ids[from.inst as usize][from.conn as usize] as usize;
        }
        steps.reverse();
        steps
    }

    /// The required time of a net (available when the analysis ran with a
    /// clock period).
    #[must_use]
    pub fn required_of(&self, net: &str) -> Option<f64> {
        let id = self.net_id(net)?;
        self.has_required
            .get(id)
            .copied()
            .unwrap_or(false)
            .then(|| self.required[id])
    }

    /// The slack of a net: `required − arrival`. `None` when the net has
    /// no required time (no clock period, or the net drives nothing
    /// timed).
    #[must_use]
    pub fn slack_of(&self, net: &str) -> Option<f64> {
        let id = self.net_id(net)?;
        self.has_required
            .get(id)
            .copied()
            .unwrap_or(false)
            .then(|| self.required[id] - self.arrival[id])
    }

    /// The worst (most negative) slack over all nets with required times,
    /// if the analysis ran with a clock period.
    #[must_use]
    pub fn worst_net_slack_ns(&self) -> Option<f64> {
        self.has_required
            .iter()
            .enumerate()
            .filter(|&(_, &has)| has)
            .map(|(id, _)| self.required[id] - self.arrival[id])
            .min_by(f64::total_cmp)
    }

    /// Total negative slack over primary outputs, if a clock period was
    /// given.
    #[must_use]
    pub fn total_negative_slack_ns(&self) -> Option<f64> {
        if self.has_required.is_empty() {
            return None;
        }
        Some(
            self.topo
                .po_ids
                .iter()
                .filter(|&&po| self.has_required[po as usize])
                .map(|&po| self.required[po as usize] - self.arrival[po as usize])
                .filter(|s| *s < 0.0)
                .sum(),
        )
    }

    /// Worst slack against a clock period: `period − circuit delay` in late
    /// mode.
    #[must_use]
    pub fn worst_slack_ns(&self, clock_period_ns: f64) -> f64 {
        clock_period_ns - self.circuit_delay_ns()
    }

    /// Per-output slack against a clock period, output order preserved.
    #[must_use]
    pub fn output_slacks_ns(&self, clock_period_ns: f64) -> Vec<(String, f64)> {
        self.po_arrivals()
            .into_iter()
            .map(|(po, a)| (po, clock_period_ns - a))
            .collect()
    }
}

/// Formats the critical path as a classic sign-off text report
/// (startpoint → per-stage increments → endpoint, with slack when the
/// analysis ran against a clock period).
///
/// # Examples
///
/// ```
/// use svt_netlist::{bench, technology_map};
/// use svt_sta::{analyze, format_path_report, CellBinding, TimingOptions};
/// use svt_stdcell::Library;
///
/// let lib = Library::svt90();
/// let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let mapped = technology_map(&n, &lib)?;
/// let binding = CellBinding::nominal(&mapped, &lib)?;
/// let opts = TimingOptions { clock_period_ns: Some(1.0), ..TimingOptions::default() };
/// let report = analyze(&mapped, &binding, &opts)?;
/// let text = format_path_report(&report, &mapped, &binding);
/// assert!(text.contains("Startpoint"));
/// assert!(text.contains("slack"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn format_path_report(
    report: &TimingReport,
    netlist: &svt_netlist::MappedNetlist,
    binding: &crate::CellBinding,
) -> String {
    use std::fmt::Write as _;
    let path = report.critical_path();
    let mut out = String::new();
    let _ = writeln!(out, "Design: {}", report.design());
    match path.first() {
        Some(first) => {
            let _ = writeln!(out, "Startpoint: {} (primary input)", first.net);
        }
        None => {
            out.push_str("No timed paths.\n");
            return out;
        }
    }
    if let Some(last) = path.last() {
        let _ = writeln!(out, "Endpoint:   {} (primary output)", last.net);
    }
    let _ = writeln!(
        out,
        "\n{:<24} {:<20} {:>9} {:>9}",
        "point", "cell (through pin)", "incr", "arrival"
    );
    let mut prev = 0.0;
    for step in &path {
        let through = match (step.instance, &step.through_pin) {
            (Some(idx), Some(pin)) => {
                let inst = &netlist.instances()[idx];
                format!("{} ({}/{})", binding.cell(idx).cell_name, inst.name, pin)
            }
            _ => "(input)".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<24} {:<20} {:>9.4} {:>9.4}",
            step.net,
            through,
            step.arrival_ns - prev,
            step.arrival_ns
        );
        prev = step.arrival_ns;
    }
    let _ = writeln!(out, "\ndata arrival time {:>30.4}", prev);
    if let Some(last) = path.last() {
        if let Some(required) = report.required_of(&last.net) {
            let _ = writeln!(out, "data required time {:>29.4}", required);
            let _ = writeln!(out, "slack {:>42.4}", required - prev);
        }
    }
    out
}

#[cfg(test)]
mod report_format_tests {
    use super::*;
    use crate::{analyze, CellBinding, TimingOptions};
    use svt_netlist::{bench, technology_map};
    use svt_stdcell::Library;

    #[test]
    fn report_lists_every_stage_in_order() {
        let lib = Library::svt90();
        let n =
            bench::parse("# chain\nINPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NAND(a, x)\nz = NOT(y)\n")
                .unwrap();
        let mapped = technology_map(&n, &lib).unwrap();
        let binding = CellBinding::nominal(&mapped, &lib).unwrap();
        let opts = TimingOptions {
            clock_period_ns: Some(1.0),
            ..TimingOptions::default()
        };
        let report = analyze(&mapped, &binding, &opts).unwrap();
        let text = format_path_report(&report, &mapped, &binding);
        assert!(text.contains("Startpoint: a"));
        assert!(text.contains("Endpoint:   z"));
        // Stages appear in arrival order in the table body.
        let body = text.split("arrival").nth(1).expect("table header present");
        let pos = |s: &str| {
            body.find(s)
                .unwrap_or_else(|| panic!("missing {s} in:\n{text}"))
        };
        assert!(pos("\nx ") < pos("\ny "));
        assert!(pos("\ny ") < pos("\nz "));
        assert!(text.contains("slack"));
        // Increments sum to the arrival.
        let arrival = report.circuit_delay_ns();
        assert!(text.contains(&format!("{arrival:.4}")));
    }

    #[test]
    fn report_without_clock_omits_slack() {
        let lib = Library::svt90();
        let n = bench::parse("# t\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let mapped = technology_map(&n, &lib).unwrap();
        let binding = CellBinding::nominal(&mapped, &lib).unwrap();
        let report = analyze(&mapped, &binding, &TimingOptions::default()).unwrap();
        let text = format_path_report(&report, &mapped, &binding);
        assert!(!text.contains("slack"));
        assert!(text.contains("data arrival time"));
    }
}
