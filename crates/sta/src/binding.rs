use std::sync::Arc;

use svt_netlist::MappedNetlist;
use svt_stdcell::{characterize, CharacterizeOptions, CharacterizedCell, Library};

use crate::StaError;

/// Assignment of one characterized cell variant to every netlist instance.
///
/// The systematic-variation flow binds each instance to its placement
/// context's variant ("substituting the correct version of the timing model
/// for each cell based on its placement", paper §4); traditional corner
/// analysis binds every instance of the same master to the same corner
/// variant. Either way the timer itself is unchanged.
///
/// Variants are held behind [`Arc`] so memoized characterizations can be
/// shared across bindings (all six sign-off corners of a flow, every
/// incremental ECO state) without cloning NLDM tables; see
/// [`CellBinding::new_shared`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellBinding {
    cells: Vec<Arc<CharacterizedCell>>,
}

impl CellBinding {
    /// Binds explicit variants, index-aligned with the netlist instances.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidBinding`] if the count differs from the
    /// instance count or a variant's master does not match the instance's
    /// cell.
    pub fn new(
        netlist: &MappedNetlist,
        cells: Vec<CharacterizedCell>,
    ) -> Result<CellBinding, StaError> {
        Self::new_shared(netlist, cells.into_iter().map(Arc::new).collect())
    }

    /// [`CellBinding::new`] over already-shared variants — the zero-copy
    /// path for callers holding memoized characterizations.
    ///
    /// # Errors
    ///
    /// See [`CellBinding::new`].
    pub fn new_shared(
        netlist: &MappedNetlist,
        cells: Vec<Arc<CharacterizedCell>>,
    ) -> Result<CellBinding, StaError> {
        if cells.len() != netlist.instances().len() {
            return Err(StaError::InvalidBinding {
                reason: format!(
                    "{} variants for {} instances",
                    cells.len(),
                    netlist.instances().len()
                ),
            });
        }
        for (inst, cell) in netlist.instances().iter().zip(&cells) {
            if inst.cell != cell.cell_name {
                return Err(StaError::InvalidBinding {
                    reason: format!(
                        "instance `{}` is a {} but was bound to a {} variant",
                        inst.name, inst.cell, cell.cell_name
                    ),
                });
            }
        }
        Ok(CellBinding { cells })
    }

    /// Binds every instance to its master characterized at the nominal
    /// drawn gate length — the baseline "perfect printing" timing model.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidBinding`] if an instance uses a cell the
    /// library does not contain.
    pub fn nominal(netlist: &MappedNetlist, library: &Library) -> Result<CellBinding, StaError> {
        Self::uniform_scaled(netlist, library, 90.0)
    }

    /// Binds every instance to its master characterized with *all* devices
    /// at `gate_length_nm` — the traditional corner model ("worst-case gate
    /// length is assumed to be the maximum possible gate length variation",
    /// paper §3).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidBinding`] if an instance uses a cell the
    /// library does not contain, or characterization fails.
    pub fn uniform_scaled(
        netlist: &MappedNetlist,
        library: &Library,
        gate_length_nm: f64,
    ) -> Result<CellBinding, StaError> {
        let mut cells = Vec::with_capacity(netlist.instances().len());
        for inst in netlist.instances() {
            let characterized = Self::uniform_scaled_cell(library, &inst.cell, gate_length_nm)
                .map_err(|e| StaError::InvalidBinding {
                    reason: format!("instance `{}`: {e}", inst.name),
                })?;
            cells.push(characterized);
        }
        CellBinding::new(netlist, cells)
    }

    /// Characterizes one library cell with *all* devices at
    /// `gate_length_nm` — the per-cell recipe behind
    /// [`CellBinding::uniform_scaled`], exposed so incremental flows can
    /// rebind a single edited instance bit-identically to a full rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidBinding`] if the library does not
    /// contain `cell_name` or characterization fails.
    pub fn uniform_scaled_cell(
        library: &Library,
        cell_name: &str,
        gate_length_nm: f64,
    ) -> Result<CharacterizedCell, StaError> {
        let cell = library
            .cell(cell_name)
            .ok_or_else(|| StaError::InvalidBinding {
                reason: format!("unknown cell `{cell_name}`"),
            })?;
        let lengths = vec![gate_length_nm; cell.layout().devices().len()];
        let variant = format!("{}_L{gate_length_nm}", cell.name());
        characterize(cell, &lengths, &variant, CharacterizeOptions::default()).map_err(|e| {
            StaError::InvalidBinding {
                reason: format!("characterization failed for `{cell_name}`: {e}"),
            }
        })
    }

    /// Replaces the variant bound to instance `idx` (incremental
    /// rebinding after an ECO edit re-characterizes one instance).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidBinding`] if `idx` is out of range or
    /// the variant's master does not match the instance's current cell.
    pub fn replace(
        &mut self,
        netlist: &MappedNetlist,
        idx: usize,
        cell: impl Into<Arc<CharacterizedCell>>,
    ) -> Result<(), StaError> {
        let cell = cell.into();
        let inst = netlist
            .instances()
            .get(idx)
            .ok_or_else(|| StaError::InvalidBinding {
                reason: format!("instance index {idx} out of range"),
            })?;
        if inst.cell != cell.cell_name {
            return Err(StaError::InvalidBinding {
                reason: format!(
                    "instance `{}` is a {} but was rebound to a {} variant",
                    inst.name, inst.cell, cell.cell_name
                ),
            });
        }
        self.cells[idx] = cell;
        Ok(())
    }

    /// The variant bound to instance `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn cell(&self, idx: usize) -> &CharacterizedCell {
        &self.cells[idx]
    }

    /// All bound variants, instance-aligned.
    #[must_use]
    pub fn cells(&self) -> &[Arc<CharacterizedCell>] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_netlist::{bench, technology_map};

    fn setup() -> (MappedNetlist, Library) {
        let lib = Library::svt90();
        let n = bench::parse("# t\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n").unwrap();
        (technology_map(&n, &lib).unwrap(), lib)
    }

    #[test]
    fn nominal_binding_covers_all_instances() {
        let (m, lib) = setup();
        let b = CellBinding::nominal(&m, &lib).unwrap();
        assert_eq!(b.cells().len(), m.instances().len());
        assert_eq!(b.cell(0).cell_name, "NAND2X1");
    }

    #[test]
    fn scaled_binding_is_slower_at_longer_gates() {
        let (m, lib) = setup();
        let nom = CellBinding::nominal(&m, &lib).unwrap();
        let wc = CellBinding::uniform_scaled(&m, &lib, 99.0).unwrap();
        let d_nom = nom.cell(0).arcs[0].delay.lookup(0.05, 0.01);
        let d_wc = wc.cell(0).arcs[0].delay.lookup(0.05, 0.01);
        assert!(d_wc > d_nom);
    }

    #[test]
    fn mismatched_binding_is_rejected() {
        let (m, lib) = setup();
        // Wrong count.
        assert!(CellBinding::new(&m, vec![]).is_err());
        // Wrong master.
        let inv = lib.cell("INVX1").unwrap();
        let wrong = characterize(
            inv,
            &vec![90.0; inv.layout().devices().len()],
            "INVX1_x",
            CharacterizeOptions::default(),
        )
        .unwrap();
        assert!(CellBinding::new(&m, vec![wrong]).is_err());
    }
}
