//! Property tests pinning the arena/SoA timing state to the allocating
//! reference paths, bit for bit.
//!
//! The refactored hot path has three entry points that must agree
//! exactly with a plain from-scratch [`analyze_full`]:
//!
//! * [`analyze_full_in`] — cached [`SharedTopology`] plus a reused
//!   scratch arena,
//! * [`analyze_incremental`] — cone-limited update of a prior state,
//! * [`analyze_incremental_in`] — the same through a reused arena.
//!
//! Every property runs on randomized generator netlists (seeded, so
//! failures replay) and compares whole [`svt_sta::StaState`]s with `==`,
//! which is bit-exact: the state holds raw `f64` vectors and `PartialEq`
//! on them is IEEE equality (no NaNs arise from finite NLDM tables).
//!
//! Thread-count independence: these APIs never touch the worker pool, so
//! the properties hold under any `SVT_THREADS`; CI's differential matrix
//! runs this suite under both `SVT_THREADS=1` and the default to pin the
//! claim end to end.

use proptest::prelude::*;

use svt_exec::ScratchArena;
use svt_netlist::{generate_benchmark, technology_map, BenchmarkProfile, MappedNetlist};
use svt_sta::{
    analyze_full, analyze_full_in, analyze_incremental, analyze_incremental_in, CellBinding,
    SharedTopology, TimingOptions,
};
use svt_stdcell::Library;

/// A randomized benchmark profile small enough for ~100 ms cases.
fn profile_strategy() -> impl Strategy<Value = BenchmarkProfile> {
    (2usize..10, 1usize..5, 8usize..60, 0u64..u64::MAX).prop_map(|(pi, po, extra, seed)| {
        // `custom` requires gates >= outputs.
        BenchmarkProfile::custom("prop", pi, po, po + extra, seed)
    })
}

fn mapped(profile: &BenchmarkProfile, lib: &Library) -> MappedNetlist {
    technology_map(&generate_benchmark(profile), lib).expect("generated netlists map")
}

/// Timing options with the backward pass on, so required-time state is
/// part of the comparison too.
fn options() -> TimingOptions {
    TimingOptions {
        clock_period_ns: Some(1.0),
        ..TimingOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The arena path (shared topology + reused scratch) reproduces the
    /// allocating path bit-for-bit, including across scratch reuse.
    #[test]
    fn arena_full_analysis_matches_the_allocating_path(profile in profile_strategy()) {
        let lib = Library::svt90();
        let netlist = mapped(&profile, &lib);
        let binding = CellBinding::nominal(&netlist, &lib).unwrap();
        let opts = options();

        let reference = analyze_full(&netlist, &binding, &opts).unwrap();

        let topo = SharedTopology::build(&netlist, &binding).unwrap();
        let mut scratch = ScratchArena::new();
        for _ in 0..2 {
            let state = analyze_full_in(&netlist, &binding, &opts, &topo, &scratch).unwrap();
            prop_assert_eq!(&state, &reference);
            scratch.reset();
        }
    }

    /// A chain of incremental rebind edits stays bit-identical to a
    /// from-scratch analysis after every step, through both the plain and
    /// the arena-backed incremental entry points.
    #[test]
    fn incremental_updates_match_full_reruns(
        profile in profile_strategy(),
        edits in prop::collection::vec((0usize..1_000_000, 88.0f64..97.0), 1..4),
    ) {
        let lib = Library::svt90();
        let netlist = mapped(&profile, &lib);
        let mut binding = CellBinding::nominal(&netlist, &lib).unwrap();
        let opts = options();

        let mut state = analyze_full(&netlist, &binding, &opts).unwrap();
        let mut scratch = ScratchArena::new();
        for (pick, length) in edits {
            let idx = pick % netlist.instances().len();
            let cell = CellBinding::uniform_scaled_cell(
                &lib,
                &netlist.instances()[idx].cell,
                length,
            )
            .unwrap();
            binding.replace(&netlist, idx, cell).unwrap();

            let (plain, _) =
                analyze_incremental(&netlist, &binding, &opts, &state, &[idx]).unwrap();
            let (arena_state, _) =
                analyze_incremental_in(&netlist, &binding, &opts, &state, &[idx], &scratch)
                    .unwrap();
            scratch.reset();
            let full = analyze_full(&netlist, &binding, &opts).unwrap();

            prop_assert_eq!(&plain, &full);
            prop_assert_eq!(&arena_state, &full);
            state = arena_state;
        }
    }
}
