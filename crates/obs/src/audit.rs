//! Sign-off audit trail: structured provenance for every corner-trim
//! decision the variation-aware timing flow makes.
//!
//! The flow in `svt-core` fills an [`AuditTrail`] while it characterizes
//! corners: one [`InstanceAudit`] per placed instance (device class, mean
//! context gate length, arc label, and the eqns. 1–5 trim with
//! before/after gate-length corners), one [`PathAudit`] per timing
//! endpoint (traditional vs aware best-case/worst-case arrivals), plus the
//! six circuit-level corner delays. `svt-obs` only defines the containers
//! and the renderers so the report format is shared by every binary.
//!
//! Rendering is fully deterministic: floats print with Rust's shortest
//! round-trip `Display`, which is a pure function of the bits, and all
//! rows are emitted in the deterministic order the flow produced them.
//! Two runs with bit-identical timing therefore render byte-identical
//! reports — the property `crates/core/tests/differential.rs` pins across
//! the `SVT_THREADS`×`SVT_TRACE` matrix.

use std::fmt::Write as _;

/// One eqns. 1–5 corner-trim decision: traditional corners in, aware
/// corners out, with the residual and focus components that explain the
/// difference.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimRecord {
    /// Arc label driving the trim (`smile` | `frown` | `self-compensated`).
    pub arc_label: String,
    /// Drawn (nominal) gate length, nm.
    pub l_nominal_nm: f64,
    /// Traditional best-case gate length `L − ΔL`, nm (before trim).
    pub bc_before_nm: f64,
    /// Traditional worst-case gate length `L + ΔL`, nm (before trim).
    pub wc_before_nm: f64,
    /// Aware best-case gate length after eqns. 1–5, nm.
    pub bc_after_nm: f64,
    /// Aware worst-case gate length after eqns. 1–5, nm.
    pub wc_after_nm: f64,
    /// Residual variation `ΔL − Lvar_pitch` (eq. 1), nm.
    pub residual_nm: f64,
    /// Focus-driven trim `Lvar_focus` applied per the arc label
    /// (eqns. 2–5), nm; `0` when the label applies no focus credit to that
    /// side.
    pub focus_trim_nm: f64,
}

/// Provenance for one placed instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceAudit {
    /// Instance name in the netlist.
    pub instance: String,
    /// Library cell the instance binds to.
    pub cell: String,
    /// Device classification (`isolated` | `dense` | `self-compensated`).
    pub device_class: String,
    /// Mean gate length over the instance's placement context, nm.
    pub mean_context_l_nm: f64,
    /// The corner trim applied to this instance.
    pub trim: TrimRecord,
}

/// Traditional-vs-aware arrivals for one timing endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAudit {
    /// Endpoint (primary output) name.
    pub endpoint: String,
    /// Traditional best-case arrival, ns.
    pub trad_bc_ns: f64,
    /// Traditional worst-case arrival, ns.
    pub trad_wc_ns: f64,
    /// Variation-aware best-case arrival, ns.
    pub aware_bc_ns: f64,
    /// Variation-aware worst-case arrival, ns.
    pub aware_wc_ns: f64,
}

impl PathAudit {
    /// Traditional bc→wc spread at this endpoint, ns.
    #[must_use]
    pub fn spread_before_ns(&self) -> f64 {
        self.trad_wc_ns - self.trad_bc_ns
    }

    /// Variation-aware bc→wc spread at this endpoint, ns.
    #[must_use]
    pub fn spread_after_ns(&self) -> f64 {
        self.aware_wc_ns - self.aware_bc_ns
    }

    /// Spread reduction at this endpoint, ns.
    #[must_use]
    pub fn spread_delta_ns(&self) -> f64 {
        self.spread_before_ns() - self.spread_after_ns()
    }
}

/// A named circuit-level corner delay (e.g. `traditional-bc`,
/// `aware-smile-wc`).
#[derive(Debug, Clone, PartialEq)]
pub struct CornerDelay {
    /// Corner name.
    pub corner: String,
    /// Circuit delay (max endpoint arrival), ns.
    pub delay_ns: f64,
}

/// The complete audit trail for one sign-off run of one testcase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditTrail {
    /// Testcase / design name.
    pub testcase: String,
    /// Drawn gate length, nm.
    pub nominal_l_nm: f64,
    /// Arc-label policy used by the flow.
    pub policy: String,
    /// Circuit-level corner delays, flow order.
    pub corner_delays: Vec<CornerDelay>,
    /// Per-instance trim decisions, netlist order.
    pub instances: Vec<InstanceAudit>,
    /// Per-endpoint arrivals, report order.
    pub paths: Vec<PathAudit>,
}

impl AuditTrail {
    /// Circuit-level traditional spread `wc − bc` of the circuit delay,
    /// ns — the denominator of the paper's spread-reduction numbers.
    #[must_use]
    pub fn circuit_spread_before_ns(&self) -> f64 {
        self.corner_delay("traditional-wc") - self.corner_delay("traditional-bc")
    }

    /// Circuit-level variation-aware spread, ns.
    #[must_use]
    pub fn circuit_spread_after_ns(&self) -> f64 {
        self.corner_delay("aware-wc") - self.corner_delay("aware-bc")
    }

    /// Spread-reduction percentage `100·(1 − aware/traditional)` — the
    /// fig6/tab2 headline number.
    #[must_use]
    pub fn spread_reduction_pct(&self) -> f64 {
        let before = self.circuit_spread_before_ns();
        if before == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.circuit_spread_after_ns() / before)
    }

    /// The delay of the named corner, `0.0` when absent.
    #[must_use]
    pub fn corner_delay(&self, corner: &str) -> f64 {
        self.corner_delays
            .iter()
            .find(|c| c.corner == corner)
            .map_or(0.0, |c| c.delay_ns)
    }

    /// Renders the human-readable audit report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== svt sign-off audit: {} ==", self.testcase);
        let _ = writeln!(
            out,
            "nominal L = {} nm, arc-label policy = {}",
            self.l(self.nominal_l_nm),
            self.policy
        );
        out.push_str("corner delays (ns):\n");
        for c in &self.corner_delays {
            let _ = writeln!(out, "  {:<24} {}", c.corner, self.l(c.delay_ns));
        }
        let _ = writeln!(
            out,
            "circuit spread: traditional {} ns -> aware {} ns  (reduction {}%)",
            self.l(self.circuit_spread_before_ns()),
            self.l(self.circuit_spread_after_ns()),
            self.l(self.spread_reduction_pct())
        );
        out.push_str("instances:\n");
        for i in &self.instances {
            let t = &i.trim;
            let _ = writeln!(
                out,
                "  {:<12} cell={:<10} class={:<16} arc={:<16} meanL={} nm",
                i.instance,
                i.cell,
                i.device_class,
                t.arc_label,
                self.l(i.mean_context_l_nm)
            );
            let _ = writeln!(
                out,
                "    corners nm: bc {} -> {}, wc {} -> {}  (residual {}, focus trim {})",
                self.l(t.bc_before_nm),
                self.l(t.bc_after_nm),
                self.l(t.wc_before_nm),
                self.l(t.wc_after_nm),
                self.l(t.residual_nm),
                self.l(t.focus_trim_nm)
            );
        }
        out.push_str("paths:\n");
        for p in &self.paths {
            let _ = writeln!(
                out,
                "  {:<12} trad [{}, {}]  aware [{}, {}]  spread {} -> {}  (delta {})",
                p.endpoint,
                self.l(p.trad_bc_ns),
                self.l(p.trad_wc_ns),
                self.l(p.aware_bc_ns),
                self.l(p.aware_wc_ns),
                self.l(p.spread_before_ns()),
                self.l(p.spread_after_ns()),
                self.l(p.spread_delta_ns())
            );
        }
        out
    }

    /// Renders the audit as a self-contained JSON document.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"testcase\": \"{}\",", escape(&self.testcase));
        let _ = writeln!(out, "  \"nominal_l_nm\": {},", self.l(self.nominal_l_nm));
        let _ = writeln!(out, "  \"policy\": \"{}\",", escape(&self.policy));
        out.push_str("  \"corner_delays\": {");
        for (i, c) in self.corner_delays.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {}",
                escape(&c.corner),
                self.l(c.delay_ns)
            );
        }
        out.push_str("\n  },\n");
        let _ = writeln!(
            out,
            "  \"circuit_spread_before_ns\": {},",
            self.l(self.circuit_spread_before_ns())
        );
        let _ = writeln!(
            out,
            "  \"circuit_spread_after_ns\": {},",
            self.l(self.circuit_spread_after_ns())
        );
        let _ = writeln!(
            out,
            "  \"spread_reduction_pct\": {},",
            self.l(self.spread_reduction_pct())
        );
        out.push_str("  \"instances\": [");
        for (i, inst) in self.instances.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let t = &inst.trim;
            let _ = write!(
                out,
                "{sep}\n    {{ \"instance\": \"{}\", \"cell\": \"{}\", \"device_class\": \"{}\", \
                 \"arc_label\": \"{}\", \"mean_context_l_nm\": {}, \
                 \"bc_before_nm\": {}, \"bc_after_nm\": {}, \
                 \"wc_before_nm\": {}, \"wc_after_nm\": {}, \
                 \"residual_nm\": {}, \"focus_trim_nm\": {} }}",
                escape(&inst.instance),
                escape(&inst.cell),
                escape(&inst.device_class),
                escape(&t.arc_label),
                self.l(inst.mean_context_l_nm),
                self.l(t.bc_before_nm),
                self.l(t.bc_after_nm),
                self.l(t.wc_before_nm),
                self.l(t.wc_after_nm),
                self.l(t.residual_nm),
                self.l(t.focus_trim_nm)
            );
        }
        out.push_str("\n  ],\n  \"paths\": [");
        for (i, p) in self.paths.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{ \"endpoint\": \"{}\", \"trad_bc_ns\": {}, \"trad_wc_ns\": {}, \
                 \"aware_bc_ns\": {}, \"aware_wc_ns\": {}, \
                 \"spread_before_ns\": {}, \"spread_after_ns\": {}, \"spread_delta_ns\": {} }}",
                escape(&p.endpoint),
                self.l(p.trad_bc_ns),
                self.l(p.trad_wc_ns),
                self.l(p.aware_bc_ns),
                self.l(p.aware_wc_ns),
                self.l(p.spread_before_ns()),
                self.l(p.spread_after_ns()),
                self.l(p.spread_delta_ns())
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Deterministic float rendering: Rust's shortest round-trip `Display`
    /// is a pure function of the bits, so byte-identical bits render
    /// byte-identical text.
    #[allow(clippy::unused_self)]
    fn l(&self, v: f64) -> String {
        fmt_f64(v)
    }

    /// Diffs this (post-edit) audit against a pre-edit `baseline` and
    /// returns only what changed: the full corner-delay block (the
    /// headline numbers, always small) plus the per-instance and
    /// per-endpoint rows whose values differ.
    ///
    /// Rows are compared **bit-exactly** (`f64::to_bits`), not with float
    /// equality: `-0.0 == 0.0` under `PartialEq` but the two render
    /// differently, and a delta that misses such a row would no longer
    /// splice back into a byte-identical report.
    ///
    /// Both audits must describe the same design: ECO edits never change
    /// connectivity, so row counts and row order are invariant. Rows
    /// beyond the shorter of the two lists are ignored (and debug builds
    /// assert the lengths match).
    #[must_use]
    pub fn delta_from(&self, baseline: &AuditTrail, edits: Vec<String>) -> DeltaAudit {
        debug_assert_eq!(baseline.instances.len(), self.instances.len());
        debug_assert_eq!(baseline.paths.len(), self.paths.len());
        let changed_instances: Vec<(usize, InstanceAudit)> = self
            .instances
            .iter()
            .zip(&baseline.instances)
            .enumerate()
            .filter(|(_, (new, old))| !instance_rows_bit_equal(new, old))
            .map(|(i, (new, _))| (i, new.clone()))
            .collect();
        let changed_paths: Vec<(usize, PathAudit)> = self
            .paths
            .iter()
            .zip(&baseline.paths)
            .enumerate()
            .filter(|(_, (new, old))| !path_rows_bit_equal(new, old))
            .map(|(i, (new, _))| (i, new.clone()))
            .collect();
        if crate::enabled() {
            crate::counter!("audit.delta.changed_instances").add(changed_instances.len() as u64);
            crate::counter!("audit.delta.changed_paths").add(changed_paths.len() as u64);
        }
        DeltaAudit {
            testcase: self.testcase.clone(),
            baseline_instances: baseline.instances.len(),
            baseline_paths: baseline.paths.len(),
            edits,
            corner_delays: self.corner_delays.clone(),
            changed_instances,
            changed_paths,
        }
    }
}

/// Deterministic float rendering shared by the audit renderers.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

impl InstanceAudit {
    /// Bit-exact row equality (`f64::to_bits`, not float `==`): the
    /// predicate [`AuditTrail::delta_from`] diffs with, public so an
    /// incremental audit assembly can build the same delta directly.
    #[must_use]
    pub fn bit_eq(&self, other: &InstanceAudit) -> bool {
        instance_rows_bit_equal(self, other)
    }
}

impl PathAudit {
    /// Bit-exact row equality (`f64::to_bits`, not float `==`); see
    /// [`InstanceAudit::bit_eq`].
    #[must_use]
    pub fn bit_eq(&self, other: &PathAudit) -> bool {
        path_rows_bit_equal(self, other)
    }
}

/// Bit-exact equality of two instance rows (see [`AuditTrail::delta_from`]).
fn instance_rows_bit_equal(a: &InstanceAudit, b: &InstanceAudit) -> bool {
    let ta = &a.trim;
    let tb = &b.trim;
    a.instance == b.instance
        && a.cell == b.cell
        && a.device_class == b.device_class
        && a.mean_context_l_nm.to_bits() == b.mean_context_l_nm.to_bits()
        && ta.arc_label == tb.arc_label
        && ta.l_nominal_nm.to_bits() == tb.l_nominal_nm.to_bits()
        && ta.bc_before_nm.to_bits() == tb.bc_before_nm.to_bits()
        && ta.wc_before_nm.to_bits() == tb.wc_before_nm.to_bits()
        && ta.bc_after_nm.to_bits() == tb.bc_after_nm.to_bits()
        && ta.wc_after_nm.to_bits() == tb.wc_after_nm.to_bits()
        && ta.residual_nm.to_bits() == tb.residual_nm.to_bits()
        && ta.focus_trim_nm.to_bits() == tb.focus_trim_nm.to_bits()
}

/// Bit-exact equality of two endpoint rows (see [`AuditTrail::delta_from`]).
fn path_rows_bit_equal(a: &PathAudit, b: &PathAudit) -> bool {
    a.endpoint == b.endpoint
        && a.trad_bc_ns.to_bits() == b.trad_bc_ns.to_bits()
        && a.trad_wc_ns.to_bits() == b.trad_wc_ns.to_bits()
        && a.aware_bc_ns.to_bits() == b.aware_bc_ns.to_bits()
        && a.aware_wc_ns.to_bits() == b.aware_wc_ns.to_bits()
}

/// The part of an audit trail an ECO edit sequence actually changed:
/// produced by [`AuditTrail::delta_from`], rendered by
/// [`DeltaAudit::render_text`], and spliced back into a full audit by
/// [`DeltaAudit::splice_into`].
///
/// The splice is *bit-exact*: `new.delta_from(&old, ..).splice_into(&old)`
/// equals `new` field-for-field, so the delta is a lossless compressed
/// representation of the post-edit audit relative to its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaAudit {
    /// Testcase name (matches both audits).
    pub testcase: String,
    /// Instance-row count of the baseline audit, for the `k of n` header.
    pub baseline_instances: usize,
    /// Endpoint-row count of the baseline audit.
    pub baseline_paths: usize,
    /// Human-readable descriptions of the edits that produced the delta,
    /// in application order.
    pub edits: Vec<String>,
    /// The complete post-edit corner-delay block.
    pub corner_delays: Vec<CornerDelay>,
    /// Changed per-instance rows as `(index into the full audit, new row)`,
    /// ascending by index.
    pub changed_instances: Vec<(usize, InstanceAudit)>,
    /// Changed per-endpoint rows as `(index into the full audit, new row)`,
    /// ascending by index.
    pub changed_paths: Vec<(usize, PathAudit)>,
}

impl DeltaAudit {
    /// Whether the edit sequence left every audited value untouched.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.changed_instances.is_empty() && self.changed_paths.is_empty()
    }

    /// Reconstructs the full post-edit audit by splicing the changed rows
    /// over a clone of the baseline. Bit-exact inverse of
    /// [`AuditTrail::delta_from`] against the same baseline.
    #[must_use]
    pub fn splice_into(&self, baseline: &AuditTrail) -> AuditTrail {
        let mut out = baseline.clone();
        out.corner_delays = self.corner_delays.clone();
        for (idx, row) in &self.changed_instances {
            if let Some(slot) = out.instances.get_mut(*idx) {
                slot.clone_from(row);
            }
        }
        for (idx, row) in &self.changed_paths {
            if let Some(slot) = out.paths.get_mut(*idx) {
                slot.clone_from(row);
            }
        }
        out
    }

    /// Renders the delta as a human-readable report, in the same style
    /// (and with the same deterministic float formatting) as
    /// [`AuditTrail::render_text`].
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== svt eco delta audit: {} ==", self.testcase);
        out.push_str("edits:\n");
        for (i, edit) in self.edits.iter().enumerate() {
            let _ = writeln!(out, "  {}. {edit}", i + 1);
        }
        out.push_str("corner delays (ns):\n");
        for c in &self.corner_delays {
            let _ = writeln!(out, "  {:<24} {}", c.corner, fmt_f64(c.delay_ns));
        }
        let _ = writeln!(
            out,
            "changed instances: {} of {}",
            self.changed_instances.len(),
            self.baseline_instances
        );
        for (idx, i) in &self.changed_instances {
            let t = &i.trim;
            let _ = writeln!(
                out,
                "  [{idx}] {:<12} cell={:<10} class={:<16} arc={:<16} meanL={} nm",
                i.instance,
                i.cell,
                i.device_class,
                t.arc_label,
                fmt_f64(i.mean_context_l_nm)
            );
            let _ = writeln!(
                out,
                "    corners nm: bc {} -> {}, wc {} -> {}  (residual {}, focus trim {})",
                fmt_f64(t.bc_before_nm),
                fmt_f64(t.bc_after_nm),
                fmt_f64(t.wc_before_nm),
                fmt_f64(t.wc_after_nm),
                fmt_f64(t.residual_nm),
                fmt_f64(t.focus_trim_nm)
            );
        }
        let _ = writeln!(
            out,
            "changed paths: {} of {}",
            self.changed_paths.len(),
            self.baseline_paths
        );
        for (idx, p) in &self.changed_paths {
            let _ = writeln!(
                out,
                "  [{idx}] {:<12} trad [{}, {}]  aware [{}, {}]  spread {} -> {}",
                p.endpoint,
                fmt_f64(p.trad_bc_ns),
                fmt_f64(p.trad_wc_ns),
                fmt_f64(p.aware_bc_ns),
                fmt_f64(p.aware_wc_ns),
                fmt_f64(p.spread_before_ns()),
                fmt_f64(p.spread_after_ns())
            );
        }
        out
    }
}

/// Both renderings of an audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRender {
    /// Human-readable report ([`AuditTrail::render_text`]).
    pub text: String,
    /// Machine-readable JSON document ([`AuditTrail::render_json`]).
    pub json: String,
}

/// Renders the sign-off audit report in both formats.
#[must_use]
pub fn render_audit(trail: &AuditTrail) -> AuditRender {
    AuditRender {
        text: trail.render_text(),
        json: trail.render_json(),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditTrail {
        AuditTrail {
            testcase: "c17".into(),
            nominal_l_nm: 130.0,
            policy: "per-arc".into(),
            corner_delays: vec![
                CornerDelay {
                    corner: "traditional-bc".into(),
                    delay_ns: 0.75,
                },
                CornerDelay {
                    corner: "traditional-wc".into(),
                    delay_ns: 1.25,
                },
                CornerDelay {
                    corner: "aware-bc".into(),
                    delay_ns: 0.875,
                },
                CornerDelay {
                    corner: "aware-wc".into(),
                    delay_ns: 1.125,
                },
            ],
            instances: vec![InstanceAudit {
                instance: "u1".into(),
                cell: "nand2".into(),
                device_class: "dense".into(),
                mean_context_l_nm: 130.5,
                trim: TrimRecord {
                    arc_label: "smile".into(),
                    l_nominal_nm: 130.0,
                    bc_before_nm: 110.5,
                    wc_before_nm: 149.5,
                    bc_after_nm: 122.2,
                    wc_after_nm: 143.65,
                    residual_nm: 13.65,
                    focus_trim_nm: 5.85,
                },
            }],
            paths: vec![PathAudit {
                endpoint: "po0".into(),
                trad_bc_ns: 0.75,
                trad_wc_ns: 1.25,
                aware_bc_ns: 0.875,
                aware_wc_ns: 1.125,
            }],
        }
    }

    #[test]
    fn spreads_and_reduction_are_exact() {
        let a = sample();
        let before = a.circuit_spread_before_ns();
        let after = a.circuit_spread_after_ns();
        assert_eq!(before.to_bits(), (1.25f64 - 0.75).to_bits());
        assert_eq!(after.to_bits(), (1.125f64 - 0.875).to_bits());
        let want = 100.0 * (1.0 - after / before);
        assert_eq!(a.spread_reduction_pct().to_bits(), want.to_bits());
        assert_eq!(
            a.paths[0].spread_delta_ns().to_bits(),
            (before - after).to_bits()
        );
    }

    #[test]
    fn text_report_names_every_decision() {
        let text = sample().render_text();
        for needle in [
            "svt sign-off audit: c17",
            "per-arc",
            "traditional-wc",
            "aware-bc",
            "class=dense",
            "arc=smile",
            "residual 13.65",
            "focus trim 5.85",
            "po0",
            "reduction 50%",
        ] {
            assert!(
                text.contains(needle),
                "audit text missing `{needle}`:\n{text}"
            );
        }
    }

    #[test]
    fn json_report_parses_back() {
        let json = sample().render_json();
        let stats = crate::chrome::validate_chrome_trace(&json);
        // Not a chrome trace — but it must still be *valid JSON*; reuse the
        // parser by expecting the structured "missing traceEvents" error,
        // not a parse failure.
        assert_eq!(stats.unwrap_err(), "missing `traceEvents` array");
        assert!(json.contains("\"device_class\": \"dense\""));
        assert!(json.contains("\"spread_reduction_pct\": 50"));
        assert!(json.contains("\"aware-wc\": 1.125"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = sample();
        assert_eq!(a.render_text(), a.render_text());
        assert_eq!(a.render_json(), a.render_json());
    }

    #[test]
    fn delta_captures_exactly_the_changed_rows() {
        let base = sample();
        let mut edited = base.clone();
        edited.instances[0].trim.wc_after_nm = 141.0;
        edited.paths[0].aware_wc_ns = 1.115;
        edited.corner_delays[3].delay_ns = 1.115;
        let delta = edited.delta_from(&base, vec!["swap u1 nand2 -> nand2b".into()]);
        assert!(!delta.is_noop());
        assert_eq!(delta.changed_instances.len(), 1);
        assert_eq!(delta.changed_instances[0].0, 0);
        assert_eq!(delta.changed_paths.len(), 1);
        let text = delta.render_text();
        assert!(text.contains("eco delta audit: c17"));
        assert!(text.contains("swap u1 nand2 -> nand2b"));
        assert!(text.contains("changed instances: 1 of 1"));
        // Unchanged audits produce an empty delta.
        assert!(base.clone().delta_from(&base, Vec::new()).is_noop());
    }

    #[test]
    fn delta_splices_back_bit_exactly() {
        let base = sample();
        let mut edited = base.clone();
        edited.instances[0].trim.bc_after_nm = 123.0;
        edited.paths[0].trad_wc_ns = 1.5;
        edited.corner_delays[1].delay_ns = 1.5;
        let delta = edited.delta_from(&base, vec!["resize".into()]);
        let spliced = delta.splice_into(&base);
        assert_eq!(spliced, edited);
        assert_eq!(spliced.render_text(), edited.render_text());
        assert_eq!(spliced.render_json(), edited.render_json());
    }

    #[test]
    fn delta_sees_sign_of_zero() {
        // -0.0 == 0.0 under PartialEq but renders differently; the delta
        // must treat it as a change or splicing breaks byte-identity.
        let base = sample();
        let mut edited = base.clone();
        edited.paths[0].trad_bc_ns = -0.0;
        let mut negbase = base.clone();
        negbase.paths[0].trad_bc_ns = 0.0;
        let delta = edited.delta_from(&negbase, Vec::new());
        assert_eq!(delta.changed_paths.len(), 1);
        assert_eq!(
            delta.splice_into(&negbase).render_text(),
            edited.render_text()
        );
    }
}
