//! Request-scoped context: a process-unique trace id plus the route and
//! design a request targets, carried in a thread-local cell.
//!
//! The aggregation layers ([`mod@crate::registry`], [`mod@crate::timeline`])
//! are process-global: they answer "how much" and "when", but not *which
//! request*. A [`RequestContext`] closes that gap. The connection handler
//! [`enter`]s a context when a request starts; everything recorded until
//! the guard drops — spans, timeline events, alloc attribution, the slow
//! request capsules in [`mod@crate::recorder`] — can be tagged with the
//! context's trace id.
//!
//! # Propagation rules
//!
//! * The context lives in a **thread-local cell**, not a global: two
//!   handler threads serve two requests with two independent contexts.
//! * Crossing a task boundary is **explicit**: `svt-exec`'s `ServicePool`
//!   snapshots the submitter's context at `try_submit` and re-enters it
//!   on the worker thread around the handler, so spawned work inherits
//!   the request identity of whoever enqueued it.
//! * Guards nest: entering a context while one is active shadows it, and
//!   dropping the guard restores the outer context (panic-safe — the
//!   guard restores on unwind too).
//!
//! # Cost contract
//!
//! Like the rest of `svt-obs`, the off path is free: code that never
//! enters a context pays nothing, and probes that *read* the context
//! ([`current_trace_id`]) are one thread-local load. Trace-id allocation
//! is one relaxed `fetch_add`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of one in-flight request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestContext {
    /// Process-unique monotonic id (1-based; 0 never appears).
    pub trace_id: u64,
    /// Route class, e.g. `/designs/{name}/eco` (the template, not the
    /// concrete path, so label cardinality stays bounded).
    pub route: String,
    /// Design the request targets, `-` when none.
    pub design: String,
}

/// Monotonic trace-id source. Starts at 1 so 0 can mean "no context" in
/// packed encodings.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<RequestContext>> = const { RefCell::new(None) };
}

/// Allocates the next process-unique trace id.
#[must_use]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// RAII guard from [`enter`]: restores the previously active context
/// (or none) when dropped, including on unwind.
#[must_use = "the context is active only while the guard lives"]
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<RequestContext>,
}

/// Makes `ctx` the active request context of this thread until the
/// returned guard drops. Nested enters shadow and restore.
pub fn enter(ctx: RequestContext) -> ContextGuard {
    let prev = CURRENT
        .try_with(|slot| slot.borrow_mut().replace(ctx))
        .ok()
        .flatten();
    ContextGuard { prev }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        let _ = CURRENT.try_with(|slot| *slot.borrow_mut() = prev);
    }
}

/// The active request context of this thread, if any.
#[must_use]
pub fn current() -> Option<RequestContext> {
    CURRENT
        .try_with(|slot| slot.borrow().clone())
        .ok()
        .flatten()
}

/// The active trace id of this thread, if any — the cheap probe for
/// tagging events without cloning the whole context.
#[must_use]
pub fn current_trace_id() -> Option<u64> {
    CURRENT
        .try_with(|slot| slot.borrow().as_ref().map(|c| c.trace_id))
        .ok()
        .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(id: u64) -> RequestContext {
        RequestContext {
            trace_id: id,
            route: "/eco".into(),
            design: "builtin".into(),
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a > 0 && b > a);
    }

    #[test]
    fn enter_shadows_and_restores() {
        assert!(current().is_none());
        {
            let _outer = enter(ctx(10));
            assert_eq!(current_trace_id(), Some(10));
            {
                let _inner = enter(ctx(20));
                assert_eq!(current_trace_id(), Some(20));
            }
            assert_eq!(current_trace_id(), Some(10), "inner guard restores");
        }
        assert!(current().is_none(), "outer guard restores to none");
    }

    #[test]
    fn guard_restores_on_unwind() {
        let _outer = enter(ctx(30));
        let caught = std::panic::catch_unwind(|| {
            let _inner = enter(ctx(40));
            panic!("boom");
        });
        assert!(caught.is_err());
        assert_eq!(current_trace_id(), Some(30), "unwind restores the outer");
    }

    #[test]
    fn contexts_are_thread_local() {
        let _here = enter(ctx(50));
        std::thread::spawn(|| {
            assert!(current().is_none(), "a fresh thread starts with no context");
        })
        .join()
        .unwrap();
        assert_eq!(current_trace_id(), Some(50));
    }
}
