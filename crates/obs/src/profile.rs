//! Always-on continuous profiler: collapsed span-stack aggregation with
//! a hand-rolled flame-graph renderer.
//!
//! Every [`crate::Span`] drop already knows its full `/`-joined stack
//! path and duration; when profiling is enabled, the drop additionally
//! folds `(path, wall_ns, alloc_bytes)` into a sharded aggregation map
//! here. The profile therefore stays consistent with the registry's
//! [`crate::SpanEntry`] aggregates by construction — the wall-ns folded
//! under a stack equals the `total_ns` of the same span path, which the
//! profiler differential test asserts exactly on a single-threaded run.
//!
//! # Cost contract
//!
//! Mirrors `SVT_TRACE`: disabled (the default), the only cost is **one
//! relaxed atomic load** inside an already-enabled span drop — and spans
//! themselves are inert when tracing is off, so batch runs pay nothing
//! at all. Enabled, each span drop takes one shard lock (the same order
//! of cost as the registry's own `span_stat` lookup on that path).
//! `SVT_PROFILE=1`/`on` arms it from the environment; `svtd` arms it
//! explicitly at boot.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Environment variable arming the profiler (`1`, `true`, or `on`).
pub const PROFILE_ENV: &str = "SVT_PROFILE";

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

#[cold]
fn init_from_env() -> u8 {
    let raw = std::env::var(PROFILE_ENV).unwrap_or_default();
    let raw = raw.trim();
    let code = if raw == "1" || raw.eq_ignore_ascii_case("on") || raw.eq_ignore_ascii_case("true") {
        STATE_ON
    } else {
        STATE_OFF
    };
    STATE.store(code, Ordering::Relaxed);
    code
}

/// Whether stack folding is active. One relaxed load after the first
/// call — this is the only cost a profiler-off span drop pays.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNSET => init_from_env() == STATE_ON,
        code => code == STATE_ON,
    }
}

/// Arms or disarms the profiler at runtime, overriding `SVT_PROFILE`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Aggregate of one collapsed stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Agg {
    count: u64,
    wall_ns: u64,
    alloc_bytes: u64,
}

const SHARDS: usize = 16;

fn shards() -> &'static [Mutex<HashMap<String, Agg>>; SHARDS] {
    static SHARDS_CELL: OnceLock<[Mutex<HashMap<String, Agg>>; SHARDS]> = OnceLock::new();
    SHARDS_CELL.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Folds one completed span into the profile under its `/`-joined stack
/// path. Called from [`crate::Span`]'s drop with the **same** duration
/// it records into the registry, so the two stay bit-consistent.
pub fn record(stack: &str, wall_ns: u64, alloc_bytes: u64) {
    let hash = BuildHasherDefault::<DefaultHasher>::default().hash_one(stack);
    let shard = &shards()[(hash >> 32) as usize & (SHARDS - 1)];
    let mut map = lock_recovering(shard);
    let agg = map.entry(stack.to_string()).or_default();
    agg.count += 1;
    agg.wall_ns += wall_ns;
    agg.alloc_bytes += alloc_bytes;
}

/// One collapsed stack in a profile snapshot. `wall_ns` is inclusive
/// (children's time is also inside their ancestors' stacks — exactly as
/// span aggregation works); the renderers derive self time as
/// `inclusive − Σ direct children`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackEntry {
    /// `/`-separated span stack, root first.
    pub stack: String,
    /// Completed spans folded under this exact stack.
    pub count: u64,
    /// Inclusive wall nanoseconds.
    pub wall_ns: u64,
    /// Inclusive heap bytes allocated while the stack was innermost-open
    /// (0 unless alloc telemetry was active).
    pub alloc_bytes: u64,
}

/// The profile so far, sorted by stack path.
#[must_use]
pub fn snapshot() -> Vec<StackEntry> {
    let mut entries: Vec<StackEntry> = Vec::new();
    for shard in shards() {
        for (stack, agg) in lock_recovering(shard).iter() {
            entries.push(StackEntry {
                stack: stack.clone(),
                count: agg.count,
                wall_ns: agg.wall_ns,
                alloc_bytes: agg.alloc_bytes,
            });
        }
    }
    entries.sort_by(|a, b| a.stack.cmp(&b.stack));
    entries
}

/// Discards every folded stack (benchmark sections, tests).
pub fn reset() {
    for shard in shards() {
        lock_recovering(shard).clear();
    }
}

/// Self wall-ns of `entry` within `entries`: inclusive time minus the
/// inclusive time of its direct children (clamped at zero — relaxed
/// counters can skew a few ns between parent and child).
#[must_use]
pub fn self_ns(entry: &StackEntry, entries: &[StackEntry]) -> u64 {
    let prefix = format!("{}/", entry.stack);
    let children: u64 = entries
        .iter()
        .filter(|e| e.stack.starts_with(&prefix) && !e.stack[prefix.len()..].contains('/'))
        .map(|e| e.wall_ns)
        .sum();
    entry.wall_ns.saturating_sub(children)
}

/// Renders the profile in Brendan-Gregg collapsed form — one
/// `seg;seg;seg self_wall_ns` line per stack, the format every flame
/// graph tool ingests. Stacks whose self time rounds to zero still
/// print (count carries information), sorted by path.
#[must_use]
pub fn render_collapsed(entries: &[StackEntry]) -> String {
    let mut out = String::with_capacity(entries.len() * 48);
    for entry in entries {
        out.push_str(&entry.stack.replace('/', ";"));
        out.push(' ');
        out.push_str(&self_ns(entry, entries).to_string());
        out.push('\n');
    }
    out
}

/// Renders the profile as a JSON array of stack objects.
#[must_use]
pub fn to_json(entries: &[StackEntry]) -> String {
    let mut out = String::from("{\"stacks\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"stack\":\"{}\",\"count\":{},\"wall_ns\":{},\"self_ns\":{},\"alloc_bytes\":{}}}",
            crate::json::escape_json(&e.stack),
            e.count,
            e.wall_ns,
            self_ns(e, entries),
            e.alloc_bytes
        ));
    }
    out.push_str("]}");
    out
}

/// A node of the flame tree built from collapsed stacks.
struct Node {
    name: String,
    /// Inclusive ns: the recorded value for this exact stack (when any)
    /// widened to at least the sum of its children.
    value: u64,
    count: u64,
    alloc_bytes: u64,
    children: Vec<Node>,
}

fn build_tree(entries: &[StackEntry]) -> Node {
    let mut root = Node {
        name: "all".to_string(),
        value: 0,
        count: 0,
        alloc_bytes: 0,
        children: Vec::new(),
    };
    for entry in entries {
        let mut node = &mut root;
        for seg in entry.stack.split('/') {
            let pos = node.children.iter().position(|c| c.name == seg);
            let idx = match pos {
                Some(idx) => idx,
                None => {
                    node.children.push(Node {
                        name: seg.to_string(),
                        value: 0,
                        count: 0,
                        alloc_bytes: 0,
                        children: Vec::new(),
                    });
                    node.children.len() - 1
                }
            };
            node = &mut node.children[idx];
        }
        node.value += entry.wall_ns;
        node.count += entry.count;
        node.alloc_bytes += entry.alloc_bytes;
    }
    fn widen(node: &mut Node) -> u64 {
        let child_sum: u64 = node.children.iter_mut().map(widen).sum();
        node.value = node.value.max(child_sum);
        node.value
    }
    widen(&mut root);
    root
}

/// Deterministic warm palette: the hue derives from the frame name, so
/// the same span is the same colour across captures.
fn frame_color(name: &str) -> String {
    let hash = BuildHasherDefault::<DefaultHasher>::default().hash_one(name);
    let r = 205 + hash % 50;
    let g = 80 + ((hash >> 8) % 110);
    let b = (hash >> 16) % 55;
    format!("rgb({r},{g},{b})")
}

const FRAME_H: f64 = 17.0;
const SVG_W: f64 = 1200.0;

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders the profile as a self-contained flame-graph SVG: nested
/// frames, width proportional to inclusive wall time, hover titles with
/// exact ns/count/alloc figures. No scripts, no external assets.
#[must_use]
pub fn render_flame_svg(entries: &[StackEntry]) -> String {
    let root = build_tree(entries);
    fn depth_of(node: &Node) -> usize {
        1 + node.children.iter().map(depth_of).max().unwrap_or(0)
    }
    let depth = depth_of(&root);
    #[allow(clippy::cast_precision_loss)]
    let height = (depth as f64) * FRAME_H + 40.0;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SVG_W}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#f8f8f8\"/>\n\
         <text x=\"8\" y=\"16\">svt continuous profile — {} stacks, {} ns total</text>\n",
        entries.len(),
        root.value
    );
    #[allow(clippy::cast_precision_loss)]
    fn emit(node: &Node, x: f64, y: f64, scale: f64, svg: &mut String) {
        let w = node.value as f64 * scale;
        if w < 0.4 {
            return;
        }
        let name = xml_escape(&node.name);
        svg.push_str(&format!(
            "<g><title>{name}: {} ns, {} calls, {} alloc bytes</title>\
             <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{:.1}\" \
             fill=\"{}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
            node.value,
            node.count,
            node.alloc_bytes,
            FRAME_H - 1.0,
            frame_color(&node.name)
        ));
        if w > 28.0 {
            let max_chars = ((w - 6.0) / 6.6) as usize;
            let label: String = node.name.chars().take(max_chars).collect();
            svg.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.2}\" fill=\"#111\">{}</text>",
                x + 3.0,
                y + FRAME_H - 5.0,
                xml_escape(&label)
            ));
        }
        svg.push_str("</g>\n");
        let mut cx = x;
        for child in &node.children {
            emit(child, cx, y + FRAME_H, scale, svg);
            cx += child.value as f64 * scale;
        }
    }
    if root.value > 0 {
        #[allow(clippy::cast_precision_loss)]
        let scale = (SVG_W - 16.0) / root.value as f64;
        emit(&root, 8.0, 28.0, scale, &mut svg);
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fold map is process-global; tests that reset it serialize.
    fn profile_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn folding_aggregates_by_stack() {
        let _guard = profile_lock();
        reset();
        record("a", 100, 10);
        record("a/b", 60, 4);
        record("a/b", 40, 2);
        record("a/c", 10, 0);
        let snap = snapshot();
        let ab = snap.iter().find(|e| e.stack == "a/b").unwrap();
        assert_eq!((ab.count, ab.wall_ns, ab.alloc_bytes), (2, 100, 6));
        let a = snap.iter().find(|e| e.stack == "a").unwrap();
        assert_eq!(self_ns(a, &snap), 0, "children consume all of a's time");
        let collapsed = render_collapsed(&snap);
        assert!(collapsed.contains("a;b 100"));
        assert!(collapsed.contains("a;c 10"));
        reset();
    }

    #[test]
    fn flame_svg_nests_frames_and_is_well_formed() {
        let _guard = profile_lock();
        reset();
        record("root", 1_000_000, 0);
        record("root/work", 800_000, 128);
        record("root/work/inner", 500_000, 64);
        let snap = snapshot();
        let svg = render_flame_svg(&snap);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains(">root:"), "hover title present");
        assert!(svg.contains("inner"), "deep frame rendered");
        assert_eq!(
            svg.matches("<rect").count() - 1, // minus the background
            4,                                // all + root + work + inner
            "one frame rect per tree node"
        );
        reset();
    }

    #[test]
    fn json_rendering_parses() {
        let _guard = profile_lock();
        reset();
        record("x/y", 42, 7);
        let json = to_json(&snapshot());
        let doc = crate::json::JsonValue::parse(&json).expect("profile JSON parses");
        let stacks = doc
            .get("stacks")
            .and_then(crate::json::JsonValue::as_array)
            .unwrap();
        assert_eq!(stacks.len(), 1);
        assert_eq!(
            stacks[0]
                .get("wall_ns")
                .and_then(crate::json::JsonValue::as_u64),
            Some(42)
        );
        reset();
    }

    #[test]
    fn enable_toggle_is_runtime() {
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
