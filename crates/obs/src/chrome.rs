//! Chrome `trace_event` JSON export of the recorded timelines, plus a
//! schema validator used by the tests and the CI artifact gate.
//!
//! The emitted document is the stable subset Perfetto and
//! `chrome://tracing` both load directly:
//!
//! ```json
//! { "displayTimeUnit": "ms",
//!   "traceEvents": [
//!     { "name": "thread_name", "ph": "M", "pid": 1, "tid": 3,
//!       "args": { "name": "svt-worker-3" } },
//!     { "name": "exec.pool.task", "ph": "B", "pid": 1, "tid": 3, "ts": 12.345 },
//!     { "name": "exec.pool.task", "ph": "E", "pid": 1, "tid": 3, "ts": 13.000 }
//!   ] }
//! ```
//!
//! The exporter *sanitizes* each thread's stream so the output always
//! satisfies the invariants the validator checks: ring wraparound can drop
//! a `B` whose `E` survives (the orphan `E` is skipped) or an `E` whose
//! `B` survives (the open `B` is closed at the thread's last timestamp).
//! Drop counts are reported as `svt.timeline.dropped` counter events so
//! truncation is visible in the trace itself, never silent.

use crate::json::JsonValue;
use crate::timeline::{Phase, ThreadTimeline};

/// Chrome `ts` values are microseconds; we emit nanosecond precision as a
/// three-decimal fraction.
fn fmt_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

fn escape(s: &str) -> String {
    crate::json::escape_json(s)
}

/// Renders thread timelines as a Chrome `trace_event` JSON document.
///
/// Every thread gets a `thread_name` metadata record; begin/end events are
/// balanced per tid (see the module docs) and instants use scope `t`.
#[must_use]
pub fn render_chrome_trace(timelines: &[ThreadTimeline]) -> String {
    render_trace(timelines, None)
}

/// Renders one request's timeline slice as a Chrome trace in which every
/// `B`/`E`/`i` event carries `args.trace_id` — the per-request export
/// served at `/debug/requests/{trace_id}/trace.json`.
#[must_use]
pub fn render_request_trace(timeline: &ThreadTimeline, trace_id: u64) -> String {
    render_trace(std::slice::from_ref(timeline), Some(trace_id))
}

fn render_trace(timelines: &[ThreadTimeline], trace_id: Option<u64>) -> String {
    // Tag appended to every non-metadata record when exporting a single
    // request's slice; empty for whole-process exports.
    let tag = trace_id.map_or(String::new(), |id| {
        format!(", \"args\": {{\"trace_id\": {id}}}")
    });
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, record: String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
        out.push_str(&record);
    };
    for tl in timelines {
        let tid = tl.tid;
        push(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"svt-worker-{tid}\"}}}}"
            ),
        );
        if tl.dropped > 0 {
            let ts = tl.events.first().map_or(0, |e| e.ts_ns);
            push(
                &mut out,
                format!(
                    "{{\"name\": \"svt.timeline.dropped\", \"ph\": \"C\", \"pid\": 1, \
                     \"tid\": {tid}, \"ts\": {}, \"args\": {{\"events\": {}}}}}",
                    fmt_us(ts),
                    tl.dropped
                ),
            );
        }
        // Balance pass: names of currently-open begins, innermost last.
        let mut open: Vec<(&'static str, u64)> = Vec::new();
        let mut last_ts = 0u64;
        for ev in &tl.events {
            last_ts = last_ts.max(ev.ts_ns);
            match ev.phase {
                Phase::Begin => {
                    open.push((ev.name, ev.ts_ns));
                    push(
                        &mut out,
                        format!(
                            "{{\"name\": \"{}\", \"ph\": \"B\", \"pid\": 1, \"tid\": {tid}, \
                             \"ts\": {}{tag}}}",
                            escape(ev.name),
                            fmt_us(ev.ts_ns)
                        ),
                    );
                }
                Phase::End => {
                    // An end whose begin was lost to wraparound has nothing
                    // to close; skip it to keep the stream balanced.
                    if open.pop().is_none() {
                        continue;
                    }
                    push(
                        &mut out,
                        format!(
                            "{{\"name\": \"{}\", \"ph\": \"E\", \"pid\": 1, \"tid\": {tid}, \
                             \"ts\": {}{tag}}}",
                            escape(ev.name),
                            fmt_us(ev.ts_ns)
                        ),
                    );
                }
                Phase::Instant => push(
                    &mut out,
                    format!(
                        "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \
                         \"tid\": {tid}, \"ts\": {}{tag}}}",
                        escape(ev.name),
                        fmt_us(ev.ts_ns)
                    ),
                ),
            }
        }
        // Close every begin still open (its end was lost, or the span was
        // live when the snapshot was taken) at the thread's last timestamp.
        while let Some((name, _)) = open.pop() {
            push(
                &mut out,
                format!(
                    "{{\"name\": \"{}\", \"ph\": \"E\", \"pid\": 1, \"tid\": {tid}, \
                     \"ts\": {}{tag}}}",
                    escape(name),
                    fmt_us(last_ts)
                ),
            );
        }
    }
    out.push_str("\n]\n}\n");
    out
}

/// One parsed `traceEvents` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Phase string (`B`, `E`, `i`, `M`, `C`, ...).
    pub ph: String,
    /// Thread id.
    pub tid: u64,
    /// Timestamp in microseconds (absent on metadata records).
    pub ts_us: Option<f64>,
    /// `args.trace_id`, present on every event of a per-request export
    /// ([`render_request_trace`]).
    pub trace_id: Option<u64>,
}

/// Schema facts extracted by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTraceStats {
    /// Every parsed event, document order.
    pub events: Vec<ChromeEvent>,
    /// Distinct tids carrying at least one non-metadata event.
    pub tids: Vec<u64>,
}

impl ChromeTraceStats {
    /// Distinct tids carrying at least one event with this exact name.
    #[must_use]
    pub fn tids_with_event(&self, name: &str) -> usize {
        let mut tids: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.name == name && e.ph != "M")
            .map(|e| e.tid)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    }
}

/// Parses and validates a Chrome `trace_event` JSON document.
///
/// Checks, per tid: begin/end events are balanced (every `E` closes the
/// most recent open `B` of the same name, nothing left open), and
/// timestamps are monotonically non-decreasing in document order.
///
/// # Errors
///
/// Returns a description of the first structural or schema violation.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let doc = JsonValue::parse(json)?;
    if doc.as_object().is_none() {
        return Err("top level is not an object".into());
    }
    let Some(raw_events) = doc.get("traceEvents").and_then(JsonValue::as_array) else {
        return Err("missing `traceEvents` array".into());
    };

    let mut events = Vec::with_capacity(raw_events.len());
    for (i, ev) in raw_events.iter().enumerate() {
        if ev.as_object().is_none() {
            return Err(format!("traceEvents[{i}] is not an object"));
        }
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] lacks a string `name`"))?
            .to_string();
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] lacks a string `ph`"))?
            .to_string();
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("traceEvents[{i}] lacks a numeric `tid`"))?;
        let ts_us = match ev.get("ts") {
            Some(JsonValue::Number(n)) => Some(*n),
            None => None,
            Some(_) => return Err(format!("traceEvents[{i}] has a non-numeric `ts`")),
        };
        if matches!(ph.as_str(), "B" | "E" | "i") && ts_us.is_none() {
            return Err(format!("traceEvents[{i}] ({ph}) lacks a `ts`"));
        }
        let trace_id = ev
            .get("args")
            .and_then(|args| args.get("trace_id"))
            .and_then(JsonValue::as_u64);
        events.push(ChromeEvent {
            name,
            ph,
            tid,
            ts_us,
            trace_id,
        });
    }

    // Per-tid invariants: balanced B/E (matching names), monotonic ts.
    let mut tids: Vec<u64> = Vec::new();
    for &tid in events
        .iter()
        .filter(|e| e.ph != "M")
        .map(|e| &e.tid)
        .collect::<Vec<_>>()
    {
        if !tids.contains(&tid) {
            tids.push(tid);
        }
    }
    tids.sort_unstable();
    for &tid in &tids {
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = f64::NEG_INFINITY;
        for ev in events.iter().filter(|e| e.tid == tid && e.ph != "M") {
            if let Some(ts) = ev.ts_us {
                if ts < last_ts {
                    return Err(format!(
                        "tid {tid}: timestamp {ts} decreases (after {last_ts})"
                    ));
                }
                last_ts = ts;
            }
            match ev.ph.as_str() {
                "B" => stack.push(&ev.name),
                "E" => match stack.pop() {
                    Some(open) if open == ev.name => {}
                    Some(open) => {
                        return Err(format!("tid {tid}: E `{}` closes open B `{open}`", ev.name))
                    }
                    None => return Err(format!("tid {tid}: E `{}` with no open B", ev.name)),
                },
                _ => {}
            }
        }
        if let Some(open) = stack.pop() {
            return Err(format!("tid {tid}: B `{open}` never closed"));
        }
    }

    Ok(ChromeTraceStats { events, tids })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Event;

    fn tl(tid: u32, events: Vec<Event>, dropped: u64) -> ThreadTimeline {
        ThreadTimeline {
            tid,
            events,
            dropped,
        }
    }

    fn ev(ts_ns: u64, name: &'static str, phase: Phase) -> Event {
        Event { ts_ns, name, phase }
    }

    #[test]
    fn render_and_validate_roundtrip() {
        let timelines = vec![
            tl(
                1,
                vec![
                    ev(1_000, "flow", Phase::Begin),
                    ev(2_000, "corner", Phase::Begin),
                    ev(2_500, "cache.miss", Phase::Instant),
                    ev(3_000, "corner", Phase::End),
                    ev(9_000, "flow", Phase::End),
                ],
                0,
            ),
            tl(
                2,
                vec![
                    ev(1_500, "exec.pool.task", Phase::Begin),
                    ev(1_900, "exec.pool.task", Phase::End),
                ],
                0,
            ),
        ];
        let json = render_chrome_trace(&timelines);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.tids, vec![1, 2]);
        assert_eq!(stats.tids_with_event("exec.pool.task"), 1);
        assert_eq!(stats.tids_with_event("corner"), 1);
        // ts is rendered in microseconds.
        let first_b = stats
            .events
            .iter()
            .find(|e| e.ph == "B" && e.name == "flow")
            .unwrap();
        assert!((first_b.ts_us.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn orphan_end_is_skipped_and_open_begin_is_closed() {
        // Wraparound artifacts: an E whose B was dropped, then a B whose E
        // was never recorded.
        let timelines = vec![tl(
            3,
            vec![
                ev(100, "lost", Phase::End),
                ev(200, "kept", Phase::Begin),
                ev(300, "inner", Phase::Begin),
                ev(400, "inner", Phase::End),
            ],
            5,
        )];
        let json = render_chrome_trace(&timelines);
        let stats = validate_chrome_trace(&json).expect("sanitized trace validates");
        let kept: Vec<&ChromeEvent> = stats.events.iter().filter(|e| e.name == "kept").collect();
        assert_eq!(kept.len(), 2, "open B must be closed: {kept:?}");
        assert!(!stats.events.iter().any(|e| e.name == "lost"));
        // The drop count surfaces as a counter event.
        assert!(stats
            .events
            .iter()
            .any(|e| e.name == "svt.timeline.dropped" && e.ph == "C"));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err(), "missing traceEvents");
        let unbalanced = r#"{"traceEvents": [
            {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 1.0}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never closed"));
        let backwards = r#"{"traceEvents": [
            {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 5.0},
            {"name": "x", "ph": "E", "pid": 1, "tid": 1, "ts": 1.0}
        ]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("decreases"));
        let mismatched = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 1.0},
            {"name": "b", "ph": "E", "pid": 1, "tid": 1, "ts": 2.0}
        ]}"#;
        assert!(validate_chrome_trace(mismatched)
            .unwrap_err()
            .contains("closes open"));
    }

    #[test]
    fn request_trace_tags_every_event_with_the_trace_id() {
        let timeline = tl(
            4,
            vec![
                ev(1_000, "serve.request", Phase::Begin),
                ev(1_200, "sta.levelize", Phase::Begin),
                ev(1_300, "cache.miss", Phase::Instant),
                ev(1_900, "sta.levelize", Phase::End),
                // `serve.request` left open: the sanitizer closes it, and
                // the synthesized E must carry the trace id too.
            ],
            0,
        );
        let json = render_request_trace(&timeline, 77);
        let stats = validate_chrome_trace(&json).expect("request trace validates");
        let tagged: Vec<&ChromeEvent> = stats
            .events
            .iter()
            .filter(|e| matches!(e.ph.as_str(), "B" | "E" | "i"))
            .collect();
        assert!(!tagged.is_empty());
        assert!(
            tagged.iter().all(|e| e.trace_id == Some(77)),
            "every span event must carry the request's trace id: {tagged:?}"
        );
        // Whole-process exports stay untagged.
        let untagged = render_chrome_trace(std::slice::from_ref(&timeline));
        let stats = validate_chrome_trace(&untagged).expect("plain trace validates");
        assert!(stats.events.iter().all(|e| e.trace_id.is_none()));
    }

    #[test]
    fn names_are_escaped() {
        let timelines = vec![tl(1, vec![ev(1, "we\"ird\\name", Phase::Instant)], 0)];
        let json = render_chrome_trace(&timelines);
        let stats = validate_chrome_trace(&json).expect("escaped trace validates");
        assert!(stats.events.iter().any(|e| e.name == "we\"ird\\name"));
    }
}
