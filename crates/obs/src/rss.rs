//! Process resident-set telemetry from `/proc/self/status`.
//!
//! Linux-only by nature; on other platforms (or sandboxes hiding
//! `/proc`) every reader returns `None` and the published gauges stay
//! absent rather than lying with zeros.

/// Resident-set sizes in kilobytes, as the kernel reports them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssSample {
    /// `VmRSS`: current resident set.
    pub current_kb: u64,
    /// `VmHWM`: peak resident set (high-water mark) since process start.
    pub peak_kb: u64,
}

/// Reads the current and peak RSS from `/proc/self/status`.
#[must_use]
pub fn sample() -> Option<RssSample> {
    parse_status(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Parses the `VmRSS`/`VmHWM` lines of a `/proc/<pid>/status` document.
fn parse_status(status: &str) -> Option<RssSample> {
    let field = |key: &str| {
        status.lines().find_map(|line| {
            let rest = line.strip_prefix(key)?.strip_prefix(':')?;
            // "	  123456 kB" — the unit is always kB for these fields.
            rest.split_whitespace().next()?.parse::<u64>().ok()
        })
    };
    Some(RssSample {
        current_kb: field("VmRSS")?,
        peak_kb: field("VmHWM")?,
    })
}

/// Publishes `proc.rss_kb` and `proc.rss_peak_kb` gauges into the global
/// registry, if the platform exposes them. Returns the sample read.
pub fn publish_gauges() -> Option<RssSample> {
    let s = sample()?;
    let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    crate::registry()
        .gauge("proc.rss_kb")
        .set(clamp(s.current_kb));
    crate::registry()
        .gauge("proc.rss_peak_kb")
        .set(clamp(s.peak_kb));
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kernel_status_fields() {
        let doc = "Name:\tsvtd\nVmPeak:\t  999999 kB\nVmSize:\t  888888 kB\nVmHWM:\t   54321 kB\nVmRSS:\t   12345 kB\nThreads:\t4\n";
        assert_eq!(
            parse_status(doc),
            Some(RssSample {
                current_kb: 12345,
                peak_kb: 54321
            })
        );
        assert_eq!(parse_status("Name:\tsvtd\n"), None, "missing fields");
        assert_eq!(parse_status("VmRSS:\tgarbage kB\n"), None);
    }

    #[test]
    fn live_sample_is_plausible_on_linux() {
        if let Some(s) = sample() {
            assert!(s.current_kb > 0, "a running process has resident pages");
            assert!(s.peak_kb >= s.current_kb, "peak is a high-water mark");
        }
    }
}
