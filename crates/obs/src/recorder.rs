//! The black-box flight recorder: a bounded in-memory ring of "slow
//! request capsules" plus a post-mortem dump path.
//!
//! A capsule is the complete local evidence for one slow request: its
//! [`crate::context::RequestContext`] identity, latency, queue wait,
//! alloc delta, and the slice of the handler thread's timeline ring
//! covering the request window. The serving layer captures a capsule
//! when a request exceeds its `--slow-ms` threshold; capsules are served
//! back as JSON at `GET /debug/requests` and as a per-request Chrome
//! trace (every event tagged with the trace id) at
//! `GET /debug/requests/{trace_id}/trace.json`.
//!
//! # Ownership and bounds
//!
//! The ring is process-global and holds at most [`CAPSULE_CAPACITY`]
//! capsules, newest-wins: recording the N+1th evicts the oldest. Each
//! capsule owns its event slice (copied out of the per-thread ring at
//! capture time), so later ring wraparound cannot corrupt it. Capturing
//! takes one short mutex on the slow path only — fast requests never
//! touch the recorder.
//!
//! # Post-mortem dumps
//!
//! When a dump path is configured ([`set_post_mortem_path`]; `svtd` does
//! this at startup), [`post_mortem`] writes every retained capsule plus
//! a full metrics snapshot to that path as one JSON document. The
//! triggers are: a watchdog stall, a panicking pool handler, and daemon
//! drain. Without a configured path the call is a no-op, so embedded
//! uses (tests, benches) never scribble files into the working
//! directory.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::json::escape_json;
use crate::timeline::{Phase, ThreadTimeline};

/// Maximum retained capsules; the ring evicts oldest-first beyond this.
pub const CAPSULE_CAPACITY: usize = 64;

/// The complete recorded evidence for one slow request.
#[derive(Debug, Clone)]
pub struct RequestCapsule {
    /// The request's process-unique trace id.
    pub trace_id: u64,
    /// HTTP method.
    pub method: String,
    /// Concrete request path.
    pub path: String,
    /// Route class (the template, e.g. `/designs/{name}/eco`).
    pub route: String,
    /// Design the request targeted, `-` when none.
    pub design: String,
    /// Response status code.
    pub status: u16,
    /// Wall time spent serving the request.
    pub latency_ns: u64,
    /// Time the request's pool task spent queued before a worker picked
    /// it up (0 when no pool task was involved).
    pub queue_wait_ns: u64,
    /// Allocations made process-wide during the request window (requires
    /// the `alloc-telemetry` allocator; 0 otherwise). Process-global, so
    /// concurrent requests inflate each other's deltas.
    pub alloc_count: u64,
    /// Bytes allocated process-wide during the request window.
    pub alloc_bytes: u64,
    /// Request start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Request end, nanoseconds since the trace epoch.
    pub end_ns: u64,
    /// The handler thread's timeline events inside the request window
    /// (empty outside Chrome trace mode).
    pub timeline: ThreadTimeline,
}

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ring() -> &'static Mutex<VecDeque<RequestCapsule>> {
    static RING: OnceLock<Mutex<VecDeque<RequestCapsule>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn post_mortem_slot() -> &'static Mutex<Option<String>> {
    static PATH: Mutex<Option<String>> = Mutex::new(None);
    &PATH
}

/// Restricts a thread timeline to the events inside `[start_ns, end_ns]`
/// — the capture step slicing one request's window out of the handler
/// thread's ring. The slice owns its events; `dropped` is reset to zero
/// because ring-wide drop counts are not attributable to one request.
#[must_use]
pub fn slice_window(tl: &ThreadTimeline, start_ns: u64, end_ns: u64) -> ThreadTimeline {
    ThreadTimeline {
        tid: tl.tid,
        events: tl
            .events
            .iter()
            .filter(|e| e.ts_ns >= start_ns && e.ts_ns <= end_ns)
            .copied()
            .collect(),
        dropped: 0,
    }
}

/// Records one capsule, evicting the oldest past [`CAPSULE_CAPACITY`].
pub fn record(capsule: RequestCapsule) {
    let mut ring = lock_recovering(ring());
    if ring.len() >= CAPSULE_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(capsule);
    crate::counter!("obs.recorder.capsules").incr();
}

/// Every retained capsule, oldest first.
#[must_use]
pub fn capsules() -> Vec<RequestCapsule> {
    lock_recovering(ring()).iter().cloned().collect()
}

/// The retained capsule with this trace id, if any.
#[must_use]
pub fn find(trace_id: u64) -> Option<RequestCapsule> {
    lock_recovering(ring())
        .iter()
        .find(|c| c.trace_id == trace_id)
        .cloned()
}

/// Number of retained capsules.
#[must_use]
pub fn len() -> usize {
    lock_recovering(ring()).len()
}

/// Whether the ring is empty.
#[must_use]
pub fn is_empty() -> bool {
    len() == 0
}

/// Forgets every retained capsule (tests and benchmark phases).
pub fn clear() {
    lock_recovering(ring()).clear();
}

fn phase_str(phase: Phase) -> &'static str {
    match phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    }
}

fn capsule_fields(c: &RequestCapsule) -> String {
    format!(
        "\"trace_id\": {}, \"method\": \"{}\", \"path\": \"{}\", \"route\": \"{}\", \
         \"design\": \"{}\", \"status\": {}, \"latency_ns\": {}, \"queue_wait_ns\": {}, \
         \"alloc_count\": {}, \"alloc_bytes\": {}, \"start_ns\": {}, \"end_ns\": {}, \
         \"events\": {}",
        c.trace_id,
        escape_json(&c.method),
        escape_json(&c.path),
        escape_json(&c.route),
        escape_json(&c.design),
        c.status,
        c.latency_ns,
        c.queue_wait_ns,
        c.alloc_count,
        c.alloc_bytes,
        c.start_ns,
        c.end_ns,
        c.timeline.events.len()
    )
}

/// Renders one capsule as a self-contained JSON object, timeline events
/// included.
#[must_use]
pub fn render_capsule(c: &RequestCapsule) -> String {
    let events: Vec<String> = c
        .timeline
        .events
        .iter()
        .map(|e| {
            format!(
                "{{ \"ts_ns\": {}, \"name\": \"{}\", \"ph\": \"{}\" }}",
                e.ts_ns,
                escape_json(e.name),
                phase_str(e.phase)
            )
        })
        .collect();
    format!(
        "{{ {}, \"tid\": {}, \"timeline\": [{}] }}\n",
        capsule_fields(c),
        c.timeline.tid,
        events.join(", ")
    )
}

/// Renders the capsule index (summaries without per-event detail) served
/// at `GET /debug/requests`.
#[must_use]
pub fn render_index(caps: &[RequestCapsule]) -> String {
    let rows: Vec<String> = caps
        .iter()
        .map(|c| format!("{{ {} }}", capsule_fields(c)))
        .collect();
    format!(
        "{{ \"count\": {}, \"capacity\": {CAPSULE_CAPACITY}, \"capsules\": [{}] }}\n",
        caps.len(),
        rows.join(", ")
    )
}

/// Renders one capsule's timeline slice as a per-request Chrome trace;
/// every span event carries the capsule's trace id.
#[must_use]
pub fn chrome_trace(c: &RequestCapsule) -> String {
    crate::chrome::render_request_trace(&c.timeline, c.trace_id)
}

/// Configures where [`post_mortem`] writes its dump. `svtd` calls this
/// at startup; until it is called, dumps are disabled.
pub fn set_post_mortem_path(path: &str) {
    *lock_recovering(post_mortem_slot()) = Some(path.to_string());
}

/// The configured dump path, if any.
#[must_use]
pub fn post_mortem_path() -> Option<String> {
    lock_recovering(post_mortem_slot()).clone()
}

/// Dumps every retained capsule plus a full metrics snapshot to the
/// configured post-mortem path, recording `reason` (e.g.
/// `"watchdog_stall"`, `"handler_panic"`, `"drain"`) in the document.
/// Returns the path written, `None` when no path is configured or the
/// write fails (logged to stderr — a dying process must not die harder
/// because its black box is unwritable).
pub fn post_mortem(reason: &str) -> Option<String> {
    let path = post_mortem_path()?;
    let caps = capsules();
    let rows: Vec<String> = caps.iter().map(render_capsule).collect();
    let doc = format!(
        "{{ \"reason\": \"{}\", \"ts_ns\": {}, \"capsule_count\": {}, \"capsules\": [{}], \
         \"metrics\": {} }}\n",
        escape_json(reason),
        crate::timeline::now_ns(),
        caps.len(),
        rows.join(", "),
        crate::registry().snapshot().to_json()
    );
    match std::fs::write(&path, &doc) {
        Ok(()) => {
            crate::counter!("obs.recorder.postmortems").incr();
            Some(path)
        }
        Err(e) => {
            eprintln!("svt-obs: cannot write post-mortem to `{path}`: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Event;

    fn capsule(trace_id: u64) -> RequestCapsule {
        RequestCapsule {
            trace_id,
            method: "POST".into(),
            path: "/designs/builtin/eco".into(),
            route: "/designs/{name}/eco".into(),
            design: "builtin".into(),
            status: 200,
            latency_ns: 7_000_000,
            queue_wait_ns: 40_000,
            alloc_count: 12,
            alloc_bytes: 4096,
            start_ns: 1_000,
            end_ns: 7_001_000,
            timeline: ThreadTimeline {
                tid: 3,
                events: vec![
                    Event {
                        ts_ns: 1_000,
                        name: "serve.request",
                        phase: Phase::Begin,
                    },
                    Event {
                        ts_ns: 7_000_000,
                        name: "serve.request",
                        phase: Phase::End,
                    },
                ],
                dropped: 0,
            },
        }
    }

    // The ring is process-global; tests touching it serialize here.
    fn ring_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn ring_records_finds_and_evicts() {
        let _guard = ring_lock();
        clear();
        for id in 0..CAPSULE_CAPACITY as u64 + 5 {
            record(capsule(id + 1));
        }
        assert_eq!(len(), CAPSULE_CAPACITY, "ring is bounded");
        assert!(find(1).is_none(), "oldest capsules evicted");
        assert_eq!(
            find(CAPSULE_CAPACITY as u64 + 5).map(|c| c.status),
            Some(200)
        );
        let all = capsules();
        assert_eq!(all.first().map(|c| c.trace_id), Some(6), "oldest first");
        clear();
        assert!(is_empty());
    }

    #[test]
    fn slice_window_keeps_only_the_request_events() {
        let tl = ThreadTimeline {
            tid: 1,
            events: vec![
                Event {
                    ts_ns: 10,
                    name: "before",
                    phase: Phase::Instant,
                },
                Event {
                    ts_ns: 100,
                    name: "inside",
                    phase: Phase::Instant,
                },
                Event {
                    ts_ns: 200,
                    name: "after",
                    phase: Phase::Instant,
                },
            ],
            dropped: 9,
        };
        let slice = slice_window(&tl, 50, 150);
        assert_eq!(slice.tid, 1);
        assert_eq!(slice.dropped, 0);
        assert_eq!(slice.events.len(), 1);
        assert_eq!(slice.events[0].name, "inside");
    }

    #[test]
    fn capsule_renders_json_and_chrome_trace() {
        let c = capsule(42);
        let json = render_capsule(&c);
        let doc = crate::json::JsonValue::parse(&json).expect("capsule JSON parses");
        assert_eq!(doc.get("trace_id").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(
            doc.get("route").and_then(|v| v.as_str()),
            Some("/designs/{name}/eco")
        );
        let index = render_index(std::slice::from_ref(&c));
        let doc = crate::json::JsonValue::parse(&index).expect("index JSON parses");
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(1));
        let trace = chrome_trace(&c);
        let stats = crate::chrome::validate_chrome_trace(&trace).expect("trace validates");
        assert!(stats
            .events
            .iter()
            .filter(|e| matches!(e.ph.as_str(), "B" | "E" | "i"))
            .all(|e| e.trace_id == Some(42)));
    }

    #[test]
    fn post_mortem_requires_a_configured_path() {
        let _guard = ring_lock();
        // Path slot is process-global too; run both halves under the lock.
        *lock_recovering(post_mortem_slot()) = None;
        assert!(post_mortem("test").is_none(), "no path, no dump");
        let path =
            std::env::temp_dir().join(format!("svt_postmortem_test_{}.json", std::process::id()));
        let path_str = path.to_string_lossy().to_string();
        set_post_mortem_path(&path_str);
        clear();
        record(capsule(7));
        let written = post_mortem("unit_test").expect("dump written");
        assert_eq!(written, path_str);
        let body = std::fs::read_to_string(&path).expect("dump readable");
        let doc = crate::json::JsonValue::parse(&body).expect("dump parses");
        assert_eq!(
            doc.get("reason").and_then(|v| v.as_str()),
            Some("unit_test")
        );
        assert_eq!(doc.get("capsule_count").and_then(|v| v.as_u64()), Some(1));
        assert!(doc.get("metrics").is_some(), "metrics snapshot embedded");
        let _ = std::fs::remove_file(&path);
        *lock_recovering(post_mortem_slot()) = None;
        clear();
    }
}
