//! Embedded fixed-memory time-series store for long-horizon telemetry.
//!
//! `svtd`'s `/metrics` endpoint answers "what is happening now"; this
//! module answers "what happened over the last hours" without any
//! external TSDB. A [`Sampler`] thread scrapes the live registry
//! [`crate::Snapshot`] every N ms and ingests each series into a small
//! set of **tiered rings**: a raw tier holding one [`Bin`] per sample,
//! plus downsample tiers (1 min, 10 min by default) whose bins merge
//! every sample landing in the same time bucket. Each bin carries
//! `count`/`sum`/`min`/`max`, and [`Bin::merge`] conserves counts, so a
//! coarse tier is an exact aggregate of the fine samples it absorbed —
//! never a lossy re-sampling.
//!
//! Memory is bounded by construction: every tier is a capped ring
//! (oldest point evicted first), so the store's worst case is
//! `series × Σ tier_cap × sizeof(point)` and is reported on `/healthz`.
//! Ingest and query take one mutex on the series map — both run on
//! sampler/scrape cadence, never on the request hot path.
//!
//! Tier geometry is configurable (`SVT_TSDB_TIERS=width_ms:cap,...`,
//! width 0 = raw) so tests and CI smoke runs can exercise multi-tier
//! behaviour in milliseconds instead of minutes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// One aggregated observation bucket. Merging two bins adds counts and
/// sums and widens the min/max envelope, so downsampling conserves the
/// sample count and never invents values outside the observed range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Samples aggregated into this bin.
    pub count: u64,
    /// Sum of the aggregated values.
    pub sum: f64,
    /// Smallest aggregated value.
    pub min: f64,
    /// Largest aggregated value.
    pub max: f64,
}

impl Bin {
    /// A bin holding the single value `v`.
    #[must_use]
    pub fn of(v: f64) -> Bin {
        Bin {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    /// Folds `other` into `self`: counts and sums add, the min/max
    /// envelope widens. Empty bins are identity elements.
    pub fn merge(&mut self, other: &Bin) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the aggregated values, or 0 when empty.
    #[must_use]
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let avg = self.sum / self.count as f64;
            avg
        }
    }
}

/// One retained point: the start of its time bucket plus the bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Bucket start, unix milliseconds (raw tier: the sample instant).
    pub ts_ms: u64,
    /// Aggregated observations of the bucket.
    pub bin: Bin,
}

/// Geometry of one ring: bucket width (0 = raw, one point per sample)
/// and point capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Bucket width in milliseconds; 0 keeps every sample as its own
    /// point.
    pub width_ms: u64,
    /// Ring capacity in points; the oldest point evicts first.
    pub cap: usize,
}

/// Ring geometry of the whole store, finest tier first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsdbConfig {
    /// Tier geometry, finest (raw) first.
    pub tiers: Vec<TierSpec>,
}

impl Default for TsdbConfig {
    /// Raw ring of 512 samples, a 1-minute tier covering 6 h, and a
    /// 10-minute tier covering 48 h.
    fn default() -> TsdbConfig {
        TsdbConfig {
            tiers: vec![
                TierSpec {
                    width_ms: 0,
                    cap: 512,
                },
                TierSpec {
                    width_ms: 60_000,
                    cap: 360,
                },
                TierSpec {
                    width_ms: 600_000,
                    cap: 288,
                },
            ],
        }
    }
}

impl TsdbConfig {
    /// Parses `SVT_TSDB_TIERS` (`width_ms:cap,width_ms:cap,...`,
    /// width 0 = raw), falling back to [`TsdbConfig::default`] when the
    /// variable is unset or malformed — a bad override must never take
    /// the daemon down.
    #[must_use]
    pub fn from_env() -> TsdbConfig {
        let Ok(raw) = std::env::var("SVT_TSDB_TIERS") else {
            return TsdbConfig::default();
        };
        let mut tiers = Vec::new();
        for part in raw.split(',') {
            let Some((w, c)) = part.trim().split_once(':') else {
                return TsdbConfig::default();
            };
            let (Ok(width_ms), Ok(cap)) = (w.trim().parse::<u64>(), c.trim().parse::<usize>())
            else {
                return TsdbConfig::default();
            };
            if cap == 0 {
                return TsdbConfig::default();
            }
            tiers.push(TierSpec { width_ms, cap });
        }
        if tiers.is_empty() {
            return TsdbConfig::default();
        }
        tiers.sort_by_key(|t| t.width_ms);
        TsdbConfig { tiers }
    }
}

/// One capped ring of [`Point`]s at a fixed bucket width.
#[derive(Debug)]
struct Tier {
    spec: TierSpec,
    points: VecDeque<Point>,
}

impl Tier {
    fn bucket_of(&self, ts_ms: u64) -> u64 {
        match ts_ms.checked_div(self.spec.width_ms) {
            // Raw tier (width 0): every sample keeps its own timestamp.
            None => ts_ms,
            Some(bucket) => bucket * self.spec.width_ms,
        }
    }

    fn ingest(&mut self, ts_ms: u64, bin: &Bin) {
        let bucket = self.bucket_of(ts_ms);
        if let Some(tail) = self.points.back_mut() {
            if tail.ts_ms == bucket {
                tail.bin.merge(bin);
                return;
            }
        }
        if self.points.len() >= self.spec.cap {
            self.points.pop_front();
        }
        self.points.push_back(Point {
            ts_ms: bucket,
            bin: *bin,
        });
    }
}

/// All tiers of one metric.
#[derive(Debug)]
struct Series {
    tiers: Vec<Tier>,
}

impl Series {
    fn new(config: &TsdbConfig) -> Series {
        Series {
            tiers: config
                .tiers
                .iter()
                .map(|spec| Tier {
                    spec: *spec,
                    points: VecDeque::new(),
                })
                .collect(),
        }
    }
}

/// Result of one [`Tsdb::query`]: the selected tier's points, aggregated
/// to the requested step, plus the per-tier occupancy of the series so
/// clients can see how deep each ring reaches.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Queried metric name.
    pub metric: String,
    /// Bucket width of the tier that answered (0 = raw).
    pub tier_width_ms: u64,
    /// Points within the range, oldest first, merged to the step width.
    pub points: Vec<Point>,
    /// Every tier of the series as `(width_ms, cap, resident points)`.
    pub tiers: Vec<(u64, usize, usize)>,
}

impl QueryResult {
    /// Renders the result as the `/query` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.points.len() * 96);
        out.push_str("{\"metric\":\"");
        out.push_str(&crate::json::escape_json(&self.metric));
        out.push_str(&format!(
            "\",\"tier_width_ms\":{},\"tiers\":[",
            self.tier_width_ms
        ));
        for (i, (width, cap, len)) in self.tiers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"width_ms\":{width},\"cap\":{cap},\"points\":{len}}}"
            ));
        }
        out.push_str("],\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ts_ms\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"avg\":{}}}",
                p.ts_ms,
                p.bin.count,
                fmt_json_f64(p.bin.sum),
                fmt_json_f64(p.bin.min),
                fmt_json_f64(p.bin.max),
                fmt_json_f64(p.bin.avg())
            ));
        }
        out.push_str("]}");
        out
    }
}

fn fmt_json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Resident footprint of the store, for `/healthz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsdbOccupancy {
    /// Distinct series names.
    pub series: usize,
    /// Worst-case bytes if every ring of every series fills.
    pub memory_bound_bytes: u64,
    /// Per-tier `(width_ms, capacity across series, resident points)`.
    pub tiers: Vec<(u64, usize, usize)>,
}

/// The embedded store: a map from series name to tiered rings.
pub struct Tsdb {
    config: TsdbConfig,
    series: Mutex<BTreeMap<String, Series>>,
}

impl Tsdb {
    /// An empty store with the given ring geometry.
    #[must_use]
    pub fn new(config: TsdbConfig) -> Tsdb {
        Tsdb {
            config,
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// The ring geometry.
    #[must_use]
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Series>> {
        self.series.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Ingests one scalar observation at `ts_ms` into every tier of
    /// `metric`.
    pub fn ingest(&self, metric: &str, ts_ms: u64, value: f64) {
        self.ingest_bin(metric, ts_ms, &Bin::of(value));
    }

    /// Ingests a pre-aggregated bin (e.g. a re-merge from another store)
    /// into every tier of `metric`.
    pub fn ingest_bin(&self, metric: &str, ts_ms: u64, bin: &Bin) {
        if bin.count == 0 {
            return;
        }
        let mut map = self.lock();
        let series = map
            .entry(metric.to_string())
            .or_insert_with(|| Series::new(&self.config));
        for tier in &mut series.tiers {
            tier.ingest(ts_ms, bin);
        }
    }

    /// Every series name currently resident, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Answers a range query: picks the **finest tier whose retained
    /// history covers the range start** (falling back to the deepest
    /// tier when none reaches that far), filters to `[now - range, now]`,
    /// and — when `step_ms` is coarser than the tier's bucket — merges
    /// neighbouring points into step-aligned bins (count-conserving).
    /// Returns `None` for an unknown metric.
    #[must_use]
    pub fn query(
        &self,
        metric: &str,
        range_ms: u64,
        step_ms: u64,
        now_ms: u64,
    ) -> Option<QueryResult> {
        let map = self.lock();
        let series = map.get(metric)?;
        let start = now_ms.saturating_sub(range_ms);
        let tiers: Vec<(u64, usize, usize)> = series
            .tiers
            .iter()
            .map(|t| (t.spec.width_ms, t.spec.cap, t.points.len()))
            .collect();
        let covering = series
            .tiers
            .iter()
            .find(|t| t.points.front().is_some_and(|p| p.ts_ms <= start));
        let deepest = series
            .tiers
            .iter()
            .filter(|t| !t.points.is_empty())
            .min_by_key(|t| t.points.front().map_or(u64::MAX, |p| p.ts_ms));
        let tier = covering.or(deepest)?;
        let mut points: Vec<Point> = Vec::new();
        for p in tier.points.iter().filter(|p| p.ts_ms >= start) {
            if step_ms > tier.spec.width_ms.max(1) {
                let bucket = p.ts_ms / step_ms * step_ms;
                if let Some(last) = points.last_mut() {
                    if last.ts_ms == bucket {
                        last.bin.merge(&p.bin);
                        continue;
                    }
                }
                points.push(Point {
                    ts_ms: bucket,
                    bin: p.bin,
                });
            } else {
                points.push(*p);
            }
        }
        Some(QueryResult {
            metric: metric.to_string(),
            tier_width_ms: tier.spec.width_ms,
            points,
            tiers,
        })
    }

    /// The store's memory bound and per-tier occupancy.
    #[must_use]
    pub fn occupancy(&self) -> TsdbOccupancy {
        let map = self.lock();
        let series = map.len();
        let point_bytes = std::mem::size_of::<Point>() as u64;
        let per_series: u64 = self.config.tiers.iter().map(|t| t.cap as u64).sum();
        let mut tiers: Vec<(u64, usize, usize)> = self
            .config
            .tiers
            .iter()
            .map(|t| (t.width_ms, t.cap * series, 0))
            .collect();
        for s in map.values() {
            for (slot, tier) in tiers.iter_mut().zip(&s.tiers) {
                slot.2 += tier.points.len();
            }
        }
        TsdbOccupancy {
            series,
            memory_bound_bytes: series as u64 * per_series * point_bytes,
            tiers,
        }
    }
}

/// The process-global store, configured from `SVT_TSDB_TIERS` on first
/// touch. `svtd`'s sampler writes here and `/query`, `/dashboard`, and
/// `/healthz` read it.
pub fn global() -> &'static Tsdb {
    static GLOBAL: OnceLock<Tsdb> = OnceLock::new();
    GLOBAL.get_or_init(|| Tsdb::new(TsdbConfig::from_env()))
}

/// Milliseconds since the unix epoch (wall clock — the query time axis).
#[must_use]
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// A callback run at the start of every sampler tick, before the
/// registry scrape — publish pull-style gauges (RSS, pool stats) here so
/// the scrape sees fresh values.
pub type SamplerHook = Box<dyn Fn() + Send>;

/// The background thread scraping the registry into a [`Tsdb`] every
/// interval. Owns no request-path state: a daemon without a sampler pays
/// nothing.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampler at `interval`, ingesting into `store`. Each
    /// tick runs every `hook`, scrapes [`crate::registry()`], and
    /// ingests:
    ///
    /// * every counter as its cumulative value plus a `<name>.rate`
    ///   series (per-second delta against the previous tick);
    /// * every gauge as its value;
    /// * every histogram as `<name>.rate` (sample arrivals per second)
    ///   plus `<name>.p50` / `<name>.p99` estimated from the bucket
    ///   deltas of the tick window.
    #[must_use]
    pub fn spawn(store: &'static Tsdb, interval: Duration, hooks: Vec<SamplerHook>) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("svt-sampler".into())
            .spawn(move || {
                let mut prev: Option<(u64, crate::Snapshot)> = None;
                while !thread_stop.load(Ordering::Relaxed) {
                    for hook in &hooks {
                        hook();
                    }
                    let now = unix_ms();
                    let snap = crate::registry().snapshot();
                    sample_once(store, now, &snap, prev.as_ref());
                    prev = Some((now, snap));
                    crate::counter!("tsdb.sampler.ticks").incr();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn svt-sampler");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One sampler tick against an explicit snapshot pair — factored out so
/// tests (and the smoke driver) can step the ingest deterministically
/// without a thread.
pub fn sample_once(
    store: &Tsdb,
    now_ms: u64,
    snap: &crate::Snapshot,
    prev: Option<&(u64, crate::Snapshot)>,
) {
    let dt_secs = prev.map(|(t, _)| {
        #[allow(clippy::cast_precision_loss)]
        let dt = now_ms.saturating_sub(*t) as f64 / 1e3;
        dt.max(1e-6)
    });
    #[allow(clippy::cast_precision_loss)]
    for (name, value) in &snap.counters {
        store.ingest(name, now_ms, *value as f64);
        if let (Some(dt), Some((_, p))) = (dt_secs, prev) {
            if let Ok(i) = p.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                let delta = value.saturating_sub(p.counters[i].1);
                store.ingest(&format!("{name}.rate"), now_ms, delta as f64 / dt);
            }
        }
    }
    // Labeled counter families ingest summed across their label sets —
    // the per-label breakdown stays in `/metrics`, the TSDB keeps the
    // headline total (e.g. `serve.conn_reaped.rate` across reasons).
    #[allow(clippy::cast_precision_loss)]
    for family in &snap.counter_families {
        let total: u64 = family.series.iter().map(|(_, n)| n).sum();
        store.ingest(&family.name, now_ms, total as f64);
        if let (Some(dt), Some((_, p))) = (dt_secs, prev) {
            if let Ok(i) = p
                .counter_families
                .binary_search_by(|f| f.name.as_str().cmp(&family.name))
            {
                let before: u64 = p.counter_families[i].series.iter().map(|(_, n)| n).sum();
                let delta = total.saturating_sub(before);
                store.ingest(&format!("{}.rate", family.name), now_ms, delta as f64 / dt);
            }
        }
    }
    #[allow(clippy::cast_precision_loss)]
    for (name, value) in &snap.gauges {
        store.ingest(name, now_ms, *value as f64);
    }
    #[allow(clippy::cast_precision_loss)]
    for h in &snap.histograms {
        let prev_entry = prev.and_then(|(_, p)| p.histograms.iter().find(|e| e.name == h.name));
        let (prev_count, prev_buckets): (u64, &[(u64, u64)]) =
            prev_entry.map_or((0, &[]), |e| (e.count, &e.buckets));
        let delta_count = h.count.saturating_sub(prev_count);
        if let Some(dt) = dt_secs {
            store.ingest(&format!("{}.rate", h.name), now_ms, delta_count as f64 / dt);
        }
        if delta_count > 0 {
            let deltas: Vec<(u64, u64)> = h
                .buckets
                .iter()
                .map(|(lb, n)| {
                    let before = prev_buckets
                        .iter()
                        .find(|(plb, _)| plb == lb)
                        .map_or(0, |(_, pn)| *pn);
                    (*lb, n.saturating_sub(before))
                })
                .filter(|(_, n)| *n > 0)
                .collect();
            store.ingest(
                &format!("{}.p50", h.name),
                now_ms,
                crate::metrics::quantile_from_buckets(&deltas, 0.5),
            );
            store.ingest(
                &format!("{}.p99", h.name),
                now_ms,
                crate::metrics::quantile_from_buckets(&deltas, 0.99),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> TsdbConfig {
        TsdbConfig {
            tiers: vec![
                TierSpec {
                    width_ms: 0,
                    cap: 8,
                },
                TierSpec {
                    width_ms: 100,
                    cap: 8,
                },
                TierSpec {
                    width_ms: 1000,
                    cap: 4,
                },
            ],
        }
    }

    #[test]
    fn bins_merge_conserving_counts_and_envelope() {
        let mut a = Bin::of(10.0);
        a.merge(&Bin::of(2.0));
        a.merge(&Bin::of(30.0));
        assert_eq!(a.count, 3);
        assert!((a.sum - 42.0).abs() < 1e-12);
        assert!((a.min - 2.0).abs() < 1e-12);
        assert!((a.max - 30.0).abs() < 1e-12);
        assert!((a.avg() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn every_tier_sees_every_sample() {
        let db = Tsdb::new(test_config());
        for i in 0..20u64 {
            db.ingest("m", 1_000 + i * 50, 1.0);
        }
        let occ = db.occupancy();
        assert_eq!(occ.series, 1);
        // Raw tier capped at 8; the 100 ms tier merged pairs; the 1 s
        // tier merged everything into two buckets (1000..2000, 2000..).
        assert_eq!(occ.tiers[0].2, 8, "raw ring caps at its capacity");
        let total_in_1s_tier: u64 = db
            .query("m", u64::MAX, 1, 3_000)
            .unwrap()
            .points
            .iter()
            .map(|p| p.bin.count)
            .sum();
        // Raw ring evicted, but the coarse tier conserved all 20 counts.
        let coarse = db.query("m", u64::MAX, 1_000, 3_000).unwrap();
        let coarse_total: u64 = coarse.points.iter().map(|p| p.bin.count).sum();
        assert_eq!(coarse_total, 20, "coarse tier conserves every sample");
        assert!(total_in_1s_tier <= 20);
    }

    #[test]
    fn query_picks_the_finest_covering_tier() {
        let db = Tsdb::new(test_config());
        for i in 0..40u64 {
            db.ingest("m", i * 100, f64::from(u32::try_from(i).unwrap()));
        }
        // Raw tier holds only the last 8 samples (3200..3900); a short
        // range query uses it.
        let fine = db.query("m", 500, 1, 3_900).unwrap();
        assert_eq!(fine.tier_width_ms, 0);
        // A range reaching past raw retention falls to the 100 ms tier,
        // and past that to the 1 s tier.
        let deep = db.query("m", 4_000, 1, 3_900).unwrap();
        assert!(deep.tier_width_ms >= 100);
        assert!(deep.points.first().unwrap().ts_ms <= 1_000);
    }

    #[test]
    fn query_respects_step_merging() {
        let db = Tsdb::new(test_config());
        for i in 0..8u64 {
            db.ingest("m", i * 100, 1.0);
        }
        let merged = db.query("m", 10_000, 400, 800).unwrap();
        assert!(merged.points.len() < 8, "step merging coalesces points");
        let total: u64 = merged.points.iter().map(|p| p.bin.count).sum();
        assert_eq!(total, 8, "step merging conserves counts");
    }

    #[test]
    fn unknown_metrics_query_to_none() {
        let db = Tsdb::new(test_config());
        assert!(db.query("nope", 1_000, 1, 0).is_none());
    }

    #[test]
    fn occupancy_reports_bound_and_residency() {
        let db = Tsdb::new(test_config());
        db.ingest("a", 0, 1.0);
        db.ingest("b", 0, 1.0);
        let occ = db.occupancy();
        assert_eq!(occ.series, 2);
        assert_eq!(
            occ.memory_bound_bytes,
            2 * 20 * std::mem::size_of::<Point>() as u64
        );
        assert!(occ.tiers.iter().all(|(_, _, len)| *len == 2));
    }

    #[test]
    fn config_env_parsing_is_total() {
        std::env::set_var("SVT_TSDB_TIERS", "0:16,250:8");
        let cfg = TsdbConfig::from_env();
        assert_eq!(
            cfg.tiers,
            vec![
                TierSpec {
                    width_ms: 0,
                    cap: 16
                },
                TierSpec {
                    width_ms: 250,
                    cap: 8
                },
            ]
        );
        std::env::set_var("SVT_TSDB_TIERS", "garbage");
        assert_eq!(TsdbConfig::from_env(), TsdbConfig::default());
        std::env::remove_var("SVT_TSDB_TIERS");
        assert_eq!(TsdbConfig::from_env(), TsdbConfig::default());
    }

    #[test]
    fn sample_once_derives_rates_and_quantiles() {
        let db = Tsdb::new(test_config());
        let mut snap0 = crate::Snapshot::default();
        snap0.counters.push(("t.req".to_string(), 100));
        let mut snap1 = crate::Snapshot::default();
        snap1.counters.push(("t.req".to_string(), 150));
        snap1.histograms.push(crate::HistogramEntry {
            name: "t.lat".to_string(),
            count: 10,
            sum: 10_240,
            buckets: vec![(1024, 10)],
        });
        sample_once(&db, 1_000, &snap0, None);
        sample_once(&db, 2_000, &snap1, Some(&(1_000, snap0)));
        let rate = db.query("t.req.rate", u64::MAX, 1, 2_000).unwrap();
        assert!((rate.points.last().unwrap().bin.max - 50.0).abs() < 1e-9);
        let p99 = db.query("t.lat.p99", u64::MAX, 1, 2_000).unwrap();
        let v = p99.points.last().unwrap().bin.max;
        assert!((1024.0..=2048.0).contains(&v), "p99 {v} inside the bucket");
    }

    #[test]
    fn query_json_is_well_formed() {
        let db = Tsdb::new(test_config());
        db.ingest("m", 1_000, 2.5);
        let json = db.query("m", u64::MAX, 1, 1_000).unwrap().to_json();
        let doc = crate::json::JsonValue::parse(&json).expect("query JSON parses");
        assert_eq!(
            doc.get("metric").and_then(crate::json::JsonValue::as_str),
            Some("m")
        );
        assert_eq!(
            doc.get("tiers")
                .and_then(crate::json::JsonValue::as_array)
                .map(<[crate::json::JsonValue]>::len),
            Some(3)
        );
    }
}
