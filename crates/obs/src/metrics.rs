//! Lock-free metric primitives.
//!
//! Every primitive is a bundle of atomics updated with `Relaxed` ordering:
//! observability must never serialize the hot path it watches. Readers
//! (snapshots) tolerate the resulting minor skew between related fields —
//! a snapshot taken mid-update may see a count without its nanoseconds,
//! which is irrelevant for aggregate reporting.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (between benchmark sections).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (pool sizes, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0);
    }

    /// Increments the gauge and returns a guard that decrements it on
    /// drop — panic-safe in-flight tracking for request handlers and
    /// queue consumers.
    ///
    /// # Examples
    ///
    /// ```
    /// let gauge = svt_obs::registry().gauge("doc.inflight");
    /// {
    ///     let _guard = gauge.inflight();
    ///     assert_eq!(gauge.get(), 1);
    /// }
    /// assert_eq!(gauge.get(), 0);
    /// ```
    pub fn inflight(&'static self) -> InflightGuard {
        self.add(1);
        InflightGuard { gauge: self }
    }
}

/// RAII guard from [`Gauge::inflight`]: decrements the gauge when
/// dropped, including on unwind.
#[derive(Debug)]
pub struct InflightGuard {
    gauge: &'static Gauge,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.gauge.add(-1);
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts values `v`
/// with `floor(log2(v)) == i` (bucket 0 additionally holds 0). 2^47 ns is
/// about 39 hours, beyond any span this pipeline produces; larger values
/// saturate into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Index of the bucket holding `v`.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (63 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Lower bound of bucket `i` (its values are `< lower_bound(i + 1)`).
    #[must_use]
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total sample count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let mean = self.sum() as f64 / n as f64;
            mean
        }
    }

    /// Upper bound (exclusive) of bucket with lower bound `lower`:
    /// bucket 0 holds `{0, 1}`, every other log2 bucket spans
    /// `[l, 2l)`. The saturating last bucket reuses the same rule as an
    /// estimate.
    #[must_use]
    pub fn bucket_upper_bound(lower: u64) -> u64 {
        if lower == 0 {
            2
        } else {
            lower.saturating_mul(2)
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) of the recorded
    /// samples by walking the cumulative bucket counts to the target
    /// rank and interpolating linearly inside the landing log2 bucket.
    /// Registry-wide single implementation — `bench_serve`'s p50/p99 and
    /// the TSDB sampler's derived quantile series both use it. Returns
    /// 0 with no samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.nonzero_buckets(), q)
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_lower_bound(i), n))
            })
            .collect()
    }

    /// Resets every bucket and the count/sum.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Estimates the `q`-quantile from `(bucket lower bound, count)` pairs
/// (the [`Histogram::nonzero_buckets`] shape, also carried by snapshot
/// [`crate::HistogramEntry`]s and per-tick bucket deltas). The target
/// rank is `q · n` clamped to `[1, n]`; within the landing bucket the
/// estimate interpolates linearly between the log2 bounds, which keeps
/// the error within one bucket width (≤ 2× at the top of a bucket).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn quantile_from_buckets(buckets: &[(u64, u64)], q: f64) -> f64 {
    let total: u64 = buckets.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0);
    let mut cum = 0u64;
    for (lower, n) in buckets {
        let (cum_before, here) = (cum as f64, *n as f64);
        cum += n;
        if cum as f64 >= target {
            let frac = ((target - cum_before) / here).clamp(0.0, 1.0);
            let lo = *lower as f64;
            let hi = Histogram::bucket_upper_bound(*lower) as f64;
            return lo + (hi - lo) * frac;
        }
    }
    buckets.last().map_or(0.0, |(lower, _)| {
        Histogram::bucket_upper_bound(*lower) as f64
    })
}

/// Aggregated timing of one span path: call count, total/min/max duration.
#[derive(Debug)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for SpanStat {
    fn default() -> SpanStat {
        SpanStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl SpanStat {
    /// Records one completed span of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of completed spans.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across all spans.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Shortest recorded span, or 0 with no spans.
    #[must_use]
    pub fn min_ns(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min_ns.load(Ordering::Relaxed)
        }
    }

    /// Longest recorded span.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Mean span duration in nanoseconds, or 0 with no spans.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let mean = self.total_ns() as f64 / n as f64;
            mean
        }
    }

    /// Resets all fields.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_arithmetic() {
        let c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::default();
        g.set(5);
        g.add(-7);
        assert_eq!(g.get(), -2);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1024, 1025] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2055);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 2)]);
        assert!((h.mean() - 2055.0 / 6.0).abs() < 1e-12);
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram quantiles to 0");
        // 100 samples of exactly 1000 ns land in bucket [512, 1024).
        for _ in 0..100 {
            h.record(1000);
        }
        let p50 = h.quantile(0.5);
        assert!(
            (512.0..1024.0).contains(&p50),
            "p50 {p50} inside the sample's bucket"
        );
        assert!(h.quantile(0.99) >= p50, "quantiles are monotone in q");
        // A bimodal distribution: p99 must land in the slow mode's bucket.
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let p99 = h.quantile(0.99);
        assert!(p99 < 256.0, "99 of 100 samples are fast: {p99}");
        let p999 = h.quantile(0.999);
        assert!(
            (524_288.0..2_097_152.0).contains(&p999),
            "tail quantile {p999} reaches the slow bucket"
        );
        // The free-function form matches the method on the same buckets.
        let direct = quantile_from_buckets(&h.nonzero_buckets(), 0.99);
        assert!((direct - p99).abs() < 1e-9);
    }

    #[test]
    fn span_stat_tracks_extremes() {
        let s = SpanStat::default();
        assert_eq!(s.min_ns(), 0, "empty stat has no minimum");
        s.record(10);
        s.record(30);
        s.record(20);
        assert_eq!(s.count(), 3);
        assert_eq!(s.total_ns(), 60);
        assert_eq!(s.min_ns(), 10);
        assert_eq!(s.max_ns(), 30);
        assert!((s.mean_ns() - 20.0).abs() < 1e-12);
        s.reset();
        assert_eq!(
            (s.count(), s.total_ns(), s.min_ns(), s.max_ns()),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let c = Counter::default();
        let h = Histogram::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        c.incr();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
