//! Renderers for [`Snapshot`]: a human-readable tree summary, a
//! machine-readable JSON document, and a Prometheus-style text exposition.
//!
//! All output is built from the name-sorted snapshot, so two snapshots of
//! identical state render byte-identically.

use std::fmt::Write as _;

use crate::registry::Snapshot;

/// Renders one `key="value",...` label body from parallel key/value
/// slices, with Prometheus escaping applied to the values.
fn label_body(keys: &[String], values: &[String]) -> String {
    keys.iter()
        .zip(values)
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), escape(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let ns_f = ns as f64;
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns_f / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns_f / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns_f / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Escapes a string for a JSON or Prometheus label value. The three
/// escapes (`\\`, `\"`, `\n`) are exactly the set the Prometheus text
/// format defines for label values, and [`parse_labels`] reverses them.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Sanitizes a metric name into a Prometheus identifier.
fn prom_name(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl Snapshot {
    /// Renders the human-readable summary: the span tree (indented by `/`
    /// path depth), then counters, gauges, histograms, and per-cache
    /// hit/miss statistics.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::from("== svt trace summary ==\n");
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                let depth = s.path.matches('/').count();
                let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
                let indent = "  ".repeat(depth + 1);
                let label = format!("{indent}{leaf}");
                let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{label:<38} {:>8} calls  total {:>12}  mean {:>12}  max {:>12}",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(mean),
                    fmt_ns(s.max_ns),
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<36} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<36} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:<36} {:>8} samples  mean {:>12}",
                    h.name,
                    h.count,
                    fmt_ns(mean)
                );
            }
        }
        if !self.counter_families.is_empty() || !self.histogram_families.is_empty() {
            out.push_str("families:\n");
            for f in &self.counter_families {
                for (values, v) in &f.series {
                    let label = format!("{}{{{}}}", f.name, label_body(&f.keys, values));
                    let _ = writeln!(out, "  {label:<48} {v:>14}");
                }
            }
            for f in &self.histogram_families {
                for (values, count, sum) in &f.series {
                    let label = format!("{}{{{}}}", f.name, label_body(&f.keys, values));
                    let mean = sum.checked_div(*count).unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "  {label:<48} {count:>8} samples  mean {:>12}",
                        fmt_ns(mean)
                    );
                }
            }
        }
        if !self.caches.is_empty() {
            out.push_str("caches:\n");
            for (name, c) in &self.caches {
                let _ = writeln!(
                    out,
                    "  {name:<24} hits {:>10}  misses {:>8}  hit-rate {:>6.1}%  inserts {:>8}  evicted {:>8}  resident {:>8}",
                    c.hits,
                    c.misses,
                    100.0 * c.hit_rate(),
                    c.inserts,
                    c.evictions,
                    c.entries,
                );
            }
        }
        out
    }

    /// Renders the snapshot as a self-contained JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {} }}",
                escape(&s.path),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns
            );
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(lo, n)| format!("[{lo}, {n}]"))
                .collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}",
                escape(&h.name),
                h.count,
                h.sum,
                buckets.join(", ")
            );
        }
        out.push_str("\n  },\n  \"counter_families\": {");
        for (i, f) in self.counter_families.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let keys: Vec<String> = f
                .keys
                .iter()
                .map(|k| format!("\"{}\"", escape(k)))
                .collect();
            let series: Vec<String> = f
                .series
                .iter()
                .map(|(vs, n)| {
                    let vals: Vec<String> =
                        vs.iter().map(|v| format!("\"{}\"", escape(v))).collect();
                    format!("{{ \"labels\": [{}], \"value\": {n} }}", vals.join(", "))
                })
                .collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"keys\": [{}], \"series\": [{}] }}",
                escape(&f.name),
                keys.join(", "),
                series.join(", ")
            );
        }
        out.push_str("\n  },\n  \"histogram_families\": {");
        for (i, f) in self.histogram_families.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let keys: Vec<String> = f
                .keys
                .iter()
                .map(|k| format!("\"{}\"", escape(k)))
                .collect();
            let series: Vec<String> = f
                .series
                .iter()
                .map(|(vs, count, sum)| {
                    let vals: Vec<String> =
                        vs.iter().map(|v| format!("\"{}\"", escape(v))).collect();
                    format!(
                        "{{ \"labels\": [{}], \"count\": {count}, \"sum\": {sum} }}",
                        vals.join(", ")
                    )
                })
                .collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"keys\": [{}], \"series\": [{}] }}",
                escape(&f.name),
                keys.join(", "),
                series.join(", ")
            );
        }
        out.push_str("\n  },\n  \"caches\": {");
        for (i, (name, c)) in self.caches.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"hits\": {}, \"misses\": {}, \"inserts\": {}, \"evictions\": {}, \"entries\": {} }}",
                escape(name),
                c.hits,
                c.misses,
                c.inserts,
                c.evictions,
                c.entries
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a Prometheus-style text exposition (counters, gauges, span
    /// and histogram aggregates, cache counters).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE svt_{n}_total counter\nsvt_{n}_total {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE svt_{n} gauge\nsvt_{n} {v}");
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE svt_span_count_total counter\n");
            out.push_str("# TYPE svt_span_total_ns counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "svt_span_count_total{{span=\"{0}\"}} {1}\nsvt_span_total_ns{{span=\"{0}\"}} {2}",
                    escape(&s.path),
                    s.count,
                    s.total_ns
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# TYPE svt_hist_count_total counter\n");
            out.push_str("# TYPE svt_hist_sum_total counter\n");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "svt_hist_count_total{{hist=\"{0}\"}} {1}\nsvt_hist_sum_total{{hist=\"{0}\"}} {2}",
                    escape(&h.name),
                    h.count,
                    h.sum
                );
            }
        }
        for f in &self.counter_families {
            let n = prom_name(&f.name);
            let _ = writeln!(out, "# TYPE svt_{n}_total counter");
            for (values, v) in &f.series {
                let _ = writeln!(out, "svt_{n}_total{{{}}} {v}", label_body(&f.keys, values));
            }
        }
        for f in &self.histogram_families {
            let n = prom_name(&f.name);
            let _ = writeln!(out, "# TYPE svt_{n}_count_total counter");
            let _ = writeln!(out, "# TYPE svt_{n}_sum_total counter");
            for (values, count, sum) in &f.series {
                let body = label_body(&f.keys, values);
                let _ = writeln!(
                    out,
                    "svt_{n}_count_total{{{body}}} {count}\nsvt_{n}_sum_total{{{body}}} {sum}"
                );
            }
        }
        if !self.caches.is_empty() {
            for field in ["hits", "misses", "inserts", "evictions"] {
                let _ = writeln!(out, "# TYPE svt_cache_{field}_total counter");
            }
            out.push_str("# TYPE svt_cache_entries gauge\n");
            for (name, c) in &self.caches {
                let n = escape(name);
                let _ = writeln!(
                    out,
                    "svt_cache_hits_total{{cache=\"{n}\"}} {}\nsvt_cache_misses_total{{cache=\"{n}\"}} {}\nsvt_cache_inserts_total{{cache=\"{n}\"}} {}\nsvt_cache_evictions_total{{cache=\"{n}\"}} {}\nsvt_cache_entries{{cache=\"{n}\"}} {}",
                    c.hits, c.misses, c.inserts, c.evictions, c.entries
                );
            }
        }
        out
    }

    /// Renders the per-interval view of this snapshot against an earlier
    /// one as Prometheus gauges: for every counter-like series, the delta
    /// since `prev` and the per-second rate over `seconds`. Served by
    /// `svtd`'s `/metrics` endpoint alongside [`Snapshot::to_prometheus`]
    /// so dashboards get rates without PromQL.
    ///
    /// Series absent from `prev` (first scrape, freshly created metrics)
    /// are treated as starting from zero; a non-positive `seconds` yields
    /// zero rates.
    #[must_use]
    pub fn delta_prometheus(&self, prev: &Snapshot, seconds: f64) -> String {
        #[allow(clippy::cast_precision_loss)]
        fn rate(delta: u64, seconds: f64) -> f64 {
            if seconds > 0.0 {
                delta as f64 / seconds
            } else {
                0.0
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# TYPE svt_scrape_interval_seconds gauge\nsvt_scrape_interval_seconds {seconds}"
        );
        for (name, v) in &self.counters {
            let before = prev
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, p)| *p);
            let delta = v.saturating_sub(before);
            let n = prom_name(name);
            let _ = writeln!(
                out,
                "# TYPE svt_{n}_delta gauge\nsvt_{n}_delta {delta}\n# TYPE svt_{n}_rate gauge\nsvt_{n}_rate {}",
                rate(delta, seconds)
            );
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE svt_span_count_delta gauge\n");
            out.push_str("# TYPE svt_span_count_rate gauge\n");
            out.push_str("# TYPE svt_span_busy_ratio gauge\n");
            for s in &self.spans {
                let before = prev.spans.iter().find(|p| p.path == s.path);
                let d_count = s.count.saturating_sub(before.map_or(0, |p| p.count));
                let d_ns = s.total_ns.saturating_sub(before.map_or(0, |p| p.total_ns));
                // Fraction of the scrape interval spent inside this span
                // (can exceed 1 when several threads run it concurrently).
                let busy = rate(d_ns, seconds) / 1e9;
                let _ = writeln!(
                    out,
                    "svt_span_count_delta{{span=\"{0}\"}} {1}\nsvt_span_count_rate{{span=\"{0}\"}} {2}\nsvt_span_busy_ratio{{span=\"{0}\"}} {3}",
                    escape(&s.path),
                    d_count,
                    rate(d_count, seconds),
                    busy
                );
            }
        }
        if !self.caches.is_empty() {
            out.push_str("# TYPE svt_cache_hits_delta gauge\n");
            out.push_str("# TYPE svt_cache_hits_rate gauge\n");
            out.push_str("# TYPE svt_cache_misses_delta gauge\n");
            out.push_str("# TYPE svt_cache_misses_rate gauge\n");
            for (name, c) in &self.caches {
                let before = prev.caches.iter().find(|(n, _)| n == name).map(|(_, p)| p);
                let d_hits = c.hits.saturating_sub(before.map_or(0, |p| p.hits));
                let d_misses = c.misses.saturating_sub(before.map_or(0, |p| p.misses));
                let _ = writeln!(
                    out,
                    "svt_cache_hits_delta{{cache=\"{0}\"}} {1}\nsvt_cache_hits_rate{{cache=\"{0}\"}} {2}\nsvt_cache_misses_delta{{cache=\"{0}\"}} {3}\nsvt_cache_misses_rate{{cache=\"{0}\"}} {4}",
                    escape(name),
                    d_hits,
                    rate(d_hits, seconds),
                    d_misses,
                    rate(d_misses, seconds)
                );
            }
        }
        out
    }
}

/// Renders the static identity block served at the top of `/metrics`:
/// `svt_build_info{version, profile, features}` (always 1, labels carry
/// the payload, the standard Prometheus build-info idiom) plus
/// `svt_uptime_seconds` so dashboards can spot restarts.
#[must_use]
pub fn build_info_prometheus(uptime_seconds: f64) -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut features = Vec::new();
    if cfg!(feature = "telemetry") {
        features.push("telemetry");
    }
    if cfg!(feature = "alloc-telemetry") {
        features.push("alloc-telemetry");
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# TYPE svt_build_info gauge\nsvt_build_info{{version=\"{}\",profile=\"{profile}\",features=\"{}\"}} 1",
        escape(env!("CARGO_PKG_VERSION")),
        escape(&features.join(","))
    );
    let _ = writeln!(
        out,
        "# TYPE svt_uptime_seconds gauge\nsvt_uptime_seconds {uptime_seconds}"
    );
    out
}

/// One parsed sample of a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, document order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of a label, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a Prometheus text exposition back into samples — the round-trip
/// counterpart of [`Snapshot::to_prometheus`]. `# TYPE`/`# HELP` comment
/// lines are skipped; samples keep document order.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: `{line}`", lineno + 1);
        let (ident, value_text) = match line.find('{') {
            Some(brace) => {
                let close = line.rfind('}').ok_or_else(|| err("unclosed label set"))?;
                if close < brace {
                    return Err(err("malformed label set"));
                }
                (&line[..close + 1], line[close + 1..].trim())
            }
            None => {
                let space = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| err("missing value"))?;
                (&line[..space], line[space..].trim())
            }
        };
        let value: f64 = value_text
            .split_whitespace()
            .next()
            .ok_or_else(|| err("missing value"))?
            .parse()
            .map_err(|_| err("non-numeric value"))?;
        let (name, labels) = match ident.find('{') {
            None => (ident.to_string(), Vec::new()),
            Some(brace) => {
                let name = ident[..brace].to_string();
                let body = &ident[brace + 1..ident.len() - 1];
                (name, parse_labels(body).map_err(|e| err(&e))?)
            }
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err("invalid metric name"));
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Parses `key="value",key2="value2"` with `\\` and `\"` escapes.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = body.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        let eq = body[pos..]
            .find('=')
            .map(|i| pos + i)
            .ok_or("label without `=`")?;
        let key = body[pos..eq].trim().to_string();
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err("label value must be quoted".into());
        }
        let mut value = String::new();
        let mut i = eq + 2;
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => break,
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'"') => value.push('"'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("invalid escape in label value".into()),
                    }
                    i += 2;
                }
                Some(_) => {
                    let ch = body[i..].chars().next().ok_or("invalid UTF-8")?;
                    value.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        labels.push((key, value));
        pos = i + 1;
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{
        CacheCounters, CounterFamilyEntry, HistogramEntry, HistogramFamilyEntry, SpanEntry,
    };

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanEntry {
                    path: "flow".into(),
                    count: 1,
                    total_ns: 2_500_000,
                    min_ns: 2_500_000,
                    max_ns: 2_500_000,
                },
                SpanEntry {
                    path: "flow/corner".into(),
                    count: 3,
                    total_ns: 1_500_000,
                    min_ns: 400_000,
                    max_ns: 600_000,
                },
            ],
            counters: vec![("exec.pool.tasks".into(), 42)],
            gauges: vec![("exec.pool.workers".into(), 8)],
            histograms: vec![HistogramEntry {
                name: "exec.pool.task_ns".into(),
                count: 42,
                sum: 84_000,
                buckets: vec![(1024, 42)],
            }],
            counter_families: vec![CounterFamilyEntry {
                name: "serve.requests".into(),
                keys: vec!["route".into(), "status".into()],
                series: vec![
                    (vec!["/eco".into(), "200".into()], 4),
                    (vec!["/eco".into(), "503".into()], 1),
                ],
            }],
            histogram_families: vec![HistogramFamilyEntry {
                name: "serve.latency_ns".into(),
                keys: vec!["route".into()],
                series: vec![(vec!["/eco".into()], 5, 12_000_000)],
            }],
            caches: vec![(
                "litho.cd".into(),
                CacheCounters {
                    hits: 90,
                    misses: 10,
                    inserts: 10,
                    evictions: 0,
                    entries: 10,
                },
            )],
        }
    }

    #[test]
    fn summary_contains_every_section() {
        let text = sample().render_summary();
        for needle in [
            "spans:",
            "flow",
            "corner",
            "counters:",
            "exec.pool.tasks",
            "gauges:",
            "histograms:",
            "families:",
            "serve.requests{route=\"/eco\",status=\"200\"}",
            "caches:",
            "litho.cd",
            "90.0%",
        ] {
            assert!(text.contains(needle), "summary missing `{needle}`:\n{text}");
        }
        // Child spans indent one level deeper than their parent.
        let parent = text.lines().find(|l| l.contains("flow ")).unwrap();
        let child = text.lines().find(|l| l.contains("corner")).unwrap();
        let lead = |l: &str| l.len() - l.trim_start().len();
        assert!(lead(child) > lead(parent), "child must be indented");
    }

    #[test]
    fn json_is_structured_and_escaped() {
        let mut snap = sample();
        snap.counters.push(("weird\"name".into(), 1));
        snap.counters.sort();
        let json = snap.to_json();
        assert!(json.contains("\"flow/corner\": { \"count\": 3"));
        assert!(json.contains("\"exec.pool.tasks\": 42"));
        assert!(json.contains("weird\\\"name"));
        assert!(json.contains("\"buckets\": [[1024, 42]]"));
        assert!(json.contains("\"hits\": 90"));
        assert!(json.contains(
            "\"serve.requests\": { \"keys\": [\"route\", \"status\"], \"series\": [{ \"labels\": [\"/eco\", \"200\"], \"value\": 4 }"
        ));
        assert!(json.contains("\"serve.latency_ns\""));
        assert_eq!(json.matches("\"spans\"").count(), 1);
    }

    #[test]
    fn prometheus_exposition_has_types_and_labels() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE svt_exec_pool_tasks_total counter"));
        assert!(text.contains("svt_exec_pool_tasks_total 42"));
        assert!(text.contains("svt_span_total_ns{span=\"flow/corner\"} 1500000"));
        assert!(text.contains("svt_cache_hits_total{cache=\"litho.cd\"} 90"));
        assert!(text.contains("svt_cache_entries{cache=\"litho.cd\"} 10"));
    }

    #[test]
    fn family_exposition_renders_prometheus_labels() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE svt_serve_requests_total counter"));
        assert!(text.contains("svt_serve_requests_total{route=\"/eco\",status=\"200\"} 4"));
        assert!(text.contains("svt_serve_requests_total{route=\"/eco\",status=\"503\"} 1"));
        assert!(text.contains("svt_serve_latency_ns_count_total{route=\"/eco\"} 5"));
        assert!(text.contains("svt_serve_latency_ns_sum_total{route=\"/eco\"} 12000000"));
    }

    #[test]
    fn family_labels_round_trip_with_escapes() {
        // The full Prometheus escape set (`\\`, `\"`, `\n`) in family
        // label *values*, alone and mixed, across multiple labels.
        for odd in [
            "back\\slash",
            "qu\"ote",
            "line\nbreak",
            "all\\three\"here\n",
            "trailing\\",
            "\n",
        ] {
            let mut snap = sample();
            snap.counter_families.push(CounterFamilyEntry {
                name: "odd.family".into(),
                keys: vec!["a".into(), "b".into(), "c".into()],
                series: vec![(vec![odd.into(), "plain".into(), odd.into()], 3)],
            });
            let text = snap.to_prometheus();
            let samples = parse_prometheus(&text)
                .unwrap_or_else(|e| panic!("family exposition with {odd:?} fails to parse: {e}"));
            let got = samples
                .iter()
                .find(|s| s.name == "svt_odd_family_total")
                .unwrap_or_else(|| panic!("family sample missing in:\n{text}"));
            assert_eq!(got.label("a"), Some(odd), "label a did not round-trip");
            assert_eq!(got.label("b"), Some("plain"));
            assert_eq!(got.label("c"), Some(odd), "label c did not round-trip");
            assert_eq!(got.value, 3.0);
        }
    }

    #[test]
    fn family_cardinality_cap_surfaces_as_overflow_series() {
        // End to end through the live registry: fill a family to the cap,
        // spill past it, and check the overflow series in the exposition.
        let fam = crate::registry().counter_family("test.render.capfam", &["k"]);
        for i in 0..crate::family::MAX_SERIES {
            fam.with(&[&format!("v{i}")]).incr();
        }
        fam.with(&["past-the-cap"]).add(7);
        let snap = crate::registry().snapshot();
        let text = snap.to_prometheus();
        let samples = parse_prometheus(&text).expect("exposition parses");
        let rows: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "svt_test_render_capfam_total")
            .collect();
        assert_eq!(
            rows.len(),
            crate::family::MAX_SERIES + 1,
            "cap series plus one overflow row"
        );
        let overflow = rows
            .iter()
            .find(|s| s.label("k") == Some(crate::family::OVERFLOW_LABEL))
            .expect("overflow series present");
        assert_eq!(overflow.value, 7.0);
    }

    #[test]
    fn build_info_renders_and_round_trips() {
        let text = build_info_prometheus(12.5);
        let samples = parse_prometheus(&text).expect("build info parses");
        let info = samples
            .iter()
            .find(|s| s.name == "svt_build_info")
            .expect("svt_build_info present");
        assert_eq!(info.value, 1.0);
        assert_eq!(info.label("version"), Some(env!("CARGO_PKG_VERSION")));
        assert!(matches!(info.label("profile"), Some("debug" | "release")));
        assert!(info.label("features").is_some());
        let uptime = samples
            .iter()
            .find(|s| s.name == "svt_uptime_seconds")
            .expect("svt_uptime_seconds present");
        assert_eq!(uptime.value, 12.5);
    }

    #[test]
    fn prometheus_round_trips_through_the_parser() {
        let mut snap = sample();
        // Names with quotes and backslashes must survive the trip.
        snap.caches.push((
            "odd\"cache\\name".into(),
            CacheCounters {
                hits: 7,
                misses: 3,
                inserts: 3,
                evictions: 1,
                entries: 2,
            },
        ));
        let text = snap.to_prometheus();
        let samples = parse_prometheus(&text).expect("exposition parses");
        let find = |name: &str, label: Option<(&str, &str)>| {
            samples
                .iter()
                .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
                .unwrap_or_else(|| panic!("missing {name} {label:?} in:\n{text}"))
        };
        assert_eq!(find("svt_exec_pool_tasks_total", None).value, 42.0);
        assert_eq!(find("svt_exec_pool_workers", None).value, 8.0);
        assert_eq!(
            find("svt_span_total_ns", Some(("span", "flow/corner"))).value,
            1_500_000.0
        );
        assert_eq!(
            find("svt_hist_count_total", Some(("hist", "exec.pool.task_ns"))).value,
            42.0
        );
        assert_eq!(
            find("svt_cache_hits_total", Some(("cache", "litho.cd"))).value,
            90.0
        );
        assert_eq!(
            find("svt_cache_entries", Some(("cache", "odd\"cache\\name"))).value,
            2.0
        );
        // Every non-comment line parsed into exactly one sample.
        let payload_lines = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count();
        assert_eq!(samples.len(), payload_lines);
    }

    #[test]
    fn prometheus_round_trips_every_escaped_label_form() {
        // `\\`, `\"`, and `\n` are the full escape set of the Prometheus
        // text format — each must survive render → parse, alone and mixed.
        for odd in [
            "back\\slash",
            "qu\"ote",
            "line\nbreak",
            "all\\three\"here\n",
            "trailing\\",
            "\n",
        ] {
            let mut snap = sample();
            snap.spans.push(SpanEntry {
                path: odd.into(),
                count: 5,
                total_ns: 50,
                min_ns: 10,
                max_ns: 10,
            });
            snap.spans.sort_by(|a, b| a.path.cmp(&b.path));
            let text = snap.to_prometheus();
            let samples = parse_prometheus(&text)
                .unwrap_or_else(|e| panic!("exposition with {odd:?} fails to parse: {e}"));
            let got = samples
                .iter()
                .find(|s| s.name == "svt_span_count_total" && s.label("span") == Some(odd));
            assert!(got.is_some(), "label {odd:?} did not round-trip:\n{text}");
            assert_eq!(got.unwrap().value, 5.0);
        }
    }

    #[test]
    fn delta_exposition_subtracts_and_rates() {
        let prev = sample();
        let mut cur = sample();
        cur.counters[0].1 += 10; // 42 -> 52 over 2 s
        cur.spans[1].count += 4; // flow/corner 3 -> 7
        cur.spans[1].total_ns += 1_000_000_000; // +1 s busy over 2 s
        cur.caches[0].1.hits += 20;
        let text = cur.delta_prometheus(&prev, 2.0);
        let samples = parse_prometheus(&text).expect("delta exposition parses");
        let find = |name: &str, label: Option<(&str, &str)>| {
            samples
                .iter()
                .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
                .unwrap_or_else(|| panic!("missing {name} {label:?} in:\n{text}"))
        };
        assert_eq!(find("svt_scrape_interval_seconds", None).value, 2.0);
        assert_eq!(find("svt_exec_pool_tasks_delta", None).value, 10.0);
        assert_eq!(find("svt_exec_pool_tasks_rate", None).value, 5.0);
        assert_eq!(
            find("svt_span_count_delta", Some(("span", "flow/corner"))).value,
            4.0
        );
        assert_eq!(
            find("svt_span_count_rate", Some(("span", "flow/corner"))).value,
            2.0
        );
        assert!(
            (find("svt_span_busy_ratio", Some(("span", "flow/corner"))).value - 0.5).abs() < 1e-12
        );
        assert_eq!(
            find("svt_cache_hits_delta", Some(("cache", "litho.cd"))).value,
            20.0
        );
        assert_eq!(
            find("svt_cache_hits_rate", Some(("cache", "litho.cd"))).value,
            10.0
        );
        // A series absent from `prev` counts from zero; zero interval
        // yields zero rates rather than dividing by zero.
        let fresh = Snapshot {
            counters: vec![("new.counter".into(), 9)],
            ..Snapshot::default()
        };
        let empty = Snapshot::default();
        let text = fresh.delta_prometheus(&empty, 0.0);
        let samples = parse_prometheus(&text).expect("fresh delta parses");
        let get = |name: &str| samples.iter().find(|s| s.name == name).unwrap().value;
        assert_eq!(get("svt_new_counter_delta"), 9.0);
        assert_eq!(get("svt_new_counter_rate"), 0.0);
    }

    #[test]
    fn prometheus_parser_rejects_malformed_lines() {
        assert!(parse_prometheus("svt_x_total").is_err(), "missing value");
        assert!(parse_prometheus("svt_x_total abc").is_err(), "non-numeric");
        assert!(
            parse_prometheus("svt_x{span=\"a\" 1").is_err(),
            "unclosed label set"
        );
        assert!(
            parse_prometheus("sv t{span=\"a\"} 1").is_err(),
            "invalid name"
        );
        assert!(parse_prometheus("").unwrap().is_empty());
        assert!(parse_prometheus("# TYPE x counter\n").unwrap().is_empty());
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let empty = Snapshot::default();
        assert!(empty
            .render_summary()
            .starts_with("== svt trace summary =="));
        assert!(empty.to_json().contains("\"spans\": {"));
        assert!(empty.to_prometheus().is_empty());
    }
}
