//! The global metric registry.
//!
//! Metric storage is sharded over lock-striped `HashMap`s exactly like
//! `svt-exec`'s memo cache, so registration from concurrent workers rarely
//! contends. Registration is the *cold* path: call sites cache the returned
//! `&'static` handle (the [`crate::counter!`]/[`crate::histogram!`] macros
//! do this with a per-site `OnceLock`), after which every update is a plain
//! atomic on the handle — no lock, no lookup.
//!
//! Handles are leaked `Box`es. The set of metric names is a small static
//! property of the instrumented code, so the leak is bounded and the
//! `&'static` lifetime is what makes the hot path lock-free.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::family::{CounterFamily, HistogramFamily};
use crate::metrics::{Counter, Gauge, Histogram, SpanStat};

/// Shard count; power of two so hash bits select shards evenly.
const SHARDS: usize = 16;

/// A registered metric of any kind.
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    Span(&'static SpanStat),
    CounterFamily(&'static CounterFamily),
    HistogramFamily(&'static HistogramFamily),
}

/// Point-in-time cache activity, reported by a registered cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries dropped by capacity resets.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheCounters {
    /// Hit fraction in `[0, 1]`; 0 when untouched.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let rate = self.hits as f64 / total as f64;
            rate
        }
    }
}

/// A callback reading a cache's live counters at snapshot time. Cache
/// telemetry costs the instrumented cache nothing: its own hit/miss atomics
/// are read only when a snapshot is taken.
type CacheProbe = Box<dyn Fn() -> CacheCounters + Send + Sync>;

type Shard = Mutex<HashMap<String, Metric>>;

/// The process-wide metric registry.
pub struct Registry {
    shards: Vec<Shard>,
    caches: Mutex<Vec<(String, CacheProbe)>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        caches: Mutex::new(Vec::new()),
    })
}

/// Locks a mutex, recovering from poisoning: metric maps stay consistent
/// across the panics that can occur while a shard is held (kind-mismatch
/// registration), so a poisoned lock carries valid data.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    fn shard_for(&self, name: &str) -> &Shard {
        let hash = BuildHasherDefault::<DefaultHasher>::default().hash_one(name);
        // High bits pick the shard; low bits pick the bucket inside it.
        let idx = (hash >> 32) as usize & (SHARDS - 1);
        &self.shards[idx]
    }

    fn get_or_leak<T: Default, F>(
        &self,
        name: &str,
        wrap: F,
        unwrap: fn(&Metric) -> Option<&'static T>,
    ) -> &'static T
    where
        F: FnOnce(&'static T) -> Metric,
    {
        let mut shard = lock_recovering(self.shard_for(name));
        if let Some(existing) = shard.get(name) {
            return unwrap(existing).unwrap_or_else(|| {
                panic!("metric `{name}` already registered with a different kind")
            });
        }
        let leaked: &'static T = Box::leak(Box::default());
        shard.insert(name.to_string(), wrap(leaked));
        leaked
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        self.get_or_leak(name, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(c),
            _ => None,
        })
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        self.get_or_leak(name, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(g),
            _ => None,
        })
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        self.get_or_leak(name, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(h),
            _ => None,
        })
    }

    /// The span aggregate for a `/`-separated span path, registering it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn span_stat(&self, path: &str) -> &'static SpanStat {
        self.get_or_leak(path, Metric::Span, |m| match m {
            Metric::Span(s) => Some(s),
            _ => None,
        })
    }

    /// The labeled counter family named `name` with label keys `keys`,
    /// registering it on first use. See [`crate::family`] for the
    /// cardinality budget.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// or with different label keys.
    pub fn counter_family(&self, name: &str, keys: &[&str]) -> &'static CounterFamily {
        let fam = self.get_or_leak(name, Metric::CounterFamily, |m| match m {
            Metric::CounterFamily(f) => Some(f),
            _ => None,
        });
        fam.bind(name, keys);
        fam
    }

    /// The labeled histogram family named `name` with label keys `keys`,
    /// registering it on first use. See [`crate::family`] for the
    /// cardinality budget.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// or with different label keys.
    pub fn histogram_family(&self, name: &str, keys: &[&str]) -> &'static HistogramFamily {
        let fam = self.get_or_leak(name, Metric::HistogramFamily, |m| match m {
            Metric::HistogramFamily(f) => Some(f),
            _ => None,
        });
        fam.bind(name, keys);
        fam
    }

    /// Registers a named cache probe. Re-registering a name replaces the
    /// probe (the latest cache instance wins), so idempotent registration
    /// from `OnceLock` initializers is safe.
    pub fn register_cache<F>(&self, name: &str, probe: F)
    where
        F: Fn() -> CacheCounters + Send + Sync + 'static,
    {
        let mut caches = lock_recovering(&self.caches);
        if let Some(slot) = caches.iter_mut().find(|(n, _)| n == name) {
            slot.1 = Box::new(probe);
        } else {
            caches.push((name.to_string(), Box::new(probe)));
        }
    }

    /// Resets every counter, gauge, histogram, and span aggregate to its
    /// initial state. Cache probes are untouched (they read live caches).
    pub fn reset_metrics(&self) {
        for shard in &self.shards {
            for metric in lock_recovering(shard).values() {
                match metric {
                    Metric::Counter(c) => c.reset(),
                    Metric::Gauge(g) => g.reset(),
                    Metric::Histogram(h) => h.reset(),
                    Metric::Span(s) => s.reset(),
                    Metric::CounterFamily(f) => f.reset(),
                    Metric::HistogramFamily(f) => f.reset(),
                }
            }
        }
    }

    /// Takes a point-in-time snapshot of every metric and cache probe,
    /// sorted by name so output is deterministic.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut spans = Vec::new();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        let mut counter_families = Vec::new();
        let mut histogram_families = Vec::new();
        for shard in &self.shards {
            for (name, metric) in lock_recovering(shard).iter() {
                match metric {
                    Metric::Counter(c) => counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                    Metric::Histogram(h) => histograms.push(HistogramEntry {
                        name: name.clone(),
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                    }),
                    Metric::Span(s) => spans.push(SpanEntry {
                        path: name.clone(),
                        count: s.count(),
                        total_ns: s.total_ns(),
                        min_ns: s.min_ns(),
                        max_ns: s.max_ns(),
                    }),
                    Metric::CounterFamily(f) => counter_families.push(CounterFamilyEntry {
                        name: name.clone(),
                        keys: f.keys().to_vec(),
                        series: f.collect(),
                    }),
                    Metric::HistogramFamily(f) => histogram_families.push(HistogramFamilyEntry {
                        name: name.clone(),
                        keys: f.keys().to_vec(),
                        series: f.collect(),
                    }),
                }
            }
        }
        let mut caches: Vec<(String, CacheCounters)> = lock_recovering(&self.caches)
            .iter()
            .map(|(name, probe)| (name.clone(), probe()))
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        counters.sort();
        gauges.sort();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        counter_families.sort_by(|a, b| a.name.cmp(&b.name));
        histogram_families.sort_by(|a, b| a.name.cmp(&b.name));
        caches.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
            counter_families,
            histogram_families,
            caches,
        }
    }
}

/// One span path in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEntry {
    /// `/`-separated span path.
    pub path: String,
    /// Completed span count.
    pub count: u64,
    /// Total nanoseconds.
    pub total_ns: u64,
    /// Shortest span.
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Non-empty `(bucket lower bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramEntry {
    /// Estimates the `q`-quantile of the snapshotted samples; same
    /// log2-bucket interpolation as [`Histogram::quantile`]
    /// (`crate::metrics::quantile_from_buckets`), so live handles and
    /// snapshots agree.
    ///
    /// [`Histogram::quantile`]: crate::Histogram::quantile
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        crate::metrics::quantile_from_buckets(&self.buckets, q)
    }
}

/// One labeled counter family in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterFamilyEntry {
    /// Family name.
    pub name: String,
    /// Label keys in registration order.
    pub keys: Vec<String>,
    /// `(label values, count)` rows sorted by label values; an overflow
    /// row (every value [`crate::family::OVERFLOW_LABEL`]) appears last
    /// when the cardinality cap was hit.
    pub series: Vec<(Vec<String>, u64)>,
}

/// One labeled histogram family in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramFamilyEntry {
    /// Family name.
    pub name: String,
    /// Label keys in registration order.
    pub keys: Vec<String>,
    /// `(label values, count, sum)` rows sorted by label values; an
    /// overflow row appears last when the cardinality cap was hit.
    pub series: Vec<(Vec<String>, u64, u64)>,
}

/// A deterministic, name-sorted view of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Span aggregates by path.
    pub spans: Vec<SpanEntry>,
    /// Counters by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms by name.
    pub histograms: Vec<HistogramEntry>,
    /// Labeled counter families by name.
    pub counter_families: Vec<CounterFamilyEntry>,
    /// Labeled histogram families by name.
    pub histogram_families: Vec<HistogramFamilyEntry>,
    /// Cache probes by name.
    pub caches: Vec<(String, CacheCounters)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_typed() {
        let r = registry();
        let a = r.counter("test.reg.counter");
        let b = r.counter("test.reg.counter");
        assert!(std::ptr::eq(a, b), "same name must return the same handle");
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_is_rejected() {
        let r = registry();
        let _ = r.counter("test.reg.mismatch");
        let _ = r.gauge("test.reg.mismatch");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = registry();
        r.counter("test.snap.b").add(2);
        r.counter("test.snap.a").add(1);
        r.gauge("test.snap.g").set(-4);
        r.histogram("test.snap.h").record(100);
        r.span_stat("test.snap/span").record(50);
        r.register_cache("test.snap.cache", || CacheCounters {
            hits: 9,
            misses: 1,
            inserts: 1,
            evictions: 0,
            entries: 1,
        });
        let snap = r.snapshot();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("test.snap."))
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["test.snap.a", "test.snap.b"]);
        let cache = snap
            .caches
            .iter()
            .find(|(n, _)| n == "test.snap.cache")
            .expect("cache probe present");
        assert!((cache.1.hit_rate() - 0.9).abs() < 1e-12);
        assert!(snap.spans.iter().any(|s| s.path == "test.snap/span"));
    }

    #[test]
    fn family_registration_is_idempotent_and_snapshotted() {
        let r = registry();
        let f = r.counter_family("test.reg.family", &["route", "status"]);
        let again = r.counter_family("test.reg.family", &["route", "status"]);
        assert!(std::ptr::eq(f, again), "same name returns the same family");
        f.with(&["/eco", "200"]).incr();
        r.histogram_family("test.reg.hfamily", &["route"])
            .with(&["/eco"])
            .record(40);
        let snap = r.snapshot();
        let entry = snap
            .counter_families
            .iter()
            .find(|e| e.name == "test.reg.family")
            .expect("family in snapshot");
        assert_eq!(entry.keys, vec!["route", "status"]);
        assert!(entry
            .series
            .iter()
            .any(|(vs, n)| vs == &["/eco", "200"] && *n >= 1));
        let hentry = snap
            .histogram_families
            .iter()
            .find(|e| e.name == "test.reg.hfamily")
            .expect("histogram family in snapshot");
        assert!(hentry
            .series
            .iter()
            .any(|(vs, n, s)| vs == &["/eco"] && *n >= 1 && *s >= 40));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn family_kind_mismatch_is_rejected() {
        let r = registry();
        let _ = r.counter("test.reg.fam_mismatch");
        let _ = r.counter_family("test.reg.fam_mismatch", &["k"]);
    }

    #[test]
    fn cache_reregistration_replaces_probe() {
        let r = registry();
        r.register_cache("test.reg.cache", CacheCounters::default);
        r.register_cache("test.reg.cache", || CacheCounters {
            hits: 7,
            ..CacheCounters::default()
        });
        let snap = r.snapshot();
        let hits = snap
            .caches
            .iter()
            .filter(|(n, _)| n == "test.reg.cache")
            .map(|(_, c)| c.hits)
            .collect::<Vec<_>>();
        assert_eq!(hits, vec![7], "latest probe wins, no duplicates");
    }
}
