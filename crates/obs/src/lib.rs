//! Pipeline-wide observability for the `svt` workspace.
//!
//! Three layers, std-only:
//!
//! * [`metrics`] — lock-free primitives: [`Counter`], [`Gauge`],
//!   [`Histogram`] (log2 ns buckets), and [`SpanStat`] (count/total/min/max
//!   per span path). All updates are relaxed atomics.
//! * [`mod@registry`] — a sharded global [`Registry`] (lock-striped like
//!   `svt-exec`'s memo cache) mapping names to leaked `&'static` handles,
//!   plus cache-telemetry probes registered by the caches themselves.
//!   Snapshots are name-sorted and render as a tree summary, JSON, or a
//!   Prometheus-style exposition (`render`).
//! * spans — [`span`] returns an RAII guard timing a region with
//!   `std::time::Instant` (monotonic). Guards nest through a thread-local
//!   path stack, so `span("flow")` containing `span("corner")` aggregates
//!   under `"flow/corner"`. Worker threads start a fresh stack: a span
//!   recorded inside a `svt-exec` pool task roots at its own name.
//!
//! # Overhead contract
//!
//! Tracing is controlled by `SVT_TRACE` (`off` | `summary` |
//! `json[:path]`), latched on first probe. When off, every probe is one
//! relaxed atomic load and a predictable branch — the pipeline's timing
//! results are bit-identical with tracing on, off, or compiled out
//! (`default-features = false` removes the probes entirely), and
//! `bench_pipeline` measures the off-mode cost every run. Counter and
//! histogram call sites cache their `&'static` handle in a per-site
//! `OnceLock` (see [`counter!`]), so enabled-mode updates are lock-free
//! too; only the *first* use of a name takes a shard lock.
//!
//! # Examples
//!
//! ```
//! svt_obs::set_mode(svt_obs::TraceMode::Summary);
//! {
//!     let _outer = svt_obs::span("demo.work");
//!     svt_obs::counter!("demo.items").add(3);
//! }
//! let snapshot = svt_obs::registry().snapshot();
//! assert!(snapshot.render_summary().contains("demo.work"));
//! svt_obs::set_mode(svt_obs::TraceMode::Off);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod audit;
pub mod chrome;
pub mod context;
pub mod family;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod registry;
mod render;
pub mod rss;
pub mod timeline;
pub mod tsdb;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use context::RequestContext;
pub use family::{CounterFamily, HistogramFamily};
pub use metrics::{quantile_from_buckets, Counter, Gauge, Histogram, InflightGuard, SpanStat};
pub use recorder::RequestCapsule;
pub use registry::{
    registry, CacheCounters, CounterFamilyEntry, HistogramEntry, HistogramFamilyEntry, Registry,
    Snapshot, SpanEntry,
};
pub use render::{build_info_prometheus, parse_prometheus, PromSample};

/// Environment variable selecting the trace mode.
pub const TRACE_ENV: &str = "SVT_TRACE";

/// How the pipeline reports its telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No collection; every probe is a single relaxed load.
    Off,
    /// Collect, and [`emit_if_enabled`] prints the summary tree to stderr.
    Summary,
    /// Collect, and [`emit_if_enabled`] writes the JSON snapshot to the
    /// configured path (`SVT_TRACE=json:path`, default `svt_trace.json`).
    Json,
    /// Collect aggregates *and* per-thread event timelines, and
    /// [`emit_if_enabled`] writes a Chrome/Perfetto `trace_event` JSON
    /// document (`SVT_TRACE=chrome:path`, default `svt_trace_chrome.json`).
    Chrome,
    /// Collect, and [`emit_if_enabled`] writes the Prometheus text
    /// exposition (`SVT_TRACE=prom:path`, default `svt_metrics.prom`).
    Prom,
}

/// Mode state: 0 = unresolved (read `SVT_TRACE` on next probe).
const MODE_UNSET: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_SUMMARY: u8 = 2;
const MODE_JSON: u8 = 3;
const MODE_CHROME: u8 = 4;
const MODE_PROM: u8 = 5;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn json_path_slot() -> &'static Mutex<Option<String>> {
    static PATH: Mutex<Option<String>> = Mutex::new(None);
    &PATH
}

#[cold]
fn init_mode_from_env() -> u8 {
    let raw = std::env::var(TRACE_ENV).unwrap_or_default();
    let raw = raw.trim();
    let (code, path) = if raw.eq_ignore_ascii_case("summary") {
        (MODE_SUMMARY, None)
    } else if raw.eq_ignore_ascii_case("json") {
        (MODE_JSON, None)
    } else if let Some(p) = raw.strip_prefix("json:") {
        (MODE_JSON, Some(p.to_string()))
    } else if raw.eq_ignore_ascii_case("chrome") {
        (MODE_CHROME, None)
    } else if let Some(p) = raw.strip_prefix("chrome:") {
        (MODE_CHROME, Some(p.to_string()))
    } else if raw.eq_ignore_ascii_case("prom") {
        (MODE_PROM, None)
    } else if let Some(p) = raw.strip_prefix("prom:") {
        (MODE_PROM, Some(p.to_string()))
    } else {
        // `off`, empty, unset, and anything unrecognized all disable
        // tracing — observability must never make a pipeline run fail.
        (MODE_OFF, None)
    };
    *json_path_slot().lock().expect("trace path poisoned") = path;
    MODE.store(code, Ordering::Relaxed);
    code
}

fn mode_code() -> u8 {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNSET => init_mode_from_env(),
        code => code,
    }
}

/// Whether telemetry collection is active. This is the hot-path check:
/// one relaxed atomic load after the first call.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    if !cfg!(feature = "telemetry") {
        return false;
    }
    mode_code() > MODE_OFF
}

/// The active trace mode.
#[must_use]
pub fn mode() -> TraceMode {
    if !cfg!(feature = "telemetry") {
        return TraceMode::Off;
    }
    match mode_code() {
        MODE_SUMMARY => TraceMode::Summary,
        MODE_JSON => TraceMode::Json,
        MODE_CHROME => TraceMode::Chrome,
        MODE_PROM => TraceMode::Prom,
        _ => TraceMode::Off,
    }
}

/// Whether per-thread event-timeline recording is active (Chrome mode
/// only). Like [`enabled`], one relaxed atomic load after the first call.
#[inline]
#[must_use]
pub fn timeline_enabled() -> bool {
    if !cfg!(feature = "telemetry") {
        return false;
    }
    mode_code() == MODE_CHROME
}

/// Overrides the trace mode (benchmarks and tests; normal runs latch it
/// from `SVT_TRACE` on first probe).
pub fn set_mode(mode: TraceMode) {
    let code = match mode {
        TraceMode::Off => MODE_OFF,
        TraceMode::Summary => MODE_SUMMARY,
        TraceMode::Json => MODE_JSON,
        TraceMode::Chrome => MODE_CHROME,
        TraceMode::Prom => MODE_PROM,
    };
    MODE.store(code, Ordering::Relaxed);
}

/// Re-reads `SVT_TRACE`, discarding the latched mode. Tests that vary the
/// environment mid-process call this after `std::env::set_var`.
pub fn reinit_from_env() {
    init_mode_from_env();
}

/// Destination of the JSON snapshot when the mode is [`TraceMode::Json`].
#[must_use]
pub fn json_path() -> String {
    json_path_slot()
        .lock()
        .expect("trace path poisoned")
        .clone()
        .unwrap_or_else(|| "svt_trace.json".to_string())
}

/// Destination of the emitted artifact for the active file-writing mode
/// (`SVT_TRACE=<mode>:path`, with a per-mode default otherwise).
#[must_use]
pub fn trace_path() -> String {
    let configured = json_path_slot()
        .lock()
        .expect("trace path poisoned")
        .clone();
    configured.unwrap_or_else(|| {
        match mode() {
            TraceMode::Chrome => "svt_trace_chrome.json",
            TraceMode::Prom => "svt_metrics.prom",
            _ => "svt_trace.json",
        }
        .to_string()
    })
}

/// Registers a named cache-telemetry probe on the global registry.
/// Telemetry costs the cache nothing: the probe reads the cache's own live
/// counters only when a snapshot is taken.
pub fn register_cache<F>(name: &str, probe: F)
where
    F: Fn() -> CacheCounters + Send + Sync + 'static,
{
    registry().register_cache(name, probe);
}

thread_local! {
    /// The enclosing span names of the current thread, root first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing a region; created by [`span`]. Dropping the guard
/// records the elapsed monotonic time under the guard's `/`-joined path.
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
    /// Heap bytes allocated process-wide when the span opened; only
    /// sampled while the continuous profiler is armed, so the profile
    /// can attribute allocation to stacks without touching the span's
    /// disabled path.
    alloc_start_bytes: u64,
}

/// Opens a span named `name`, nested under any enclosing spans of this
/// thread. Inert (no clock read, no allocation) when tracing is off. In
/// Chrome mode the span additionally records begin/end timeline events.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            start: None,
            name,
            alloc_start_bytes: 0,
        };
    }
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
    alloc::set_current_span(Some(name));
    if timeline_enabled() {
        timeline::record(timeline::Phase::Begin, name);
    }
    let alloc_start_bytes = if profile::enabled() {
        alloc::totals().1
    } else {
        0
    };
    Span {
        start: Some(Instant::now()),
        name,
        alloc_start_bytes,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        if timeline_enabled() {
            timeline::record(timeline::Phase::End, self.name);
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            alloc::set_current_span(stack.last().copied());
            path
        });
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        registry().span_stat(&path).record(ns);
        // Profiler-off cost inside an enabled span: one relaxed load.
        // The SAME ns value feeds both sinks, so the folded profile and
        // the registry span aggregates agree exactly.
        if profile::enabled() {
            let alloc_bytes = alloc::totals().1.saturating_sub(self.alloc_start_bytes);
            profile::record(&path, ns, alloc_bytes);
        }
    }
}

/// Records a zero-duration timeline marker (e.g. a cache miss) on the
/// current thread. Inert outside Chrome mode.
#[inline]
pub fn instant(name: &'static str) {
    if timeline_enabled() {
        timeline::record(timeline::Phase::Instant, name);
    }
}

/// The counter named by the literal, with the handle cached per call site
/// so repeated updates are a single atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// The gauge named by the literal, cached per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// The histogram named by the literal, cached per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// The labeled counter family named by the literal, with the family
/// handle cached per call site. `.with(&[...])` resolves one child;
/// see [`mod@family`] for the cardinality budget.
#[macro_export]
macro_rules! family_counter {
    ($name:expr, $keys:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::CounterFamily> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter_family($name, $keys))
    }};
}

/// The labeled histogram family named by the literal, with the family
/// handle cached per call site. `.with(&[...])` resolves one child;
/// see [`mod@family`] for the cardinality budget.
#[macro_export]
macro_rules! family_histogram {
    ($name:expr, $keys:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::HistogramFamily> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram_family($name, $keys))
    }};
}

/// Emits the collected telemetry according to the active mode: the summary
/// tree to stderr for [`TraceMode::Summary`], the JSON snapshot to
/// [`json_path`] for [`TraceMode::Json`], nothing when off. Binaries call
/// this once before exiting. Returns the rendered text, if any.
pub fn emit_if_enabled() -> Option<String> {
    match mode() {
        TraceMode::Off => None,
        TraceMode::Summary => {
            let text = registry().snapshot().render_summary();
            eprint!("{text}");
            Some(text)
        }
        TraceMode::Json => {
            let json = registry().snapshot().to_json();
            let path = trace_path();
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("svt-obs: cannot write trace JSON to `{path}`: {e}");
            }
            Some(json)
        }
        TraceMode::Chrome => {
            let timelines = timeline::snapshot_all();
            let json = chrome::render_chrome_trace(&timelines);
            let path = trace_path();
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("svt-obs: cannot write chrome trace to `{path}`: {e}");
            } else {
                eprintln!(
                    "svt-obs: wrote chrome trace ({} threads) to `{path}` — open in Perfetto",
                    timelines.len()
                );
            }
            Some(json)
        }
        TraceMode::Prom => {
            let text = registry().snapshot().to_prometheus();
            let path = trace_path();
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("svt-obs: cannot write prometheus exposition to `{path}`: {e}");
            }
            Some(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Mode state is process-global and the harness runs tests on parallel
    // threads, so every test flipping it holds this lock and restores
    // `Off` before returning.
    fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn off_mode_records_nothing() {
        let _guard = mode_lock();
        set_mode(TraceMode::Off);
        assert!(!enabled());
        {
            let _s = span("test.off.span");
            let _ = counter!("test.off.guarded");
        }
        let snap = registry().snapshot();
        assert!(
            !snap.spans.iter().any(|s| s.path.contains("test.off.span")),
            "off-mode span must not be recorded"
        );
    }

    #[test]
    fn spans_nest_into_paths() {
        let _guard = mode_lock();
        set_mode(TraceMode::Summary);
        {
            let _outer = span("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        set_mode(TraceMode::Off);
        let snap = registry().snapshot();
        let outer = snap.spans.iter().find(|s| s.path == "test.outer").unwrap();
        let inner = snap
            .spans
            .iter()
            .find(|s| s.path == "test.outer/test.inner")
            .unwrap();
        assert!(outer.count >= 1 && inner.count >= 1);
        assert!(
            outer.max_ns >= inner.min_ns,
            "outer spans contain inner spans"
        );
    }

    #[test]
    fn span_guard_survives_panic_unwinding() {
        let _guard = mode_lock();
        set_mode(TraceMode::Summary);
        let caught = std::panic::catch_unwind(|| {
            let _s = span("test.panic.span");
            panic!("boom");
        });
        assert!(caught.is_err());
        // The stack must be balanced: a fresh span roots at top level.
        {
            let _s = span("test.panic.after");
        }
        set_mode(TraceMode::Off);
        let snap = registry().snapshot();
        assert!(
            snap.spans.iter().any(|s| s.path == "test.panic.after"),
            "unwound span left the thread-local stack unbalanced"
        );
    }

    #[test]
    fn macros_cache_handles() {
        let _guard = mode_lock();
        set_mode(TraceMode::Summary);
        let a = counter!("test.macro.counter");
        let b = counter!("test.macro.counter");
        assert!(std::ptr::eq(a, b));
        a.incr();
        gauge!("test.macro.gauge").set(3);
        histogram!("test.macro.hist").record(7);
        set_mode(TraceMode::Off);
        let snap = registry().snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "test.macro.counter" && *v >= 1));
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "test.macro.gauge" && *v == 3));
        assert!(snap.histograms.iter().any(|h| h.name == "test.macro.hist"));
    }

    #[test]
    fn family_macros_cache_handles() {
        let _guard = mode_lock();
        set_mode(TraceMode::Summary);
        let a = family_counter!("test.macro.family", &["route", "status"]);
        let b = family_counter!("test.macro.family", &["route", "status"]);
        assert!(std::ptr::eq(a, b));
        a.with(&["/eco", "200"]).incr();
        family_histogram!("test.macro.hfamily", &["route"])
            .with(&["/eco"])
            .record(11);
        set_mode(TraceMode::Off);
        let snap = registry().snapshot();
        assert!(snap
            .counter_families
            .iter()
            .any(|f| f.name == "test.macro.family"
                && f.series
                    .iter()
                    .any(|(vs, n)| vs == &["/eco", "200"] && *n >= 1)));
        assert!(snap
            .histogram_families
            .iter()
            .any(|f| f.name == "test.macro.hfamily"));
    }

    #[test]
    fn env_parsing_covers_all_forms() {
        let _guard = mode_lock();
        for (raw, want_mode, want_path) in [
            ("off", TraceMode::Off, None),
            ("", TraceMode::Off, None),
            ("nonsense", TraceMode::Off, None),
            ("summary", TraceMode::Summary, None),
            ("SUMMARY", TraceMode::Summary, None),
            ("json", TraceMode::Json, None),
            ("json:/tmp/t.json", TraceMode::Json, Some("/tmp/t.json")),
            ("chrome", TraceMode::Chrome, None),
            (
                "chrome:/tmp/t_chrome.json",
                TraceMode::Chrome,
                Some("/tmp/t_chrome.json"),
            ),
            ("prom", TraceMode::Prom, None),
            ("prom:/tmp/t.prom", TraceMode::Prom, Some("/tmp/t.prom")),
        ] {
            std::env::set_var(TRACE_ENV, raw);
            reinit_from_env();
            assert_eq!(mode(), want_mode, "SVT_TRACE={raw}");
            if let Some(p) = want_path {
                assert_eq!(trace_path(), p, "SVT_TRACE={raw}");
            }
        }
        // Per-mode default paths when no `:path` suffix is given.
        for (raw, want_default) in [
            ("json", "svt_trace.json"),
            ("chrome", "svt_trace_chrome.json"),
            ("prom", "svt_metrics.prom"),
        ] {
            std::env::set_var(TRACE_ENV, raw);
            reinit_from_env();
            assert_eq!(trace_path(), want_default, "SVT_TRACE={raw}");
        }
        std::env::remove_var(TRACE_ENV);
        set_mode(TraceMode::Off);
    }

    #[test]
    fn emit_returns_summary_text() {
        let _guard = mode_lock();
        set_mode(TraceMode::Summary);
        counter!("test.emit.counter").incr();
        let text = emit_if_enabled().expect("summary mode emits");
        assert!(text.contains("svt trace summary"));
        set_mode(TraceMode::Off);
        assert!(emit_if_enabled().is_none());
    }
}
