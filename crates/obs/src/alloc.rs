//! Heap-allocation telemetry: a [`GlobalAlloc`] wrapper attributing
//! allocation count and bytes to the innermost active span.
//!
//! The workspace's litho/STA hot paths are allocation-sensitive (scratch
//! buffers, memo keys), so knowing *which span* allocates is as valuable
//! as knowing which span burns time. [`CountingAlloc`] wraps the system
//! allocator; binaries opt in with one line:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: svt_obs::alloc::CountingAlloc = svt_obs::alloc::CountingAlloc::system();
//! ```
//!
//! # Safety discipline
//!
//! The recording hook runs *inside* `malloc`, so it must never allocate,
//! lock, or panic. It therefore touches only relaxed atomics and a
//! const-initialized thread-local [`Cell`] (no lazy allocation), and
//! attributes to the innermost span's **leaf name** (a `&'static str`
//! pushed by [`crate::span`]) rather than the joined `/`-path, which
//! would require building a `String`. Two different spans sharing a leaf
//! name aggregate together; every leaf in this workspace is unique enough
//! in practice.
//!
//! # Cost contract
//!
//! Mirrors the rest of `svt-obs`: compiled out entirely without the
//! `alloc-telemetry` feature, and when compiled in but not activated (the
//! default) the hook is **one relaxed atomic load** before falling
//! through to the real allocator. [`set_active`] turns recording on —
//! `svtd` and `bench_pipeline` do this explicitly; batch runs never pay.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Runtime switch; off by default so the hook costs one relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Process-wide allocation totals (count, bytes) while active.
static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Allocations that could not claim a table slot (table full).
static UNATTRIBUTED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Leaf name of the innermost active span on this thread, maintained
    /// by `span()` / `Span::drop`. Const-init: reading it from the
    /// allocation hook never triggers a lazy TLS initializer.
    static CURRENT_SPAN: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Records the innermost active span for allocation attribution. Called
/// by [`crate::span`] and `Span::drop`; `None` when the stack empties.
#[inline]
pub(crate) fn set_current_span(name: Option<&'static str>) {
    if !cfg!(feature = "alloc-telemetry") {
        return;
    }
    // `try_with` so a span guard dropped during thread teardown (after TLS
    // destruction) degrades to "no attribution" instead of aborting.
    let _ = CURRENT_SPAN.try_with(|slot| slot.set(name));
}

/// The span leaf name allocations on this thread currently attribute to.
/// Exposed for tests asserting the panic-safety of the span stack.
#[must_use]
pub fn current_span() -> Option<&'static str> {
    CURRENT_SPAN.try_with(Cell::get).ok().flatten()
}

/// Turns allocation recording on or off at runtime. Independent of
/// `SVT_TRACE` so a daemon can watch memory even while trace mode is off.
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Relaxed);
}

/// Whether allocation recording is currently active.
#[inline]
#[must_use]
pub fn active() -> bool {
    cfg!(feature = "alloc-telemetry") && ACTIVE.load(Ordering::Relaxed)
}

/// Fixed-size open-addressing attribution table. Slots are keyed by the
/// span name's *data pointer* (string literals are deduplicated per crate,
/// so one span site maps to one slot); [`snapshot_sites`] merges by
/// content in case two crates carry an identical literal at different
/// addresses. Power of two for mask indexing.
const SLOTS: usize = 128;

struct Slot {
    /// Data pointer of the owning span name; null = free.
    name: AtomicPtr<u8>,
    /// Byte length of the owning span name; stored after the pointer is
    /// claimed, so readers skip slots still showing 0.
    len: AtomicUsize,
    count: AtomicU64,
    bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const FREE_SLOT: Slot = Slot {
    name: AtomicPtr::new(ptr::null_mut()),
    len: AtomicUsize::new(0),
    count: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
};

static TABLE: [Slot; SLOTS] = [FREE_SLOT; SLOTS];

/// The allocation hook proper: atomics only, no allocation, no panic.
#[inline]
fn record_alloc(bytes: usize) {
    if !cfg!(feature = "alloc-telemetry") {
        return;
    }
    if !ACTIVE.load(Ordering::Relaxed) {
        return; // the entire inactive cost: one relaxed load
    }
    TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    let Some(name) = CURRENT_SPAN.try_with(Cell::get).ok().flatten() else {
        return;
    };
    let key = name.as_ptr().cast_mut();
    let mut idx = (key as usize >> 4) & (SLOTS - 1);
    for _ in 0..SLOTS {
        let slot = &TABLE[idx];
        let cur = slot.name.load(Ordering::Relaxed);
        if cur != key {
            if !cur.is_null() {
                idx = (idx + 1) & (SLOTS - 1);
                continue;
            }
            match slot.name.compare_exchange(
                ptr::null_mut(),
                key,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => slot.len.store(name.len(), Ordering::Release),
                Err(winner) if winner == key => {}
                Err(_) => {
                    idx = (idx + 1) & (SLOTS - 1);
                    continue;
                }
            }
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        return;
    }
    UNATTRIBUTED.fetch_add(1, Ordering::Relaxed);
}

/// Allocation totals attributed to one span leaf name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Span leaf name the allocations happened under.
    pub span: &'static str,
    /// Number of heap allocations (realloc growth counts once).
    pub count: u64,
    /// Total bytes requested.
    pub bytes: u64,
}

/// Process-wide `(count, bytes)` totals recorded while active.
#[must_use]
pub fn totals() -> (u64, u64) {
    (
        TOTAL_COUNT.load(Ordering::Relaxed),
        TOTAL_BYTES.load(Ordering::Relaxed),
    )
}

/// Allocations that landed while no slot was claimable (full table).
#[must_use]
pub fn unattributed() -> u64 {
    UNATTRIBUTED.load(Ordering::Relaxed)
}

/// Zeroes the totals and every per-span counter, keeping claimed slot
/// names. Lets a benchmark isolate one measured section (warm up, reset,
/// measure) instead of reporting cumulative process history. Counters
/// racing with a live hook are zeroed on a best-effort basis — call it
/// between sections, not under concurrent load.
pub fn reset() {
    TOTAL_COUNT.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
    UNATTRIBUTED.store(0, Ordering::Relaxed);
    for slot in &TABLE {
        slot.count.store(0, Ordering::Relaxed);
        slot.bytes.store(0, Ordering::Relaxed);
    }
}

/// The per-span attribution table, merged by span name content and sorted
/// by name. Cheap (reads at most one atomic triple per table slot); safe to call from a
/// scrape handler while the hook is live.
#[must_use]
pub fn snapshot_sites() -> Vec<AllocSite> {
    let mut sites: Vec<AllocSite> = Vec::new();
    for slot in &TABLE {
        let name = slot.name.load(Ordering::Relaxed);
        if name.is_null() {
            continue;
        }
        let len = slot.len.load(Ordering::Acquire);
        if len == 0 {
            // Claimed a heartbeat ago; its length store hasn't landed.
            continue;
        }
        // SAFETY: `name`/`len` were published from a `&'static str`'s data
        // pointer and byte length, so the region is live, immutable UTF-8.
        let span = unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(name, len)) };
        let count = slot.count.load(Ordering::Relaxed);
        let bytes = slot.bytes.load(Ordering::Relaxed);
        if let Some(existing) = sites.iter_mut().find(|s| s.span == span) {
            existing.count += count;
            existing.bytes += bytes;
        } else {
            sites.push(AllocSite { span, count, bytes });
        }
    }
    sites.sort_by(|a, b| a.span.cmp(b.span));
    sites
}

/// Pushes the current allocation totals and per-span attribution into the
/// global registry as gauges (`alloc.total.count`, `alloc.total.bytes`,
/// `alloc.span.<leaf>.bytes`, …) so they ride along in every snapshot,
/// exposition, and scrape. Allocates freely — never call from the hook.
pub fn publish_gauges() {
    let (count, bytes) = totals();
    let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    crate::registry()
        .gauge("alloc.total.count")
        .set(clamp(count));
    crate::registry()
        .gauge("alloc.total.bytes")
        .set(clamp(bytes));
    crate::registry()
        .gauge("alloc.unattributed.count")
        .set(clamp(unattributed()));
    for site in snapshot_sites() {
        crate::registry()
            .gauge(&format!("alloc.span.{}.count", site.span))
            .set(clamp(site.count));
        crate::registry()
            .gauge(&format!("alloc.span.{}.bytes", site.span))
            .set(clamp(site.bytes));
    }
}

/// A [`GlobalAlloc`] wrapper that forwards to `A` and, while
/// [`set_active`] is on, attributes each allocation to the innermost
/// active span. Deallocations are forwarded untouched: the telemetry
/// answers "who allocates", and churn shows up in `count` regardless.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc<A = System>(A);

impl CountingAlloc<System> {
    /// The system allocator, wrapped. `const` so it can initialize a
    /// `#[global_allocator]` static.
    #[must_use]
    pub const fn system() -> CountingAlloc<System> {
        CountingAlloc(System)
    }
}

// SAFETY: forwards every call verbatim to the inner allocator; the
// recording hook touches only atomics and a const-init TLS cell, so the
// GlobalAlloc contract (no unwinding, no reentrant allocation) holds.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.0.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.0.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.0.realloc(ptr, layout, new_size);
        if !p.is_null() && new_size > layout.size() {
            record_alloc(new_size - layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.0.dealloc(ptr, layout);
    }
}
