//! A minimal std-only JSON value and recursive-descent parser.
//!
//! The vendored `serde` is a derive stand-in, not a parser, so everything
//! in the workspace that must *read* JSON — the Chrome-trace validator in
//! [`crate::chrome`], the `svt-serve` request bodies — goes through this
//! module. It parses the full JSON grammar (objects keep document order,
//! numbers are `f64`) and is deliberately small: documents here are
//! machine-generated telemetry and requests, not adversarial input, but
//! the parser still rejects malformed text with a positioned error rather
//! than guessing.
//!
//! # Examples
//!
//! ```
//! use svt_obs::json::JsonValue;
//!
//! let doc = JsonValue::parse(r#"{"edit": {"dx_nm": -120.5, "ok": true}}"#)?;
//! let edit = doc.get("edit").expect("object field");
//! assert_eq!(edit.get("dx_nm").and_then(JsonValue::as_f64), Some(-120.5));
//! assert_eq!(edit.get("ok").and_then(JsonValue::as_bool), Some(true));
//! # Ok::<(), String>(())
//! ```

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array, document order.
    Array(Vec<JsonValue>),
    /// An object as `(key, value)` pairs, document order (duplicate keys
    /// are kept; [`JsonValue::get`] returns the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing bytes are an error).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        JsonParser::new(text).parse_document()
    }

    /// The value of an object field, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a number
    /// that is one (no fractional part, not negative).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Escapes a string for embedding inside a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<JsonValue, String> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(JsonValue::String(self.parse_string()?)),
            b't' => self.parse_literal("true", JsonValue::Bool(true)),
            b'f' => self.parse_literal("false", JsonValue::Bool(false)),
            b'n' => self.parse_literal("null", JsonValue::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("invalid number at offset {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape `\\{}`", char::from(other))),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full sequence through.
                    let len = match b {
                        0xF0..=0xF7 => 4,
                        0xE0..=0xEF => 3,
                        0xC0..=0xDF => 2,
                        _ => 1,
                    };
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or("invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents_with_accessors() {
        let doc = JsonValue::parse(
            r#"{"type": "resize", "row": 3, "dx": -1.5, "tags": ["a", "b"], "on": false, "none": null}"#,
        )
        .unwrap();
        assert_eq!(doc.get("type").and_then(JsonValue::as_str), Some("resize"));
        assert_eq!(doc.get("row").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(doc.get("dx").and_then(JsonValue::as_f64), Some(-1.5));
        assert_eq!(doc.get("dx").and_then(JsonValue::as_u64), None, "negative");
        assert_eq!(doc.get("on").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(doc.get("none"), Some(&JsonValue::Null));
        assert_eq!(
            doc.get("tags")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.as_object().map(<[_]>::len), Some(6));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\": 01x}"] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "we\"ird\\na\nme\twith\u{1F600}";
        let doc = format!("{{\"k\": \"{}\"}}", escape_json(original));
        let parsed = JsonValue::parse(&doc).unwrap();
        assert_eq!(parsed.get("k").and_then(JsonValue::as_str), Some(original));
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        assert_eq!(escape_json("a\u{1}b"), "a\\u0001b");
        let doc = JsonValue::parse("{\"k\": \"a\\u0001b\"}").unwrap();
        assert_eq!(doc.get("k").and_then(JsonValue::as_str), Some("a\u{1}b"));
    }
}
