//! Labeled metric families: one logical metric fanned out over a small,
//! bounded set of label values.
//!
//! A family is registered once with a fixed set of **label keys** (e.g.
//! `{route, design, status}`); each distinct combination of label
//! *values* lazily materializes a child [`Counter`] or [`Histogram`].
//! Children are leaked `&'static` handles exactly like plain registry
//! metrics, so once a call site holds a child the update path is the
//! same relaxed atomic — the family lookup itself takes a short mutex
//! and a linear scan, which is fine at request rate (the macros in the
//! crate root cache the *family* handle per call site; callers on a true
//! hot loop should also cache the child).
//!
//! # Cardinality budget
//!
//! Label values must come from small closed sets (route classes, design
//! names, status codes) — never from unbounded input like raw paths.
//! As a backstop each family holds at most [`MAX_SERIES`] distinct
//! label-value sets; combinations beyond the cap share one **overflow**
//! child whose labels all render as `"overflow"`, so a cardinality bug
//! shows up in `/metrics` as an `overflow` series instead of unbounded
//! memory growth.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::metrics::{Counter, Histogram};

/// Maximum distinct label-value sets per family before new combinations
/// collapse into the shared overflow child.
pub const MAX_SERIES: usize = 64;

/// Rendered label value for series beyond the cardinality cap.
pub const OVERFLOW_LABEL: &str = "overflow";

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared family plumbing: the label keys plus the series table of one
/// metric kind `T`.
struct FamilyCore<T: 'static> {
    keys: OnceLock<Vec<String>>,
    series: Mutex<Vec<(Vec<String>, &'static T)>>,
    overflow: T,
}

impl<T: Default> Default for FamilyCore<T> {
    fn default() -> FamilyCore<T> {
        FamilyCore {
            keys: OnceLock::new(),
            series: Mutex::new(Vec::new()),
            overflow: T::default(),
        }
    }
}

impl<T: Default> FamilyCore<T> {
    /// Binds the label keys on first registration; later registrations
    /// must agree (same contract as a metric-kind mismatch).
    fn bind_keys(&self, name: &str, keys: &[&str]) {
        let bound = self
            .keys
            .get_or_init(|| keys.iter().map(|k| (*k).to_string()).collect());
        if bound.len() != keys.len() || !bound.iter().zip(keys).all(|(a, b)| a == b) {
            panic!(
                "metric family `{name}` already registered with label keys \
                 {bound:?}, not {keys:?}"
            );
        }
    }

    fn keys(&self) -> &[String] {
        self.keys.get().map_or(&[], Vec::as_slice)
    }

    /// The child for `values`, creating it while under the cap; beyond
    /// the cap, the shared overflow child.
    fn child(&'static self, name: &str, values: &[&str]) -> &'static T {
        let keys = self.keys();
        assert_eq!(
            values.len(),
            keys.len(),
            "metric family `{name}` takes {} label value(s), got {}",
            keys.len(),
            values.len()
        );
        let mut series = lock_recovering(&self.series);
        if let Some((_, child)) = series
            .iter()
            .find(|(vs, _)| vs.len() == values.len() && vs.iter().zip(values).all(|(a, b)| a == b))
        {
            return child;
        }
        if series.len() >= MAX_SERIES {
            return &self.overflow;
        }
        let leaked: &'static T = Box::leak(Box::default());
        series.push((values.iter().map(|v| (*v).to_string()).collect(), leaked));
        leaked
    }

    /// Name-sorted `(label values, child)` view for snapshots.
    fn collect(&self) -> Vec<(Vec<String>, &'static T)> {
        let mut out: Vec<(Vec<String>, &'static T)> = lock_recovering(&self.series)
            .iter()
            .map(|(vs, c)| (vs.clone(), *c))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn cardinality(&self) -> usize {
        lock_recovering(&self.series).len()
    }
}

/// A counter fanned out over label values.
#[derive(Default)]
pub struct CounterFamily {
    core: FamilyCore<Counter>,
    name: OnceLock<String>,
}

impl CounterFamily {
    pub(crate) fn bind(&self, name: &str, keys: &[&str]) {
        let _ = self.name.get_or_init(|| name.to_string());
        self.core.bind_keys(name, keys);
    }

    fn name(&self) -> &str {
        self.name.get().map_or("?", String::as_str)
    }

    /// The label keys this family was registered with.
    #[must_use]
    pub fn keys(&self) -> &[String] {
        self.core.keys()
    }

    /// The child counter for one set of label values, creating it on
    /// first use. Past [`MAX_SERIES`] distinct sets, returns the shared
    /// overflow child.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the registered key count.
    pub fn with(&'static self, values: &[&str]) -> &'static Counter {
        self.core.child(self.name(), values)
    }

    /// Number of real (non-overflow) series.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.core.cardinality()
    }

    /// Count accumulated by the overflow child.
    #[must_use]
    pub fn overflow_count(&self) -> u64 {
        self.core.overflow.get()
    }

    pub(crate) fn collect(&self) -> Vec<(Vec<String>, u64)> {
        let mut out: Vec<(Vec<String>, u64)> = self
            .core
            .collect()
            .into_iter()
            .map(|(vs, c)| (vs, c.get()))
            .collect();
        if self.overflow_count() > 0 {
            let vs = vec![OVERFLOW_LABEL.to_string(); self.keys().len()];
            out.push((vs, self.overflow_count()));
        }
        out
    }

    pub(crate) fn reset(&self) {
        for (_, c) in lock_recovering(&self.core.series).iter() {
            c.reset();
        }
        self.core.overflow.reset();
    }
}

/// A histogram fanned out over label values.
#[derive(Default)]
pub struct HistogramFamily {
    core: FamilyCore<Histogram>,
    name: OnceLock<String>,
}

impl HistogramFamily {
    pub(crate) fn bind(&self, name: &str, keys: &[&str]) {
        let _ = self.name.get_or_init(|| name.to_string());
        self.core.bind_keys(name, keys);
    }

    fn name(&self) -> &str {
        self.name.get().map_or("?", String::as_str)
    }

    /// The label keys this family was registered with.
    #[must_use]
    pub fn keys(&self) -> &[String] {
        self.core.keys()
    }

    /// The child histogram for one set of label values, creating it on
    /// first use. Past [`MAX_SERIES`] distinct sets, returns the shared
    /// overflow child.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the registered key count.
    pub fn with(&'static self, values: &[&str]) -> &'static Histogram {
        self.core.child(self.name(), values)
    }

    /// Number of real (non-overflow) series.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.core.cardinality()
    }

    pub(crate) fn collect(&self) -> Vec<(Vec<String>, u64, u64)> {
        let mut out: Vec<(Vec<String>, u64, u64)> = self
            .core
            .collect()
            .into_iter()
            .map(|(vs, h)| (vs, h.count(), h.sum()))
            .collect();
        if self.core.overflow.count() > 0 {
            let vs = vec![OVERFLOW_LABEL.to_string(); self.keys().len()];
            out.push((vs, self.core.overflow.count(), self.core.overflow.sum()));
        }
        out
    }

    pub(crate) fn reset(&self) {
        for (_, h) in lock_recovering(&self.core.series).iter() {
            h.reset();
        }
        self.core.overflow.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_counter_family(name: &str, keys: &[&str]) -> &'static CounterFamily {
        let fam: &'static CounterFamily = Box::leak(Box::default());
        fam.bind(name, keys);
        fam
    }

    #[test]
    fn children_are_cached_per_label_set() {
        let fam = leaked_counter_family("test.fam.cache", &["route", "status"]);
        let a = fam.with(&["/eco", "200"]);
        let b = fam.with(&["/eco", "200"]);
        assert!(std::ptr::eq(a, b), "same labels, same child");
        let c = fam.with(&["/eco", "500"]);
        assert!(!std::ptr::eq(a, c), "different labels, different child");
        a.add(2);
        c.incr();
        assert_eq!(fam.cardinality(), 2);
        let series = fam.collect();
        assert_eq!(
            series,
            vec![
                (vec!["/eco".to_string(), "200".to_string()], 2),
                (vec!["/eco".to_string(), "500".to_string()], 1),
            ]
        );
    }

    #[test]
    fn cardinality_cap_routes_to_overflow() {
        let fam = leaked_counter_family("test.fam.cap", &["k"]);
        for i in 0..MAX_SERIES {
            fam.with(&[&format!("v{i}")]).incr();
        }
        assert_eq!(fam.cardinality(), MAX_SERIES);
        // Exactly at the cap: the next *new* set overflows, but existing
        // sets still resolve to their own children.
        let over = fam.with(&["one-too-many"]);
        over.incr();
        let over2 = fam.with(&["another"]);
        over2.add(2);
        assert!(std::ptr::eq(over, over2), "all overflow sets share a child");
        assert_eq!(fam.cardinality(), MAX_SERIES, "cap holds");
        assert_eq!(fam.overflow_count(), 3);
        let known = fam.with(&["v0"]);
        known.incr();
        assert_eq!(known.get(), 2, "pre-cap series keep their own child");
        let series = fam.collect();
        let overflow_row = series.last().expect("overflow row present");
        assert_eq!(overflow_row.0, vec![OVERFLOW_LABEL.to_string()]);
        assert_eq!(overflow_row.1, 3);
    }

    #[test]
    #[should_panic(expected = "label value")]
    fn wrong_value_count_panics() {
        let fam = leaked_counter_family("test.fam.arity", &["a", "b"]);
        let _ = fam.with(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "already registered with label keys")]
    fn key_mismatch_panics() {
        let fam = leaked_counter_family("test.fam.keys", &["a"]);
        fam.bind("test.fam.keys", &["b"]);
    }

    #[test]
    fn histogram_family_collects_count_and_sum() {
        let fam: &'static HistogramFamily = Box::leak(Box::default());
        fam.bind("test.fam.hist", &["route"]);
        fam.with(&["/eco"]).record(100);
        fam.with(&["/eco"]).record(50);
        fam.with(&["/timing"]).record(7);
        let series = fam.collect();
        assert_eq!(
            series,
            vec![
                (vec!["/eco".to_string()], 2, 150),
                (vec!["/timing".to_string()], 1, 7),
            ]
        );
        fam.reset();
        assert!(fam.collect().is_empty() || fam.collect().iter().all(|s| s.1 == 0));
    }
}
