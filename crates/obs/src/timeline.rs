//! Event-timeline recording: bounded per-thread ring buffers of
//! timestamped begin/end/instant events.
//!
//! This is the second observability layer (the first — [`mod@crate::registry`]
//! — aggregates spans into counters and loses the *when*). The timeline
//! keeps the raw event stream so a run can be rendered as a
//! Chrome/Perfetto trace ([`crate::chrome`]) showing worker occupancy,
//! cache-miss stalls, and per-corner STA waves.
//!
//! Design:
//!
//! * **One ring per thread.** Every recording thread owns a [`Ring`]; the
//!   owner is the only writer, so pushes are plain relaxed stores plus one
//!   release store of the head index — no lock, no CAS loop. Readers
//!   ([`snapshot_all`]) only run at export time.
//! * **Bounded, newest-wins.** A full ring wraps and overwrites the
//!   *oldest* events; the head index counts every push ever made, so the
//!   drop count is exact: `head.saturating_sub(capacity)`.
//! * **Interned names.** Events store a `u32` id into a global name
//!   table instead of a pointer, so a torn read across a wrap race can at
//!   worst mislabel an event — it can never fabricate an invalid string.
//!   Interning is cached in a thread-local map keyed by the `&'static
//!   str`'s address, so the hot path takes no global lock after a name's
//!   first use on a thread.
//! * **Ring reuse.** `svt-exec` spawns scoped workers per batch; when a
//!   thread exits, its ring returns to a free list and the next new thread
//!   adopts it (and its timeline id). Resident memory is therefore bounded
//!   by the *peak concurrent* thread count, not the total spawned.
//!
//! Recording is active only in [`crate::TraceMode::Chrome`] — every other
//! mode leaves [`crate::timeline_enabled`] false and the probes inert.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Environment variable overriding the per-thread ring capacity.
pub const CAPACITY_ENV: &str = "SVT_TRACE_BUF";

/// The kind of a timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A region opened (Chrome `"B"`).
    Begin,
    /// A region closed (Chrome `"E"`).
    End,
    /// A point event (Chrome `"i"`).
    Instant,
}

impl Phase {
    fn to_code(self) -> u64 {
        match self {
            Phase::Begin => 0,
            Phase::End => 1,
            Phase::Instant => 2,
        }
    }

    fn from_code(code: u64) -> Phase {
        match code {
            0 => Phase::Begin,
            1 => Phase::End,
            _ => Phase::Instant,
        }
    }
}

/// One decoded timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Event name (resolved from the intern table).
    pub name: &'static str,
    /// Begin / end / instant.
    pub phase: Phase,
}

/// The recorded timeline of one thread (or one reused worker slot).
#[derive(Debug, Clone)]
pub struct ThreadTimeline {
    /// Stable timeline id (1-based; becomes the Chrome `tid`).
    pub tid: u32,
    /// Events oldest-first. At most one ring capacity of the newest.
    pub events: Vec<Event>,
    /// Events lost to ring wraparound, counted exactly.
    pub dropped: u64,
}

/// A bounded single-writer ring buffer of timeline events.
///
/// The owning thread is the only writer; concurrent snapshot reads are
/// safe (every word is atomic) and at worst observe a torn *label* for an
/// event being overwritten mid-read — never an invalid one.
#[derive(Debug)]
pub struct Ring {
    tid: u32,
    capacity: usize,
    /// Total events ever pushed; slot `i % capacity` holds push `i`.
    head: AtomicU64,
    ts: Box<[AtomicU64]>,
    /// `name_id << 8 | phase`.
    meta: Box<[AtomicU64]>,
}

impl Ring {
    /// Creates a detached ring (tests; runtime rings come from the global
    /// pool). `capacity` is clamped to at least 2 so a begin/end pair fits.
    #[must_use]
    pub fn with_capacity(tid: u32, capacity: usize) -> Ring {
        let capacity = capacity.max(2);
        Ring {
            tid,
            capacity,
            head: AtomicU64::new(0),
            ts: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            meta: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The timeline id this ring reports under.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Pushes one event, overwriting the oldest when full.
    pub fn push(&self, ts_ns: u64, name_id: u32, phase: Phase) {
        let head = self.head.load(Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let slot = (head % self.capacity as u64) as usize;
        self.ts[slot].store(ts_ns, Ordering::Relaxed);
        self.meta[slot].store(u64::from(name_id) << 8 | phase.to_code(), Ordering::Relaxed);
        // Publish: a reader that Acquire-loads the head sees the slot
        // contents of every push it counts.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Decodes the retained events (oldest-first) and the exact number of
    /// events lost to wraparound.
    #[must_use]
    pub fn snapshot(&self) -> ThreadTimeline {
        let head = self.head.load(Ordering::Acquire);
        let retained = head.min(self.capacity as u64);
        let dropped = head - retained;
        let mut events = Vec::with_capacity(usize::try_from(retained).unwrap_or(0));
        for i in dropped..head {
            #[allow(clippy::cast_possible_truncation)]
            let slot = (i % self.capacity as u64) as usize;
            let meta = self.meta[slot].load(Ordering::Relaxed);
            #[allow(clippy::cast_possible_truncation)]
            let name_id = (meta >> 8) as u32;
            events.push(Event {
                ts_ns: self.ts[slot].load(Ordering::Relaxed),
                name: name_of(name_id),
                phase: Phase::from_code(meta & 0xff),
            });
        }
        ThreadTimeline {
            tid: self.tid,
            events,
            dropped,
        }
    }

    /// Forgets every recorded event and resets the drop count.
    pub fn reset(&self) {
        self.head.store(0, Ordering::Release);
    }
}

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Every ring ever created through the global pool, in tid order.
fn all_rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Rings whose owning thread has exited, available for adoption.
fn free_rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static FREE: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    FREE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Global intern table: id -> name. Names are `&'static str`, so the table
/// only ever grows by the (small, static) set of instrumentation names.
fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

fn name_of(id: u32) -> &'static str {
    lock_recovering(names())
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

/// The per-thread ring capacity: `SVT_TRACE_BUF` or the default, latched
/// on first use.
fn ring_capacity() -> usize {
    static CAPACITY: OnceLock<usize> = OnceLock::new();
    *CAPACITY.get_or_init(|| {
        std::env::var(CAPACITY_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n >= 2)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

/// The process trace epoch: timestamps are nanoseconds since this instant.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    /// The ring this thread records into, adopted or created on first use.
    /// The guard returns the ring to the free list when the thread exits.
    static LOCAL_RING: RefCell<Option<RingGuard>> = const { RefCell::new(None) };
    /// Per-thread intern cache: `&'static str` address -> global name id.
    static LOCAL_NAMES: RefCell<HashMap<usize, u32>> = RefCell::new(HashMap::new());
}

struct RingGuard(Arc<Ring>);

impl Drop for RingGuard {
    fn drop(&mut self) {
        lock_recovering(free_rings()).push(Arc::clone(&self.0));
    }
}

fn intern(name: &'static str) -> u32 {
    LOCAL_NAMES.with(|cache| {
        *cache
            .borrow_mut()
            .entry(name.as_ptr() as usize)
            .or_insert_with(|| {
                let mut table = lock_recovering(names());
                if let Some(pos) = table.iter().position(|n| *n == name) {
                    u32::try_from(pos).unwrap_or(u32::MAX)
                } else {
                    table.push(name);
                    u32::try_from(table.len() - 1).unwrap_or(u32::MAX)
                }
            })
    })
}

/// Records one event on the current thread's ring. Callers gate this on
/// [`crate::timeline_enabled`]; the function itself is unconditional so
/// tests can drive it directly.
pub fn record(phase: Phase, name: &'static str) {
    let ts = now_ns();
    let id = intern(name);
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let guard = slot.get_or_insert_with(|| {
            let adopted = lock_recovering(free_rings()).pop();
            let ring = adopted.unwrap_or_else(|| {
                let mut all = lock_recovering(all_rings());
                let tid = u32::try_from(all.len() + 1).unwrap_or(u32::MAX);
                let ring = Arc::new(Ring::with_capacity(tid, ring_capacity()));
                all.push(Arc::clone(&ring));
                ring
            });
            RingGuard(ring)
        });
        guard.0.push(ts, id, phase);
    });
}

/// Snapshots every thread timeline ever recorded, tid-ascending. Safe to
/// call while other threads are still recording (their newest events may
/// be missed or, across a wrap, mislabeled — the export path runs after
/// the workload has quiesced).
#[must_use]
pub fn snapshot_all() -> Vec<ThreadTimeline> {
    lock_recovering(all_rings())
        .iter()
        .map(|ring| ring.snapshot())
        .collect()
}

/// Snapshots the ring owned by the *current* thread, if it has recorded
/// anything. The flight recorder ([`mod@crate::recorder`]) uses this to
/// slice one request's events out of the handler thread's own timeline
/// without touching other threads' rings.
#[must_use]
pub fn snapshot_current() -> Option<ThreadTimeline> {
    LOCAL_RING
        .try_with(|slot| slot.borrow().as_ref().map(|guard| guard.0.snapshot()))
        .ok()
        .flatten()
}

/// Clears every recorded event and drop count (rings and tids survive).
/// Benchmarks call this between phases they want traced in isolation.
pub fn reset_all() {
    for ring in lock_recovering(all_rings()).iter() {
        ring.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_newest_and_counts_drops_exactly() {
        let ring = Ring::with_capacity(7, 8);
        for i in 0..20u64 {
            ring.push(i, intern("t.ring.ev"), Phase::Instant);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.tid, 7);
        assert_eq!(snap.dropped, 12, "20 pushes into 8 slots drop exactly 12");
        assert_eq!(snap.events.len(), 8);
        let ts: Vec<u64> = snap.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, (12..20).collect::<Vec<u64>>(), "newest 8 retained");
    }

    #[test]
    fn ring_below_capacity_drops_nothing() {
        let ring = Ring::with_capacity(1, 16);
        ring.push(5, intern("t.ring.b"), Phase::Begin);
        ring.push(9, intern("t.ring.b"), Phase::End);
        let snap = ring.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].phase, Phase::Begin);
        assert_eq!(snap.events[1].phase, Phase::End);
        assert_eq!(snap.events[0].name, "t.ring.b");
        ring.reset();
        assert!(ring.snapshot().events.is_empty());
    }

    #[test]
    fn interning_dedupes_by_content() {
        let a = intern("t.intern.same");
        // A distinct static with identical content must map to one id.
        let other: &'static str = Box::leak("t.intern.same".to_string().into_boxed_str());
        let b = intern(other);
        assert_eq!(a, b);
        assert_eq!(name_of(a), "t.intern.same");
    }

    #[test]
    fn snapshot_current_sees_only_this_thread() {
        std::thread::spawn(|| {
            assert!(
                snapshot_current().is_none(),
                "a thread that never recorded has no current timeline"
            );
            record(Phase::Instant, "t.current.mark");
            let tl = snapshot_current().expect("recording created a ring");
            assert!(tl.events.iter().any(|e| e.name == "t.current.mark"));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
