//! End-to-end test of the allocation-attribution hook with the counting
//! allocator actually installed as the process `#[global_allocator]` —
//! exactly how `svtd` and `bench_pipeline` run it.
//!
//! One `#[test]` only: the hook's totals and activity switch are
//! process-global, and a sibling test allocating concurrently would make
//! exact passthrough assertions racy.

use svt_obs::alloc::{self, CountingAlloc};
use svt_obs::TraceMode;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

#[test]
fn hook_attributes_to_innermost_span_and_is_inert_when_inactive() {
    // Inactive (the default): the wrapper is a pure passthrough and
    // records nothing, whatever the trace mode says.
    svt_obs::set_mode(TraceMode::Summary);
    let before = alloc::totals();
    {
        let _s = svt_obs::span("t.alloc.cold");
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        std::hint::black_box(&v);
    }
    assert_eq!(alloc::totals(), before, "inactive hook must record nothing");
    assert!(!alloc::active());

    // Active: totals move and the bytes land on the innermost span leaf.
    alloc::set_active(true);
    {
        let _outer = svt_obs::span("t.alloc.outer");
        let big: Vec<u8> = Vec::with_capacity(1 << 20);
        std::hint::black_box(&big);
        {
            let _inner = svt_obs::span("t.alloc.inner");
            let nested: Vec<u8> = Vec::with_capacity(1 << 18);
            std::hint::black_box(&nested);
        }
        // Growth through realloc counts the grown bytes.
        let mut grow: Vec<u8> = Vec::with_capacity(16);
        grow.resize(1 << 12, 0);
        std::hint::black_box(&grow);
    }
    alloc::set_active(false);

    let (count, bytes) = alloc::totals();
    assert!(count > before.0, "active hook counts allocations");
    assert!(
        bytes - before.1 >= (1 << 20) + (1 << 18),
        "active hook counts bytes (saw {} new)",
        bytes - before.1
    );

    let sites = alloc::snapshot_sites();
    let site = |name: &str| {
        sites
            .iter()
            .find(|s| s.span == name)
            .unwrap_or_else(|| panic!("no attribution for `{name}` in {sites:?}"))
    };
    assert!(
        site("t.alloc.outer").bytes >= 1 << 20,
        "outer span owns its own allocations: {sites:?}"
    );
    assert!(
        site("t.alloc.inner").bytes >= 1 << 18,
        "nested bytes attribute to the innermost leaf, not the root"
    );
    assert!(
        site("t.alloc.inner").bytes < 1 << 20,
        "the outer MiB must not leak into the inner leaf"
    );
    assert!(!sites.iter().any(|s| s.span == "t.alloc.cold"));
    assert!(sites.windows(2).all(|w| w[0].span < w[1].span), "sorted");

    // Once recorded the sites publish into the registry as gauges.
    alloc::publish_gauges();
    svt_obs::rss::publish_gauges();
    svt_obs::set_mode(TraceMode::Off);
    let snap = svt_obs::registry().snapshot();
    let gauge = |name: &str| {
        snap.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("gauge `{name}` missing"))
    };
    assert!(gauge("alloc.total.bytes") >= (1 << 20) as i64);
    assert!(gauge("alloc.span.t.alloc.inner.bytes") >= (1 << 18) as i64);
    // RSS gauges ride along on Linux; tolerate their absence elsewhere.
    if svt_obs::rss::sample().is_some() {
        assert!(gauge("proc.rss_kb") > 0);
        assert!(gauge("proc.rss_peak_kb") >= gauge("proc.rss_kb"));
    }
}
