//! Chrome-exporter sanitization driven by a *real* wrapped ring, not a
//! hand-built event list: wraparound drops the oldest events, which can
//! strand an `E` whose `B` was overwritten and a `B` whose `E` never
//! arrived. The exporter must skip the former, close the latter, and the
//! result must satisfy the validator's balance invariants.
//!
//! Single `#[test]`: the ring capacity (`SVT_TRACE_BUF`) latches once per
//! process and the recording thread's ring joins the global pool.

use svt_obs::chrome::{render_chrome_trace, validate_chrome_trace};
use svt_obs::timeline::{self, Phase};

#[test]
fn wrapped_ring_sanitizes_orphan_end_and_open_begin() {
    // Must precede the first recorded event anywhere in this process.
    std::env::set_var(timeline::CAPACITY_ENV, "4");

    std::thread::spawn(|| {
        // Capacity 4. Push 6 events; the first two are overwritten:
        //   dropped:  B w.outer, i w.fill
        //   retained: i w.fill, i w.fill, E w.outer (orphan), B w.open
        timeline::record(Phase::Begin, "w.outer");
        for _ in 0..3 {
            timeline::record(Phase::Instant, "w.fill");
        }
        timeline::record(Phase::End, "w.outer");
        timeline::record(Phase::Begin, "w.open");
    })
    .join()
    .expect("recorder thread");

    let timelines = timeline::snapshot_all();
    let wrapped = timelines
        .iter()
        .find(|t| t.dropped > 0)
        .expect("the recorder's ring wrapped");
    assert_eq!(wrapped.dropped, 2, "6 pushes into 4 slots drop exactly 2");
    assert_eq!(wrapped.events.len(), 4);
    assert_eq!(wrapped.events[2].name, "w.outer");
    assert_eq!(wrapped.events[2].phase, Phase::End, "orphan E retained");
    assert_eq!(wrapped.events[3].name, "w.open");
    assert_eq!(wrapped.events[3].phase, Phase::Begin, "open B retained");

    let json = render_chrome_trace(&timelines);
    let stats = validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("sanitized wrapped ring must validate: {e}\n{json}"));

    // The orphan E vanished entirely (nothing to close)…
    assert!(
        !stats.events.iter().any(|e| e.name == "w.outer"),
        "orphan E must be skipped: {:?}",
        stats.events
    );
    // …and the open B was closed at the thread's last timestamp.
    let open: Vec<_> = stats.events.iter().filter(|e| e.name == "w.open").collect();
    assert_eq!(open.len(), 2, "open B gets a synthetic E: {open:?}");
    assert_eq!(open[0].ph, "B");
    assert_eq!(open[1].ph, "E");
    assert!(open[1].ts_us >= open[0].ts_us);
    // The two dropped events surface as a counter record, never silently.
    assert!(stats
        .events
        .iter()
        .any(|e| e.name == "svt.timeline.dropped" && e.ph == "C"));

    std::env::remove_var(timeline::CAPACITY_ENV);
}
