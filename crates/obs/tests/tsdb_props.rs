//! Property suite for the embedded TSDB's downsampling algebra.
//!
//! The whole long-horizon story rests on three invariants of
//! [`svt_obs::tsdb::Bin`] and the tier rings built from it: merging
//! conserves the sample count (nothing is dropped or double-counted when
//! a coarser tier folds raw points together), the min/max envelope only
//! ever widens to *contain* the observed values (downsampling never
//! invents an outlier), and re-merging across a tier boundary is
//! grouping-independent (the 10-minute ring agrees with the 1-minute
//! ring folded again). Each property drives the real ingest/query path
//! with randomized value streams and irregular timestamp gaps.

use proptest::prelude::*;
use svt_obs::tsdb::{Bin, TierSpec, Tsdb, TsdbConfig};

/// A store with a single tier so a query reads that ring verbatim.
fn single_tier(width_ms: u64, cap: usize) -> Tsdb {
    Tsdb::new(TsdbConfig {
        tiers: vec![TierSpec { width_ms, cap }],
    })
}

/// Turns per-sample gaps into absolute timestamps starting at `t0`.
fn timeline(t0: u64, gaps: &[u64]) -> Vec<u64> {
    let mut ts = Vec::with_capacity(gaps.len());
    let mut now = t0;
    for gap in gaps {
        now += gap;
        ts.push(now);
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Folding any value stream into one bin conserves the count and
    /// keeps the envelope exactly at the observed extremes.
    #[test]
    fn merge_conserves_count_and_envelope(
        vals in prop::collection::vec(-1.0e9f64..1.0e9, 1..200),
    ) {
        let mut acc = Bin::of(vals[0]);
        for v in &vals[1..] {
            acc.merge(&Bin::of(*v));
        }
        prop_assert_eq!(acc.count, vals.len() as u64);
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(acc.min, lo);
        prop_assert_eq!(acc.max, hi);
        let exact: f64 = vals.iter().sum();
        prop_assert!(
            (acc.sum - exact).abs() <= 1e-6 * exact.abs().max(1.0),
            "sum drifted: {} vs {}", acc.sum, exact
        );
        prop_assert!(acc.min <= acc.avg() && acc.avg() <= acc.max);
    }

    /// Merging is grouping-independent: folding left-to-right and
    /// folding an arbitrary two-way split then re-merging agree, so a
    /// coarse tier built from an intermediate tier equals one built
    /// straight from raw samples.
    #[test]
    fn remerge_is_grouping_independent(
        vals in prop::collection::vec(-1.0e6f64..1.0e6, 2..150),
        split_seed in 0usize..1000,
    ) {
        let split = 1 + split_seed % (vals.len() - 1);
        let mut flat = Bin::of(vals[0]);
        for v in &vals[1..] {
            flat.merge(&Bin::of(*v));
        }
        let mut left = Bin::of(vals[0]);
        for v in &vals[1..split] {
            left.merge(&Bin::of(*v));
        }
        let mut right = Bin::of(vals[split]);
        for v in &vals[split + 1..] {
            right.merge(&Bin::of(*v));
        }
        let mut regrouped = left;
        regrouped.merge(&right);
        prop_assert_eq!(regrouped.count, flat.count);
        prop_assert_eq!(regrouped.min, flat.min);
        prop_assert_eq!(regrouped.max, flat.max);
        prop_assert!(
            (regrouped.sum - flat.sum).abs() <= 1e-6 * flat.sum.abs().max(1.0),
            "re-merge changed the sum: {} vs {}", regrouped.sum, flat.sum
        );
    }

    /// The empty bin is the identity element of `merge`.
    #[test]
    fn empty_bin_is_merge_identity(v in -1.0e9f64..1.0e9, n in 1u64..1000) {
        let empty = Bin { count: 0, sum: 123.0, min: 7.0, max: -7.0 };
        let mut bin = Bin::of(v);
        bin.count = n;
        let mut forward = bin;
        forward.merge(&empty);
        prop_assert_eq!(forward, bin);
        let mut backward = empty;
        backward.merge(&bin);
        prop_assert_eq!(backward, bin);
    }

    /// Ingesting the same irregular stream into a coarse tier and into a
    /// raw tier conserves the total count across the tier boundary, and
    /// every coarse bucket's envelope contains exactly the raw extremes
    /// of the samples that landed in it.
    #[test]
    fn tier_downsampling_conserves_counts(
        samples in prop::collection::vec((0u64..5_000, -1.0e6f64..1.0e6), 1..200),
        width in 1u64..10_000,
    ) {
        let gaps: Vec<u64> = samples.iter().map(|(g, _)| *g).collect();
        let ts = timeline(1_000_000, &gaps);
        let raw = single_tier(0, 4096);
        let coarse = single_tier(width, 4096);
        for (t, (_, v)) in ts.iter().zip(&samples) {
            raw.ingest("m", *t, *v);
            coarse.ingest("m", *t, *v);
        }
        let now = *ts.last().unwrap() + 1;
        let range = now; // covers everything back to t=0
        let raw_q = raw.query("m", range, 0, now).unwrap();
        let coarse_q = coarse.query("m", range, 0, now).unwrap();
        let raw_count: u64 = raw_q.points.iter().map(|p| p.bin.count).sum();
        let coarse_count: u64 = coarse_q.points.iter().map(|p| p.bin.count).sum();
        prop_assert_eq!(raw_count, samples.len() as u64);
        prop_assert_eq!(coarse_count, samples.len() as u64);
        // Per-bucket envelope: recompute each coarse bucket from raw.
        for p in &coarse_q.points {
            let in_bucket: Vec<f64> = ts
                .iter()
                .zip(&samples)
                .filter(|(t, _)| **t / width * width == p.ts_ms)
                .map(|(_, (_, v))| *v)
                .collect();
            prop_assert_eq!(p.bin.count, in_bucket.len() as u64);
            let lo = in_bucket.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = in_bucket.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(p.bin.min, lo);
            prop_assert_eq!(p.bin.max, hi);
        }
    }

    /// Query-time step merging is count-conserving too: aggregating the
    /// raw ring to an arbitrary step keeps the total count, yields
    /// step-aligned strictly-increasing buckets, and never widens the
    /// global envelope.
    #[test]
    fn step_merge_conserves_counts(
        samples in prop::collection::vec((0u64..2_000, -1.0e6f64..1.0e6), 1..200),
        step in 1u64..20_000,
    ) {
        let gaps: Vec<u64> = samples.iter().map(|(g, _)| *g).collect();
        let ts = timeline(5_000_000, &gaps);
        let store = single_tier(0, 4096);
        for (t, (_, v)) in ts.iter().zip(&samples) {
            store.ingest("m", *t, *v);
        }
        let now = *ts.last().unwrap() + 1;
        let q = store.query("m", now, step, now).unwrap();
        let total: u64 = q.points.iter().map(|p| p.bin.count).sum();
        prop_assert_eq!(total, samples.len() as u64);
        if step > 1 {
            for pair in q.points.windows(2) {
                prop_assert!(pair[0].ts_ms < pair[1].ts_ms, "buckets out of order");
            }
            for p in &q.points {
                prop_assert_eq!(p.ts_ms % step, 0, "bucket not step-aligned");
            }
        }
        let lo = samples.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        for p in &q.points {
            prop_assert!(p.bin.min >= lo && p.bin.max <= hi, "envelope escaped raw range");
        }
    }

    /// Rings stay within their configured capacity no matter the stream —
    /// the fixed-memory guarantee the /healthz bound reports.
    #[test]
    fn rings_never_exceed_capacity(
        gaps in prop::collection::vec(1u64..5_000, 1..300),
        cap in 1usize..32,
        width in 0u64..100,
    ) {
        let store = single_tier(width, cap);
        let ts = timeline(0, &gaps);
        for t in &ts {
            store.ingest("m", *t, 1.0);
        }
        let occ = store.occupancy();
        prop_assert_eq!(occ.tiers.len(), 1);
        let (_, total_cap, resident) = occ.tiers[0];
        prop_assert_eq!(total_cap, cap);
        prop_assert!(resident <= cap, "ring overflowed: {resident} > {cap}");
    }
}
