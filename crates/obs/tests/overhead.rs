//! Smoke gate for the disabled-path cost: with `SVT_TRACE=off` a span or
//! counter call site is one relaxed atomic load and a branch, so a
//! million of them must complete in far under a second even unoptimized.
//! The bound is deliberately generous — the gate exists to catch
//! order-of-magnitude regressions (a lock, allocation, or syscall
//! sneaking onto the disabled path), not to benchmark.

use std::time::Instant;

use svt_obs::TraceMode;

#[test]
fn disabled_instrumentation_is_effectively_free() {
    svt_obs::set_mode(TraceMode::Off);
    const N: u64 = 1_000_000;

    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..N {
        let _span = svt_obs::span("overhead.smoke");
        if svt_obs::enabled() {
            svt_obs::counter!("overhead.smoke.count").incr();
        }
        acc = acc.wrapping_add(i);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);

    assert!(
        elapsed.as_secs_f64() < 1.0,
        "1M disabled span+counter sites took {elapsed:?} — the off path must stay a \
         single relaxed load (< ~1 µs/site even in debug builds)"
    );

    // And the disabled path recorded nothing.
    let snap = svt_obs::registry().snapshot();
    assert!(
        !snap
            .spans
            .iter()
            .any(|s| s.path.contains("overhead.smoke") && s.count > 0),
        "disabled spans must not record"
    );
}
