//! End-to-end timeline test: record from several threads through the
//! public probes, emit the Chrome trace to a file, and parse it back.
//!
//! The ring-level wraparound semantics have unit tests next to the
//! implementation; this test exercises the full integration surface the
//! binaries use — `SVT_TRACE=chrome:<path>` + `span`/`instant` +
//! [`svt_obs::emit_if_enabled`] — and validates the emitted JSON with the
//! same schema checker the differential suite uses. All environment
//! mutation lives in the single `#[test]` because sibling tests in one
//! binary share the process environment.

use std::sync::Barrier;

use svt_obs::chrome::validate_chrome_trace;
use svt_obs::timeline;

/// Worker thread count; each records `SPANS` spans + `INSTANTS` instants.
const WORKERS: usize = 4;
const SPANS: u64 = 300;
const INSTANTS: u64 = 100;
/// Ring capacity forced via `SVT_TRACE_BUF` — small enough that every
/// worker wraps many times over.
const CAPACITY: u64 = 64;

#[test]
fn chrome_trace_file_round_trips_with_exact_drop_accounting() {
    let restore_trace = std::env::var(svt_obs::TRACE_ENV).ok();
    let path = format!("{}/roundtrip_trace.json", env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(env!("CARGO_TARGET_TMPDIR")).expect("tmpdir");

    // The ring capacity latches on first use, so it must be set before any
    // event is recorded in this process.
    std::env::set_var(timeline::CAPACITY_ENV, CAPACITY.to_string());
    std::env::set_var(svt_obs::TRACE_ENV, format!("chrome:{path}"));
    svt_obs::reinit_from_env();
    assert!(svt_obs::timeline_enabled());

    // Main records first so it owns a ring before any worker ring returns
    // to the free list (a later first-record would adopt one and skew the
    // per-ring accounting below).
    {
        let _root = svt_obs::span("t.e2e.main");
    }

    // A barrier keeps all workers alive concurrently, so each owns its own
    // ring (no free-list adoption mid-test) and push accounting is exact.
    let barrier = Barrier::new(WORKERS);
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            scope.spawn(|| {
                // Adopt a ring *before* the barrier: every worker then owns
                // a distinct ring, because none can exit (returning its
                // ring to the free list) until all four hold one.
                svt_obs::instant("t.e2e.sync");
                barrier.wait();
                for _ in 0..SPANS {
                    let _s = svt_obs::span("t.e2e.work");
                }
                for _ in 0..INSTANTS {
                    svt_obs::instant("t.e2e.miss");
                }
            });
        }
    });

    // Exact conservation: every push lands in exactly one ring, so
    // events-retained + dropped must equal the pushes made, per ring and
    // in total. Each worker pushed 2·SPANS + INSTANTS events into a
    // CAPACITY-slot ring; the main thread pushed one begin/end pair.
    let per_worker = 1 + 2 * SPANS + INSTANTS;
    let expected_dropped = per_worker - CAPACITY;
    let timelines = timeline::snapshot_all();
    let wrapped: Vec<_> = timelines.iter().filter(|t| t.dropped > 0).collect();
    assert_eq!(wrapped.len(), WORKERS, "every worker ring wrapped");
    for t in &wrapped {
        assert_eq!(
            t.events.len() as u64,
            CAPACITY,
            "tid {} retains exactly one capacity of newest events",
            t.tid
        );
        assert_eq!(
            t.dropped, expected_dropped,
            "tid {} drop count is exact, not an estimate",
            t.tid
        );
        // Newest-wins: the retained tail is the instants (recorded last).
        let last = t.events.last().expect("retained events");
        assert_eq!(last.name, "t.e2e.miss");
        assert_eq!(last.phase, timeline::Phase::Instant);
    }
    let total_recorded: u64 = timelines
        .iter()
        .map(|t| t.events.len() as u64 + t.dropped)
        .sum();
    assert_eq!(total_recorded, WORKERS as u64 * per_worker + 2);

    // Emit through the same path the binaries use, then parse the file
    // back and schema-check it.
    let rendered = svt_obs::emit_if_enabled().expect("chrome mode emits");
    let from_disk = std::fs::read_to_string(&path).expect("trace file written");
    assert_eq!(rendered, from_disk, "returned JSON matches the file");

    let stats = validate_chrome_trace(&from_disk)
        .unwrap_or_else(|e| panic!("emitted trace failed validation: {e}"));
    assert!(!stats.events.is_empty());
    assert!(
        stats.tids.len() > WORKERS,
        "main + every worker present ({:?} tids)",
        stats.tids
    );
    assert!(
        stats.tids_with_event("t.e2e.miss") >= WORKERS,
        "instants visible on every worker tid"
    );
    assert!(
        from_disk.contains("svt.timeline.dropped"),
        "wraparound must surface as a counter event, never silently"
    );

    match restore_trace {
        Some(v) => std::env::set_var(svt_obs::TRACE_ENV, v),
        None => std::env::remove_var(svt_obs::TRACE_ENV),
    }
    std::env::remove_var(timeline::CAPACITY_ENV);
    svt_obs::reinit_from_env();
}
