//! Panic-safety of the span guard: an unwinding task must leave the
//! thread-local span stack balanced *and* the allocation-attribution
//! current-span cleared, or every later metric on that thread would be
//! misattributed (regression guard for the `svt_obs::alloc` wiring).

use std::panic::catch_unwind;
use std::sync::{Mutex, MutexGuard, PoisonError};

use svt_obs::{span, TraceMode};

/// Trace mode is process-global; tests flipping it serialize here.
fn mode_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn full_unwind_clears_span_stack_and_alloc_attribution() {
    let _guard = mode_lock();
    svt_obs::set_mode(TraceMode::Summary);

    let caught = catch_unwind(|| {
        let _outer = span("t.ps.outer");
        assert_eq!(svt_obs::alloc::current_span(), Some("t.ps.outer"));
        let _inner = span("t.ps.inner");
        assert_eq!(svt_obs::alloc::current_span(), Some("t.ps.inner"));
        panic!("boom");
    });
    assert!(caught.is_err());

    // Both guards dropped during unwind: nothing left to attribute to.
    assert_eq!(svt_obs::alloc::current_span(), None);

    // And the span stack is balanced: a fresh span roots at top level
    // instead of nesting under the unwound ones.
    {
        let _after = span("t.ps.after");
        assert_eq!(svt_obs::alloc::current_span(), Some("t.ps.after"));
    }
    assert_eq!(svt_obs::alloc::current_span(), None);

    svt_obs::set_mode(TraceMode::Off);
    let snap = svt_obs::registry().snapshot();
    assert!(
        snap.spans.iter().any(|s| s.path == "t.ps.after"),
        "post-unwind span must root at top level: {:?}",
        snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
    assert!(
        snap.spans.iter().any(|s| s.path == "t.ps.outer/t.ps.inner"),
        "unwound spans still record their timings"
    );
}

#[test]
fn caught_panic_restores_attribution_to_the_enclosing_span() {
    let _guard = mode_lock();
    svt_obs::set_mode(TraceMode::Summary);

    {
        let _outer = span("t.ps.resume.outer");
        let caught = catch_unwind(|| {
            let _inner = span("t.ps.resume.inner");
            panic!("inner task died");
        });
        assert!(caught.is_err());
        // The survivor keeps attributing to itself, not to the dead child
        // and not to nothing.
        assert_eq!(svt_obs::alloc::current_span(), Some("t.ps.resume.outer"));
        let _leaf = span("t.ps.resume.leaf");
        assert_eq!(svt_obs::alloc::current_span(), Some("t.ps.resume.leaf"));
    }

    svt_obs::set_mode(TraceMode::Off);
    let snap = svt_obs::registry().snapshot();
    assert!(
        snap.spans
            .iter()
            .any(|s| s.path == "t.ps.resume.outer/t.ps.resume.leaf"),
        "a span opened after a caught panic nests under the survivor"
    );
}
