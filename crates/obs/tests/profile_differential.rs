//! Differential check between the continuous profiler and the registry's
//! span aggregates.
//!
//! `Span::drop` computes the elapsed nanoseconds **once** and feeds the
//! same value to both sinks — `registry().span_stat(path)` and
//! `profile::record(path)` — so on a deterministic single-threaded run
//! the folded profile and the span summary must agree *exactly* per
//! stack: same completion counts, same total wall nanoseconds. Any drift
//! means one of the sinks dropped, double-counted, or re-timed a span,
//! which would make the flame graph lie about where /dashboard latency
//! comes from. This is the `SVT_THREADS=1` differential from the issue,
//! run in-process (one test thread *is* one pipeline thread).

use svt_obs::{profile, TraceMode};

#[test]
fn folded_profile_matches_span_aggregates_exactly() {
    // Summary mode arms span collection; the profiler rides on top.
    svt_obs::set_mode(TraceMode::Summary);
    profile::set_enabled(true);
    profile::reset();

    // A deterministic nested workload: repeated roots with two children,
    // one of which recurses one level deeper. Work inside each span is
    // real (a checksum loop) so wall times are non-zero.
    let mut checksum = 0u64;
    for round in 0..25u64 {
        let _root = svt_obs::span("diff.root");
        {
            let _a = svt_obs::span("diff.parse");
            for i in 0..200 {
                checksum = checksum
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(i);
            }
        }
        {
            let _b = svt_obs::span("diff.solve");
            for i in 0..400 {
                checksum = checksum
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(i);
            }
            if round % 2 == 0 {
                let _c = svt_obs::span("diff.refine");
                for i in 0..100u64 {
                    checksum ^= i.wrapping_mul(round);
                }
            }
        }
    }
    assert_ne!(checksum, 0, "workload optimized away");

    let folded = profile::snapshot();
    let spans = svt_obs::registry().snapshot().spans;

    // Only this test's stacks: other tests in this binary (there are
    // none today) or library init could in principle open spans too.
    let ours: Vec<_> = folded
        .iter()
        .filter(|e| e.stack.starts_with("diff.root"))
        .collect();
    assert_eq!(
        ours.len(),
        4,
        "expected exactly the four distinct stacks, got {ours:#?}"
    );

    for entry in &ours {
        let span = spans
            .iter()
            .find(|s| s.path == entry.stack)
            .unwrap_or_else(|| panic!("no span aggregate for stack {}", entry.stack));
        assert_eq!(
            entry.count, span.count,
            "completion count diverged on {}",
            entry.stack
        );
        assert_eq!(
            entry.wall_ns, span.total_ns,
            "wall-ns diverged on {} (profile {} vs spans {})",
            entry.stack, entry.wall_ns, span.total_ns
        );
    }

    // Expected counts from the loop structure.
    let count_of = |stack: &str| {
        ours.iter()
            .find(|e| e.stack == stack)
            .map_or(0, |e| e.count)
    };
    assert_eq!(count_of("diff.root"), 25);
    assert_eq!(count_of("diff.root/diff.parse"), 25);
    assert_eq!(count_of("diff.root/diff.solve"), 25);
    assert_eq!(count_of("diff.root/diff.solve/diff.refine"), 13);

    // Self time of the solve stack excludes the refine child, so the
    // flame layout's parent≥children invariant holds.
    let solve = ours
        .iter()
        .find(|e| e.stack == "diff.root/diff.solve")
        .unwrap();
    let refine = ours
        .iter()
        .find(|e| e.stack == "diff.root/diff.solve/diff.refine")
        .unwrap();
    assert!(
        solve.wall_ns >= refine.wall_ns,
        "child wider than parent: solve {} < refine {}",
        solve.wall_ns,
        refine.wall_ns
    );
    let flat: Vec<_> = ours.iter().map(|e| (*e).clone()).collect();
    assert_eq!(
        profile::self_ns(solve, &flat),
        solve.wall_ns - refine.wall_ns,
        "self time must subtract exactly the direct children"
    );

    profile::set_enabled(false);
    svt_obs::set_mode(TraceMode::Off);
}
