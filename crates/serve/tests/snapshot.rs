//! Warm-boot test of the service plane's snapshot path: pre-write a
//! valid `svt-snap` container the way a previous daemon run would have,
//! configure it before anything warms the process-global stack, boot,
//! and assert the boot actually restored — status, `/healthz` JSON,
//! `svt_snapshot_info` exposition, and a served timing read off the
//! restored stack. `POST /snapshot/save` then re-captures into the same
//! file and must grow it (the save adds the flow's characterization
//! cache the pre-written container did not carry).
//!
//! Single `#[test]`: the snapshot path slot and warm stack are
//! process-global `OnceLock`s, so only one scenario fits per process
//! (the unconfigured/409 path runs in `e2e.rs` for the same reason).

use svt_core::snapshot::{stack_fingerprint, PipelineSnapshot};
use svt_litho::Process;
use svt_serve::http::http_request;
use svt_serve::server::{configure_snapshot, snapshot_status, DesignSpec, Server, ServiceState};
use svt_stdcell::{expand_library, ExpandOptions, Library};

#[test]
fn daemon_restores_from_snapshot_and_saves_on_demand() {
    // What a previous daemon run would have left behind: the svt90
    // stack under the exact fingerprint warm_stack() computes.
    let library = Library::svt90();
    let sim = Process::nm90().simulator();
    let options = ExpandOptions::fast();
    let fingerprint = stack_fingerprint(&sim, &library, &options);
    let expanded = expand_library(&library, &sim, &options).expect("expansion");
    let path =
        std::env::temp_dir().join(format!("svt_serve_snapshot_{}.svtsnap", std::process::id()));
    let written = PipelineSnapshot::capture(&expanded, None, None)
        .write_file(&path, fingerprint)
        .expect("write snapshot");
    assert!(written > 0);

    // Freeze the path before the first warm — exactly what svtd does.
    assert!(
        configure_snapshot(Some(path.to_string_lossy().to_string())),
        "first configure_snapshot call must win the slot"
    );

    let state = ServiceState::new(&[DesignSpec::Builtin], Default::default()).expect("state");
    state.warm("builtin").expect("warm-up succeeds");

    let status = snapshot_status();
    assert_eq!(status.mode, "restored", "boot must have used the file");
    assert!(status.restore_ms > 0.0, "restore time must be measured");
    assert_eq!(status.size_bytes, written);
    assert_eq!(status.fingerprint, fingerprint);

    let server = Server::spawn("127.0.0.1:0", state).expect("bind");
    let addr = server.addr().to_string();

    // /healthz reports restore-vs-cold so orchestration can tell a warm
    // boot from a slow one.
    let (code, body) = http_request(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(code, 200, "healthz: {body}");
    assert!(
        body.contains("\"snapshot\":{\"mode\":\"restored\""),
        "healthz must carry the snapshot mode: {body}"
    );
    assert!(
        body.contains(&format!("\"size_bytes\":{written}")),
        "{body}"
    );

    // /metrics carries the info gauge with mode/path/fingerprint labels
    // and the restore-latency gauge.
    let (code, metrics) = http_request(&addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(code, 200);
    assert!(
        metrics.contains("svt_snapshot_info{mode=\"restored\""),
        "metrics must expose svt_snapshot_info: {metrics}"
    );
    assert!(
        metrics.contains(&format!("fingerprint=\"{fingerprint:016x}\"")),
        "metrics must label the stack fingerprint"
    );
    assert!(
        metrics.contains("svt_snapshot_restore_ms"),
        "restored boots must expose the restore latency"
    );

    // The restored stack serves timing like any cold one.
    let (code, timing) = http_request(&addr, "GET", "/designs/builtin/timing", "").expect("timing");
    assert_eq!(code, 200, "timing: {timing}");
    assert!(timing.contains("uncertainty_reduction_pct"), "{timing}");

    // On-demand re-capture: now that a flow is warm, the saved container
    // additionally carries its characterization cache, so it grows.
    let (code, saved) = http_request(&addr, "POST", "/snapshot/save", "").expect("save");
    assert_eq!(code, 200, "save: {saved}");
    assert!(saved.contains("\"status\":\"saved\""), "{saved}");
    let new_size = std::fs::metadata(&path).expect("saved file").len();
    assert!(
        new_size > written,
        "re-capture with a warm flow must grow the container ({written} -> {new_size})"
    );
    assert_eq!(snapshot_status().size_bytes, new_size);

    // The re-captured file round-trips under the same fingerprint.
    let reread = PipelineSnapshot::read_file(&path, fingerprint).expect("reread");
    assert!(!reread.flow_caches.is_empty(), "flow cache section filled");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
