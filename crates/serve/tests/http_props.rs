//! Property/fuzz suite for the hand-rolled HTTP layer.
//!
//! The incremental [`RequestParser`] sits on the daemon's accept path
//! and eats attacker-controlled bytes, so the properties here are the
//! containment contract: arbitrary byte soup, arbitrary read()
//! fragmentation, hostile `Content-Length`s, and pipelined streams must
//! never panic the parser — every outcome is a parsed request or a
//! typed `400`/`413`. Well-formed traffic must survive *bit-exactly*:
//! through the parser under every chunking, and over a real socket
//! through the crate's own [`HttpClient`] against a [`RequestParser`] +
//! [`write_response`] echo loop (the same pair `svtd` serves with).

use proptest::prelude::*;
use svt_serve::http::{
    write_response, HttpClient, RequestParser, Response, MAX_BODY_BYTES, MAX_HEADERS,
};

const METHODS: &[&str] = &["GET", "POST", "PUT", "DELETE", "PATCH", "OPTIONS"];
// Characters legal in a request target per the parser's rules (ASCII
// graphic, starting with '/').
const PATH_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/-_.~%?=&+:@";
// Body palette: ASCII, whitespace, JSON metacharacters, and multi-byte
// UTF-8 — bodies are Content-Length framed, so framing must not care.
const BODY_CHARS: &[char] = &[
    'a', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\r', '\n', '{', '}', '[', ']', '"', '\\', ':', ',',
    'é', 'ß', '貓', '🚀',
];

fn method() -> impl Strategy<Value = &'static str> {
    (0usize..METHODS.len()).prop_map(|i| METHODS[i])
}

fn path() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PATH_CHARS.len(), 0..40).prop_map(|idx| {
        let mut p = String::from("/");
        for i in idx {
            p.push(PATH_CHARS[i] as char);
        }
        p
    })
}

fn body() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..BODY_CHARS.len(), 0..120)
        .prop_map(|idx| idx.into_iter().map(|i| BODY_CHARS[i]).collect())
}

/// Serializes a request exactly the way [`HttpClient`] frames one.
fn wire(method: &str, path: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: props\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )
    .into_bytes()
}

/// Pushes `bytes` into `parser` fragmented per `chunk_sizes` (cycled),
/// modelling arbitrary read() boundaries.
fn feed(parser: &mut RequestParser, bytes: &[u8], chunk_sizes: &[usize]) {
    let mut offset = 0;
    let mut i = 0;
    while offset < bytes.len() {
        let take = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(bytes.len())
            .clamp(1, bytes.len() - offset);
        parser.push(&bytes[offset..offset + take]);
        offset += take;
        i += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup, arbitrarily fragmented: the parser either
    /// keeps waiting, yields requests, or fails with a typed 400/413 —
    /// it never panics, and after an error it stays in the error regime
    /// (the connection would be closed).
    #[test]
    fn byte_soup_never_panics(
        soup in prop::collection::vec(0u16..256, 0..1024),
        chunks in prop::collection::vec(1usize..64, 1..8),
    ) {
        let bytes: Vec<u8> = soup.into_iter().map(|b| b as u8).collect();
        let mut parser = RequestParser::new();
        feed(&mut parser, &bytes, &chunks);
        for _ in 0..64 {
            match parser.next_request() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(
                        e.status == 400 || e.status == 413,
                        "parser errors must be 400 or 413, got {}", e.status
                    );
                    prop_assert!(!e.message.is_empty(), "errors must carry a diagnosis");
                    break;
                }
            }
        }
    }

    /// A well-formed request survives every read() fragmentation
    /// bit-exactly — method, target, body, and keep-alive flag.
    #[test]
    fn well_formed_requests_round_trip_under_any_chunking(
        method in method(),
        path in path(),
        body in body(),
        keep_alive in 0u8..2,
        chunks in prop::collection::vec(1usize..16, 1..8),
    ) {
        let keep_alive = keep_alive == 1;
        let bytes = wire(method, &path, &body, keep_alive);
        let mut parser = RequestParser::new();
        feed(&mut parser, &bytes, &chunks);
        let req = parser.next_request().expect("well-formed").expect("complete");
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.body, body);
        prop_assert_eq!(req.keep_alive, keep_alive);
        prop_assert!(parser.next_request().expect("clean tail").is_none());
        prop_assert_eq!(parser.buffered(), 0, "nothing may linger after a full parse");
    }

    /// Pipelined requests in one TCP segment parse in order, each
    /// bit-exact, with no bytes lost between them.
    #[test]
    fn pipelined_requests_parse_in_order(
        reqs in prop::collection::vec((method(), path(), body()), 1..5),
        chunks in prop::collection::vec(1usize..32, 1..6),
    ) {
        let mut bytes = Vec::new();
        for (m, p, b) in &reqs {
            bytes.extend_from_slice(&wire(m, p, b, true));
        }
        let mut parser = RequestParser::new();
        feed(&mut parser, &bytes, &chunks);
        for (m, p, b) in &reqs {
            let req = parser.next_request().expect("well-formed").expect("complete");
            prop_assert_eq!(&req.method, m);
            prop_assert_eq!(&req.path, p);
            prop_assert_eq!(&req.body, b);
        }
        prop_assert!(parser.next_request().expect("clean tail").is_none());
    }

    /// Conflicting duplicate `Content-Length`s are a framing attack →
    /// 400; identical duplicates are tolerated per RFC 9110 §8.6.
    #[test]
    fn duplicate_content_length_only_allowed_when_identical(
        len_a in 0usize..64,
        delta in 1usize..64,
        identical in 0u8..2,
    ) {
        let len_b = if identical == 1 { len_a } else { len_a + delta };
        let head = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {len_a}\r\nContent-Length: {len_b}\r\n\r\n"
        );
        let mut parser = RequestParser::new();
        parser.push(head.as_bytes());
        parser.push(&vec![b'y'; len_a.max(len_b)]);
        match parser.next_request() {
            Ok(Some(req)) => {
                prop_assert!(identical == 1, "conflicting lengths must not parse");
                prop_assert_eq!(req.body.len(), len_a);
            }
            Ok(None) => prop_assert!(false, "enough bytes were supplied"),
            Err(e) => {
                prop_assert!(identical == 0, "identical duplicates must parse");
                prop_assert_eq!(e.status, 400);
            }
        }
    }

    /// A declared body beyond [`MAX_BODY_BYTES`] is refused with 413 as
    /// soon as the head completes — before any body bytes arrive, so a
    /// claimed size cannot make the daemon buffer it.
    #[test]
    fn oversized_content_length_is_413_before_body_bytes(
        over in 1usize..4096,
        chunks in prop::collection::vec(1usize..32, 1..6),
    ) {
        let head = format!(
            "POST /big HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + over
        );
        let mut parser = RequestParser::new();
        feed(&mut parser, head.as_bytes(), &chunks);
        let err = parser.next_request().expect_err("oversized body must be refused");
        prop_assert_eq!(err.status, 413);
    }

    /// Malformed request lines — wrong space count, missing pieces, bad
    /// version tokens — are 400s, never panics, under any chunking.
    #[test]
    fn malformed_request_lines_are_400(
        which in 0usize..8,
        chunks in prop::collection::vec(1usize..16, 1..6),
    ) {
        let line: &[u8] = match which {
            0 => b"GET/x HTTP/1.1\r\n\r\n",                 // no space
            1 => b"GET  /x HTTP/1.1\r\n\r\n",               // double space
            2 => b"GET /x\r\n\r\n",                         // no version
            3 => b"GET /x HTTP/2.0\r\n\r\n",                // unsupported version
            4 => b"GET /x HTTP/1.1 extra\r\n\r\n",          // trailing junk
            5 => b"G\x00T /x HTTP/1.1\r\n\r\n",             // NUL in method
            6 => b"GET x HTTP/1.1\r\n\r\n",                 // target missing '/'
            _ => b" GET /x HTTP/1.1\r\n\r\n",               // leading space
        };
        let mut parser = RequestParser::new();
        feed(&mut parser, line, &chunks);
        let err = parser.next_request().expect_err("malformed line must be refused");
        prop_assert_eq!(err.status, 400);
    }
}

proptest! {
    // Real sockets per case: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-stack round trip through the crate's own client: every
    /// exchange a server answers via `RequestParser` + `write_response`
    /// comes back through `HttpClient` with the status and body
    /// bit-exact, over one keep-alive connection.
    #[test]
    fn client_round_trips_bit_exactly_over_a_socket(
        exchanges in prop::collection::vec((method(), path(), body()), 1..5),
    ) {
        use std::io::Read;
        use std::net::TcpListener;

        let n = exchanges.len();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || -> Result<(), String> {
            let (mut stream, _) = listener.accept().map_err(|e| e.to_string())?;
            let mut parser = RequestParser::new();
            let mut chunk = [0u8; 512];
            for i in 0..n {
                let req = loop {
                    if let Some(req) = parser.next_request().map_err(|e| e.message)? {
                        break req;
                    }
                    let read = stream.read(&mut chunk).map_err(|e| e.to_string())?;
                    if read == 0 {
                        return Err("client hung up early".into());
                    }
                    parser.push(&chunk[..read]);
                };
                // Echo the request back: identity must survive both
                // directions of the crate's own framing.
                let echo = format!("{} {}\n{}", req.method, req.path, req.body);
                write_response(&mut stream, &Response::text(200, echo), i + 1 == n)
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        });

        let mut client = HttpClient::connect(&addr).expect("connect");
        for (m, p, b) in &exchanges {
            let (status, echoed) = client.send(m, p, b).expect("exchange");
            prop_assert_eq!(status, 200);
            prop_assert_eq!(echoed, format!("{m} {p}\n{b}"));
        }
        server.join().expect("server thread").expect("server loop");
    }
}

/// Header section fragmented at *every* byte boundary — the classic
/// split-header bug class. Deterministic, exhaustive over one request.
#[test]
fn every_single_byte_split_parses_identically() {
    let bytes = wire("POST", "/designs/c432/eco", "{\"k\":\"v\"}", true);
    let reference = {
        let mut parser = RequestParser::new();
        parser.push(&bytes);
        parser.next_request().unwrap().unwrap()
    };
    for cut in 1..bytes.len() {
        let mut parser = RequestParser::new();
        parser.push(&bytes[..cut]);
        let early = parser.next_request().unwrap_or_else(|e| {
            panic!("split at {cut} errored: {}", e.message);
        });
        if let Some(req) = &early {
            assert_eq!(req, &reference, "complete parse before full bytes at {cut}");
        }
        parser.push(&bytes[cut..]);
        let req = match early {
            Some(req) => req,
            None => parser
                .next_request()
                .unwrap_or_else(|e| panic!("split at {cut}: {}", e.message))
                .unwrap_or_else(|| panic!("split at {cut} never completed")),
        };
        assert_eq!(req, reference, "split at byte {cut} diverged");
    }
}

/// Absent `Content-Length` means an empty body — and pipelined bytes
/// after the head belong to the *next* request, not this one's body.
#[test]
fn absent_content_length_is_empty_body() {
    let mut parser = RequestParser::new();
    parser.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
    let a = parser.next_request().unwrap().unwrap();
    assert_eq!((a.path.as_str(), a.body.as_str()), ("/a", ""));
    let b = parser.next_request().unwrap().unwrap();
    assert_eq!((b.path.as_str(), b.body.as_str()), ("/b", ""));
}

/// The header *count* bound holds: one more header than [`MAX_HEADERS`]
/// is a 400, exactly [`MAX_HEADERS`] parses.
#[test]
fn header_count_limit_is_exact() {
    for (count, ok) in [(MAX_HEADERS, true), (MAX_HEADERS + 1, false)] {
        let mut head = String::from("GET /h HTTP/1.1\r\n");
        for i in 0..count {
            head.push_str(&format!("X-H{i}: v\r\n"));
        }
        head.push_str("\r\n");
        let mut parser = RequestParser::new();
        parser.push(head.as_bytes());
        match parser.next_request() {
            Ok(Some(_)) => assert!(ok, "{count} headers should have been refused"),
            Err(e) => {
                assert!(!ok, "{count} headers should have parsed: {}", e.message);
                assert_eq!(e.status, 400);
            }
            Ok(None) => panic!("head was complete"),
        }
    }
}
