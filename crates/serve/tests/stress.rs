//! Backpressure and graceful-shutdown fault injection for the service
//! plane, against a deliberately tiny pool (2 workers, queue of 2) so
//! saturation is cheap to provoke:
//!
//! * keep-alive bounds — the per-connection request cap closes the
//!   connection after exactly N requests, and an idle connection is
//!   reaped after the idle timeout;
//! * slow-loris saturation — partial-request connections pin every
//!   worker and queue slot, the next connection gets an immediate
//!   `429` with `Retry-After`, and the plane recovers to `200`s once
//!   the loris connections go away;
//! * graceful drain — a shutdown issued while a request is in flight
//!   answers that request (200 before the drain flag, 503 after — but
//!   always answers), then joins every pool thread: the OS thread
//!   count returns to its pre-server baseline (no handler leaks);
//! * the watchdog stays green throughout: connection lifetimes are
//!   *not* heartbeated (only bounded route handling is), so pinned and
//!   idle connections must not read as stalls.
//!
//! Single `#[test]`: the telemetry registry, watchdog, and warm stack
//! are process-global.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use svt_serve::http::{http_request, HttpClient};
use svt_serve::server::{DesignSpec, Server, ServerOptions, ServiceState};

const KEEP_ALIVE_CAP: usize = 5;

/// Live OS threads of this process (Linux); `None` where /proc is
/// unavailable, which skips the leak assertion.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn tiny_pool_options() -> ServerOptions {
    ServerOptions {
        workers: 2,
        queue_capacity: 2,
        keep_alive_max_requests: KEEP_ALIVE_CAP,
        idle_timeout: Duration::from_millis(400),
        // Widen the in-flight window so the drain test reliably
        // catches a request mid-handling.
        fault_delay: Some(Duration::from_millis(50)),
        ..ServerOptions::default()
    }
}

fn spawn_server() -> (Server, String) {
    let state = ServiceState::new(&[DesignSpec::Builtin], tiny_pool_options()).expect("state");
    state.warm("builtin").expect("warm builtin");
    let server = Server::spawn("127.0.0.1:0", state).expect("bind");
    let addr = server.addr().to_string();
    (server, addr)
}

fn loris(addr: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("loris connect");
    stream
        .write_all(b"POST /eco HTTP/1.1\r\nContent-Length: 5\r\n")
        .expect("loris write");
    stream
}

#[test]
fn backpressure_and_graceful_shutdown_under_fault_injection() {
    svt_exec::watchdog::arm(Duration::from_secs(5));
    let baseline_threads = os_thread_count();

    // ---- Phase 1: keep-alive bounds. ----
    let (server, addr) = spawn_server();

    // The request cap closes the connection after exactly
    // KEEP_ALIVE_CAP requests: the last response advertises the close,
    // and the next send fails.
    let mut client = HttpClient::connect(&addr).expect("connect");
    for i in 1..=KEEP_ALIVE_CAP {
        let response = client
            .send_full("GET", "/healthz", "")
            .expect("capped send");
        assert_eq!(response.status, 200);
        assert_eq!(
            response.close(),
            i == KEEP_ALIVE_CAP,
            "connection must close exactly at request {KEEP_ALIVE_CAP}"
        );
    }
    assert!(
        client.send("GET", "/healthz", "").is_err(),
        "request {} must not be served on a capped connection",
        KEEP_ALIVE_CAP + 1
    );

    // An idle keep-alive connection is reaped after the idle timeout.
    let mut idler = HttpClient::connect(&addr).expect("idler connect");
    let (status, _) = idler.send("GET", "/healthz", "").expect("idler first");
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(900));
    assert!(
        idler.send("GET", "/healthz", "").is_err(),
        "idle connection must be closed after the idle timeout"
    );

    // A half-sent request also cannot pin a worker forever: the idle
    // timeout applies to mid-request silence too.
    let stalled = loris(&addr);
    std::thread::sleep(Duration::from_millis(900));
    let t = Instant::now();
    let (status, _) = http_request(&addr, "GET", "/healthz", "").expect("after stalled loris");
    assert_eq!(status, 200);
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "reaped loris must not delay fresh requests"
    );
    drop(stalled);
    server.shutdown();

    // ---- Phase 2: slow-loris saturation → 429 → recovery. ----
    let (server, addr) = spawn_server();
    // Pin both workers and both queue slots. Scheduling decides which
    // connection lands where, so over-provision a little and poll.
    let lorises: Vec<TcpStream> = (0..4).map(|_| loris(&addr)).collect();
    let mut rejection = None;
    for _ in 0..50 {
        let mut probe = match HttpClient::connect(&addr) {
            Ok(probe) => probe,
            Err(_) => continue,
        };
        probe
            .set_read_timeout(Duration::from_millis(500))
            .expect("probe timeout");
        match probe.send_full("GET", "/healthz", "") {
            Ok(response) if response.status == 429 => {
                rejection = Some(response);
                break;
            }
            // 200: a queue slot was free; timeout/err: probe got
            // queued behind the loris connections. Either way retry.
            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let rejection = rejection.expect("a saturated pool must answer 429");
    let retry_after = rejection
        .header("retry-after")
        .expect("429 must carry Retry-After");
    assert!(
        retry_after.parse::<u64>().is_ok(),
        "Retry-After must be seconds, got `{retry_after}`"
    );
    assert!(rejection.close(), "429 responses close the connection");

    // Release the lorises: the plane must recover to plain 200s.
    drop(lorises);
    let recovered = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(50));
        matches!(http_request(&addr, "GET", "/healthz", ""), Ok((200, _)))
    });
    assert!(recovered, "plane did not recover after loris release");

    // ---- Phase 3: drain with a request in flight. ----
    // The 50 ms fault delay keeps the request mid-handler while the
    // drain starts; it must still be answered (200 if routed before the
    // drain flag, 503 after), never dropped.
    let addr_for_inflight = addr.clone();
    let inflight =
        std::thread::spawn(move || http_request(&addr_for_inflight, "GET", "/healthz", ""));
    std::thread::sleep(Duration::from_millis(15));
    server.shutdown();
    let answered = inflight
        .join()
        .expect("in-flight thread")
        .expect("in-flight request must be answered during a drain");
    assert!(
        answered.0 == 200 || answered.0 == 503,
        "drained request got status {}",
        answered.0
    );
    // The listener is gone: new connections are refused outright.
    assert!(
        http_request(&addr, "GET", "/healthz", "").is_err(),
        "daemon must not accept connections after shutdown"
    );

    // ---- Plane-wide postconditions. ----
    // No handler/acceptor leaks: thread count back to the pre-server
    // baseline once both servers are down.
    if let (Some(before), Some(after)) = (baseline_threads, os_thread_count()) {
        assert!(
            after <= before,
            "thread leak: {before} threads before the servers, {after} after shutdown"
        );
    }
    // And the watchdog never read pinned/idle connections as stalls.
    let wd = svt_exec::watchdog::status();
    assert!(
        wd.healthy() && wd.stall_events == 0,
        "watchdog must stay green through loris pinning and drains: {wd:?}"
    );
}
