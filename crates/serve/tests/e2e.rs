//! End-to-end service-plane test: boot a real multi-tenant daemon on an
//! ephemeral port and run the exact CI smoke sequence against it
//! in-process — including the differential checks that single and
//! batched `POST /eco` responses are bit-identical to direct
//! `EcoSession::apply` calls. Then probe the error paths, keep-alive
//! reuse, cross-design isolation under a held write lock, and the
//! concurrency differential: readers streaming timing off `c432` while
//! a writer streams ECO batches at `c880`, with the served batch
//! bodies replayed afterwards through a local session under
//! `SVT_THREADS=1` and required to match byte-for-byte (the daemon
//! served them under the default thread count, so the comparison spans
//! both sides of the `SVT_THREADS` ∈ {1, default} sweep).
//!
//! Single `#[test]`: the telemetry registry, trace mode, warm library
//! stack, and process environment are process-global.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use svt_obs::alloc::CountingAlloc;
use svt_obs::json::JsonValue;
use svt_serve::http::{http_request, HttpClient};
use svt_serve::server::{
    render_batch_report, warm_session, DesignSpec, Server, ServerOptions, ServiceState,
};
use svt_serve::smoke::{run_smoke_full, SmokeOptions};

// Match the daemon: attribute allocations so /metrics carries the
// svt_alloc_* gauges during the smoke scrape.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

const READERS: usize = 3;
const WRITER_BATCHES: usize = 8;
/// A read on one design must never wait out another design's write
/// stream. Generous for single-core CI boxes; catastrophic (global
/// lock) serialization would push reads past the whole writer run.
const READ_LATENCY_BOUND: Duration = Duration::from_secs(2);

fn resize_batch(instance: &str) -> ([svt_eco::EcoEdit; 2], String) {
    let edits = [
        svt_eco::EcoEdit::ResizeCell {
            instance: instance.to_string(),
            new_cell: "INVX2".into(),
        },
        svt_eco::EcoEdit::ResizeCell {
            instance: instance.to_string(),
            new_cell: "INVX1".into(),
        },
    ];
    let body = format!(
        "[{{\"type\":\"resize_cell\",\"instance\":\"{instance}\",\"new_cell\":\"INVX2\"}},\
          {{\"type\":\"resize_cell\",\"instance\":\"{instance}\",\"new_cell\":\"INVX1\"}}]"
    );
    (edits, body)
}

#[test]
fn daemon_serves_multi_tenant_traffic_with_bit_exact_eco_deltas() {
    // Mirror the daemon's defaults: live timeline, allocation
    // attribution, armed watchdog, continuous profiler, and a sampler
    // feeding the embedded time-series store.
    svt_obs::set_mode(svt_obs::TraceMode::Chrome);
    svt_obs::alloc::set_active(true);
    svt_exec::watchdog::arm(Duration::from_secs(30));
    svt_obs::profile::set_enabled(true);
    let sampler = svt_obs::tsdb::Sampler::spawn(
        svt_obs::tsdb::global(),
        Duration::from_millis(100),
        vec![
            Box::new(svt_obs::alloc::publish_gauges),
            Box::new(|| {
                let _ = svt_obs::rss::publish_gauges();
            }),
        ],
    );

    let designs = [
        DesignSpec::Builtin,
        DesignSpec::Iscas("c432".into()),
        DesignSpec::Iscas("c880".into()),
    ];
    // Arm the full observability surface: capture every request as a
    // flight-recorder capsule and log each one to a JSONL access log.
    let access_log = std::env::temp_dir()
        .join(format!("svt_e2e_access_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .to_string();
    let _ = std::fs::remove_file(&access_log);
    let options = ServerOptions {
        slow_ms: Some(0),
        access_log_path: Some(access_log.clone()),
        ..ServerOptions::default()
    };
    let state = ServiceState::new(&designs, options).expect("state");
    let server = Server::spawn("127.0.0.1:0", state).expect("bind an ephemeral port");
    let addr = server.addr().to_string();

    // The full CI sequence: healthz, scrapes with delta series,
    // snapshot, timeline, single + batched bit-exact ECO differentials,
    // the /designs surface with lazy warm-up, isolation, and the
    // 404/405/400 error paths. (Backpressure and shutdown run in
    // tests/stress.rs against a deliberately tiny pool.)
    let opts = SmokeOptions {
        designs: designs.to_vec(),
        backpressure: false,
        shutdown: false,
        recorder: true,
        observability: true,
    };
    let summary = run_smoke_full(&addr, &opts).unwrap_or_else(|e| panic!("smoke failed: {e}"));
    assert!(summary.ends_with("smoke: PASS"), "summary: {summary}");
    assert!(
        summary.contains("flight recorder:"),
        "recorder walk ran: {summary}"
    );

    // Every access-log line is one JSON object whose trace id resolves
    // at the flight-recorder surface (slow-ms 0 captures everything the
    // capsule ring still retains).
    let log = std::fs::read_to_string(&access_log).expect("access log written");
    assert!(!log.is_empty(), "smoke traffic must be logged");
    let mut eco_trace_id = None;
    for line in log.lines() {
        let doc = JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("access-log line not JSON ({e}): {line}"));
        let trace_id = doc
            .get("trace_id")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("access-log line missing trace_id: {line}"));
        assert!(trace_id > 0, "trace ids are nonzero");
        if doc.get("route").and_then(JsonValue::as_str) == Some("/eco") {
            eco_trace_id = Some(trace_id);
        }
    }
    // The acceptance path: the smoke's POST /eco left a capsule whose
    // per-request Chrome trace validates and is tagged throughout.
    let eco_trace_id = eco_trace_id.expect("smoke posted /eco, so the log has its line");
    let (status, trace) = http_request(
        &addr,
        "GET",
        &format!("/debug/requests/{eco_trace_id}/trace.json"),
        "",
    )
    .unwrap();
    assert_eq!(status, 200, "eco capsule resolves by its logged trace id");
    let stats = svt_obs::chrome::validate_chrome_trace(&trace).expect("eco trace validates");
    assert!(
        stats
            .events
            .iter()
            .filter(|e| matches!(e.ph.as_str(), "B" | "E" | "i"))
            .all(|e| e.trace_id == Some(eco_trace_id)),
        "every span event carries the request's trace id"
    );

    // The smoke posted one single edit and one two-edit batch at the
    // default design; /healthz accounts for all three.
    let (status, health) = http_request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    let health = JsonValue::parse(&health).unwrap();
    assert_eq!(
        health.get("edits_applied").and_then(JsonValue::as_u64),
        Some(3)
    );

    // Rejected-edit bodies are diagnostic and mutate nothing.
    let (status, body) = http_request(&addr, "POST", "/eco", "{\"type\":\"resize_cell\"}").unwrap();
    assert_eq!(status, 400, "missing fields are a client error: {body}");
    assert!(body.contains("instance"), "error names the field: {body}");
    let (status, body) = http_request(
        &addr,
        "POST",
        "/eco",
        "{\"type\":\"adjust_spacing\",\"instance\":\"no-such-inst\",\"dx_nm\":10.0}",
    )
    .unwrap();
    assert_eq!(status, 400, "invalid edits are a client error: {body}");
    let err = JsonValue::parse(&body).unwrap();
    assert!(err.get("error").and_then(JsonValue::as_str).is_some());
    let (_, health) = http_request(&addr, "GET", "/healthz", "").unwrap();
    let health = JsonValue::parse(&health).unwrap();
    assert_eq!(
        health.get("edits_applied").and_then(JsonValue::as_u64),
        Some(3),
        "a rejected edit must not mutate any session"
    );

    // No --snapshot path was configured in this process, so persistence
    // is off: /healthz reports it, the info gauge labels it, and an
    // on-demand save is refused with 409 (a client error, not a crash).
    assert_eq!(
        health
            .get("snapshot")
            .and_then(|s| s.get("mode"))
            .and_then(JsonValue::as_str),
        Some("disabled"),
        "healthz snapshot mode: {health:?}"
    );
    let (status, body) = http_request(&addr, "POST", "/snapshot/save", "").unwrap();
    assert_eq!(status, 409, "save without a configured path: {body}");
    assert!(body.contains("no snapshot path"), "{body}");
    let (_, metrics) = http_request(&addr, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.contains("svt_snapshot_info{mode=\"disabled\""),
        "metrics must expose the disabled snapshot state"
    );

    // A failing edit mid-batch rolls nothing in: the batch is refused
    // at the offending element and the count stays put.
    let (status, body) = http_request(
        &addr,
        "POST",
        "/eco",
        "[{\"type\":\"adjust_spacing\",\"instance\":\"no-such-inst\",\"dx_nm\":1.0}]",
    )
    .unwrap();
    assert_eq!(status, 400, "batch with a bad edit: {body}");

    // Keep-alive: one connection serves many requests, and the server
    // advertises it.
    let mut client = HttpClient::connect(&addr).expect("keep-alive connect");
    for _ in 0..5 {
        let response = client.send_full("GET", "/healthz", "").expect("reuse");
        assert_eq!(response.status, 200);
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    drop(client);

    // Cross-design isolation, deterministically: while c880's write
    // lock is held (a long ECO in progress), a read on c432 must still
    // be served promptly by another pool worker.
    let entry = server.state().registry().entry("c880").expect("c880");
    entry
        .write(|_session| {
            let t = Instant::now();
            let (status, _) = http_request(&addr, "GET", "/designs/c432/timing", "")
                .expect("read under held write lock");
            assert_eq!(status, 200);
            let waited = t.elapsed();
            assert!(
                waited < READ_LATENCY_BOUND,
                "c432 read stalled {waited:?} behind c880's write lock"
            );
        })
        .expect("write lock");

    // Concurrency differential: readers hammer c432 timing while a
    // writer streams ECO batches at c880. Reads must stay under the
    // latency bound throughout, and every served batch body is kept for
    // the bit-exact replay below. Not every INVX1 has room for the
    // wider master, so probe a throwaway mirror for one that does
    // (rejected edits validate without mutating).
    let instance = {
        let mut probe = warm_session(&DesignSpec::Iscas("c880".into())).expect("c880 probe");
        let candidates: Vec<String> = probe
            .netlist()
            .instances()
            .iter()
            .filter(|i| i.cell == "INVX1")
            .map(|i| i.name.clone())
            .collect();
        candidates
            .into_iter()
            .find(|name| {
                probe
                    .apply(&svt_eco::EcoEdit::ResizeCell {
                        instance: name.clone(),
                        new_cell: "INVX2".into(),
                    })
                    .is_ok()
            })
            .expect("some INVX1 in c880 has room to upsize")
    };
    let (batch_edits, batch_body) = resize_batch(&instance);

    let stop_readers = AtomicBool::new(false);
    let served_batches = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = HttpClient::connect(&addr).expect("reader connect");
                    let mut worst = Duration::ZERO;
                    let mut reads = 0u64;
                    while !stop_readers.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        // The server closes connections at the
                        // keep-alive request cap; a real client
                        // reconnects and carries on.
                        let (status, body) = match client.send("GET", "/designs/c432/timing", "") {
                            Ok(response) => response,
                            Err(_) => {
                                client = HttpClient::connect(&addr).expect("reader reconnect");
                                continue;
                            }
                        };
                        worst = worst.max(t.elapsed());
                        assert_eq!(status, 200, "{body}");
                        reads += 1;
                    }
                    (reads, worst)
                })
            })
            .collect();
        let mut writer = HttpClient::connect(&addr).expect("writer connect");
        let mut served = Vec::with_capacity(WRITER_BATCHES);
        for _ in 0..WRITER_BATCHES {
            let (status, body) = writer
                .send("POST", "/designs/c880/eco", &batch_body)
                .expect("writer batch");
            assert_eq!(status, 200, "{body}");
            served.push(body);
        }
        stop_readers.store(true, Ordering::Relaxed);
        for reader in readers {
            let (reads, worst) = reader.join().expect("reader thread");
            assert!(reads > 0, "reader never completed a request");
            assert!(
                worst < READ_LATENCY_BOUND,
                "a c432 read waited {worst:?} while c880 absorbed ECO batches"
            );
        }
        served
    });

    // Drain before replaying: the replay below flips SVT_THREADS, and
    // the process environment must not change under live pool workers.
    sampler.stop();
    server.shutdown();
    assert!(
        svt_exec::watchdog::status().healthy(),
        "watchdog must stay green through concurrent traffic"
    );

    // Bit-exact replay across thread counts: the daemon served the
    // batches under the default SVT_THREADS; replaying them locally
    // pinned to one thread must render byte-identical bodies.
    let restore = std::env::var("SVT_THREADS").ok();
    std::env::set_var("SVT_THREADS", "1");
    let mut mirror = warm_session(&DesignSpec::Iscas("c880".into())).expect("replay mirror");
    for (i, served) in served_batches.iter().enumerate() {
        let reports: Vec<_> = batch_edits
            .iter()
            .map(|edit| mirror.apply(edit).expect("replay apply"))
            .collect();
        let expected = render_batch_report(&reports);
        assert_eq!(
            served, &expected,
            "served batch {i} diverges from the SVT_THREADS=1 replay"
        );
    }
    match restore {
        Some(v) => std::env::set_var("SVT_THREADS", v),
        None => std::env::remove_var("SVT_THREADS"),
    }
    let _ = std::fs::remove_file(&access_log);
}
