//! End-to-end service-plane test: boot a real daemon on an ephemeral
//! port and run the exact CI smoke sequence against it in-process,
//! including the differential check that `POST /eco` slack deltas are
//! bit-identical to a direct `EcoSession::apply`. Then probe the error
//! paths the smoke sequence (which must pass) never exercises.
//!
//! Single `#[test]`: the telemetry registry, trace mode, and warm
//! library stack are process-global.

use std::time::Duration;

use svt_obs::alloc::CountingAlloc;
use svt_obs::json::JsonValue;
use svt_serve::http::http_request;
use svt_serve::server::{DesignSpec, Server, ServiceState};
use svt_serve::smoke::run_smoke;

// Match the daemon: attribute allocations so /metrics carries the
// svt_alloc_* gauges during the smoke scrape.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

#[test]
fn daemon_serves_all_endpoints_and_eco_deltas_match_direct_apply() {
    // Mirror the daemon's defaults: live timeline, allocation
    // attribution, armed watchdog.
    svt_obs::set_mode(svt_obs::TraceMode::Chrome);
    svt_obs::alloc::set_active(true);
    svt_exec::watchdog::arm(Duration::from_secs(30));

    let spec = DesignSpec::Builtin;
    let state = ServiceState::new(&spec).expect("warm-up succeeds");
    let server = Server::spawn("127.0.0.1:0", state).expect("bind an ephemeral port");
    let addr = server.addr().to_string();

    // The full CI sequence: healthz, two scrapes with delta series,
    // snapshot, timeline, and the bit-exact ECO differential.
    let summary = run_smoke(&addr, &spec).unwrap_or_else(|e| panic!("smoke failed: {e}"));
    assert!(summary.ends_with("smoke: PASS"), "summary: {summary}");

    // The smoke posted exactly one edit; /healthz accounts for it.
    let (status, health) = http_request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    let health = JsonValue::parse(&health).unwrap();
    assert_eq!(
        health.get("edits_applied").and_then(JsonValue::as_u64),
        Some(1)
    );

    // Error paths: unknown endpoint, wrong method, rejected edits.
    let (status, _) = http_request(&addr, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "POST", "/metrics", "").unwrap();
    assert_eq!(status, 405);
    let (status, body) = http_request(&addr, "POST", "/eco", "{\"type\":\"resize_cell\"}").unwrap();
    assert_eq!(status, 400, "missing fields are a client error: {body}");
    assert!(body.contains("instance"), "error names the field: {body}");
    let (status, body) = http_request(
        &addr,
        "POST",
        "/eco",
        "{\"type\":\"adjust_spacing\",\"instance\":\"no-such-inst\",\"dx_nm\":10.0}",
    )
    .unwrap();
    assert_eq!(status, 400, "invalid edits are a client error: {body}");
    let err = JsonValue::parse(&body).unwrap();
    assert!(err.get("error").and_then(JsonValue::as_str).is_some());

    // A rejected edit mutates nothing: the count is still one.
    let (_, health) = http_request(&addr, "GET", "/healthz", "").unwrap();
    let health = JsonValue::parse(&health).unwrap();
    assert_eq!(
        health.get("edits_applied").and_then(JsonValue::as_u64),
        Some(1)
    );

    server.shutdown();
}
