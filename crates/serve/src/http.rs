//! Hand-rolled HTTP/1.1 framing over `std::net`.
//!
//! The service plane deliberately avoids external crates (the build
//! environment is offline; see the workspace `vendor/` policy), so this
//! module implements exactly the subset of RFC 9112 the daemon needs —
//! and implements it *defensively*, because the parser sits on the
//! network edge of a long-lived process:
//!
//! * [`RequestParser`] is an incremental, byte-oriented parser: bytes
//!   arrive in arbitrary `read()`-sized chunks (headers may split
//!   anywhere, several pipelined requests may share one chunk) and the
//!   parser yields complete [`Request`]s as they materialize. It never
//!   panics on malformed input; every rejection is a typed
//!   [`ParseError`] carrying the `400`/`413` status the connection loop
//!   answers with. `crates/serve/tests/http_props.rs` fuzzes this
//!   contract.
//! * Keep-alive is first-class: HTTP/1.1 connections persist unless the
//!   client sends `Connection: close` (HTTP/1.0 is close-by-default),
//!   and [`write_response`] emits the matching `Connection:` header.
//! * [`HttpClient`] is the pure-Rust persistent client used by the
//!   smoke mode, the e2e tests, and the `bench_serve` load generator;
//!   [`http_request`] stays as the one-shot convenience wrapper.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest request body the server will buffer, bytes. ECO batch
/// payloads are a few kilobytes; anything larger is a client bug.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest request head (request line + headers) the parser will buffer
/// before rejecting with `413`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum number of request headers before the parser rejects with
/// `400`.
pub const MAX_HEADERS: usize = 64;

/// A parse rejection: the HTTP status the connection should answer with
/// (`400` for malformed syntax, `413` for size-limit violations) plus a
/// human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// `400` or `413`.
    pub status: u16,
    /// What was wrong, for the error envelope and logs.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> ParseError {
        ParseError {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> ParseError {
        ParseError {
            status: 413,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path including any query string, e.g. `/metrics`.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the connection persists after this exchange: HTTP/1.1
    /// default unless `Connection: close`; HTTP/1.0 requires an explicit
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// One response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` header value, seconds — the backpressure
    /// reply (`429`) sets it so clients know when to come back.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    /// A plain-text response with an explicit status.
    #[must_use]
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
        }
    }

    /// A JSON error envelope `{"error": "..."}` with the given status.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: format!("{{\"error\":\"{}\"}}", svt_obs::json::escape_json(message)),
            retry_after: None,
        }
    }

    /// The backpressure reply: `429 Too Many Requests` with a
    /// `Retry-After` hint.
    #[must_use]
    pub fn too_busy(retry_after_s: u64) -> Response {
        let mut r = Response::error(429, "server is at capacity, retry shortly");
        r.retry_after = Some(retry_after_s);
        r
    }
}

/// Canonical reason phrase for the handful of status codes the daemon
/// emits; anything else degrades to a bare numeric status line.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Incremental request parser: push bytes in as they arrive, pull
/// complete requests out. Leftover bytes (pipelined requests) stay
/// buffered for the next [`RequestParser::next_request`] call.
///
/// # Examples
///
/// ```
/// use svt_serve::http::RequestParser;
///
/// let mut p = RequestParser::new();
/// // Bytes may split anywhere — even inside a header name.
/// p.push(b"GET /healthz HTTP/1.1\r\nHo");
/// assert!(p.next_request().unwrap().is_none());
/// p.push(b"st: x\r\n\r\n");
/// let req = p.next_request().unwrap().expect("complete request");
/// assert_eq!(req.method, "GET");
/// assert_eq!(req.path, "/healthz");
/// assert!(req.keep_alive);
/// ```
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// An empty parser.
    #[must_use]
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends raw bytes from the connection.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (un-consumed).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request from the buffered bytes.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(req))`
    /// when a full request (head + body) was consumed. Consumed bytes
    /// are drained; pipelined leftovers remain for the next call.
    ///
    /// # Errors
    ///
    /// [`ParseError`] with status `400` on malformed syntax (bad request
    /// line, bad header, conflicting or non-numeric `Content-Length`,
    /// non-UTF-8 body) or `413` when the head exceeds
    /// [`MAX_HEAD_BYTES`] / the declared body exceeds
    /// [`MAX_BODY_BYTES`]. After an error the connection is
    /// unrecoverable (framing is lost) and must be closed.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        // Robustness (RFC 9112 §2.2): ignore blank line(s) before the
        // request line, e.g. trailing CRLF from a previous exchange.
        let mut start = 0;
        while self.buf[start..].starts_with(b"\r\n") {
            start += 2;
        }
        while self.buf[start..].starts_with(b"\n") {
            start += 1;
        }

        let Some(head_len) = find_head_end(&self.buf[start..]) else {
            if self.buf.len() - start > MAX_HEAD_BYTES {
                return Err(ParseError::too_large(format!(
                    "request head exceeds {MAX_HEAD_BYTES} bytes without terminating"
                )));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err(ParseError::too_large(format!(
                "request head of {head_len} bytes exceeds the {MAX_HEAD_BYTES}-byte limit"
            )));
        }

        let head = &self.buf[start..start + head_len];
        let head_str =
            std::str::from_utf8(head).map_err(|_| ParseError::bad("request head is not UTF-8"))?;
        let parsed = parse_head(head_str)?;

        let body_start = start + head_len;
        let available = self.buf.len() - body_start;
        if available < parsed.content_length {
            return Ok(None);
        }
        let body_bytes = &self.buf[body_start..body_start + parsed.content_length];
        let body = std::str::from_utf8(body_bytes)
            .map_err(|_| ParseError::bad("request body is not UTF-8"))?
            .to_string();
        let request = Request {
            method: parsed.method,
            path: parsed.path,
            body,
            keep_alive: parsed.keep_alive,
        };
        self.buf.drain(..body_start + parsed.content_length);
        Ok(Some(request))
    }
}

/// Finds the end of the request head: the byte length up to and
/// including the blank line (`\r\n\r\n`, or bare `\n\n` for lenient
/// clients). Returns `None` when no terminator is buffered yet.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1..].starts_with(b"\r\n") {
                return Some(i + 3);
            }
            if buf[i + 1..].starts_with(b"\n") {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

struct ParsedHead {
    method: String,
    path: String,
    content_length: usize,
    keep_alive: bool,
}

/// Whether `b` is an RFC 9110 token character (header names, methods).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

fn parse_head(head: &str) -> Result<ParsedHead, ParseError> {
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");

    // Request line: exactly `METHOD SP TARGET SP HTTP/1.x`, single
    // spaces, no control characters anywhere.
    if request_line.bytes().any(|b| b.is_ascii_control()) {
        return Err(ParseError::bad("control character in request line"));
    }
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(ParseError::bad(format!(
                "malformed request line `{}`",
                request_line.escape_debug()
            )))
        }
    };
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(ParseError::bad(format!(
            "invalid method `{}`",
            method.escape_debug()
        )));
    }
    if !path.starts_with('/') || path.bytes().any(|b| !b.is_ascii_graphic()) {
        return Err(ParseError::bad(format!(
            "invalid request target `{}`",
            path.escape_debug()
        )));
    }
    let minor = version
        .strip_prefix("HTTP/1.")
        .and_then(|m| m.parse::<u8>().ok())
        .filter(|m| *m <= 1);
    let Some(minor) = minor else {
        return Err(ParseError::bad(format!(
            "unsupported protocol version `{}`",
            version.escape_debug()
        )));
    };

    let mut content_length: Option<usize> = None;
    let mut connection_close = false;
    let mut connection_keep_alive = false;
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator line
        }
        header_count += 1;
        if header_count > MAX_HEADERS {
            return Err(ParseError::bad(format!(
                "more than {MAX_HEADERS} request headers"
            )));
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(ParseError::bad("obsolete header line folding"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::bad(format!(
                "malformed header `{}`",
                line.escape_debug()
            )));
        };
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(ParseError::bad(format!(
                "invalid header name `{}`",
                name.escape_debug()
            )));
        }
        let value = value.trim();
        if value.bytes().any(|b| b.is_ascii_control()) {
            return Err(ParseError::bad(format!(
                "control character in header `{name}`"
            )));
        }
        if name.eq_ignore_ascii_case("content-length") {
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::bad(format!("bad content-length `{value}`")));
            }
            let parsed: u128 = value
                .parse()
                .map_err(|_| ParseError::bad(format!("bad content-length `{value}`")))?;
            if parsed > MAX_BODY_BYTES as u128 {
                return Err(ParseError::too_large(format!(
                    "declared body of {parsed} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
            let parsed = parsed as usize;
            match content_length {
                Some(existing) if existing != parsed => {
                    return Err(ParseError::bad(format!(
                        "conflicting content-length values {existing} and {parsed}"
                    )));
                }
                _ => content_length = Some(parsed),
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::bad("transfer-encoding is not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    connection_close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    connection_keep_alive = true;
                }
            }
        }
    }

    let keep_alive = if minor >= 1 {
        !connection_close
    } else {
        connection_keep_alive && !connection_close
    };
    Ok(ParsedHead {
        method: method.to_string(),
        path: path.to_string(),
        content_length: content_length.unwrap_or(0),
        keep_alive,
    })
}

/// Writes one response and flushes. `close` controls the `Connection:`
/// header; when `true` the caller drops the stream afterwards.
///
/// # Errors
///
/// Propagates socket write failures as a message (the connection loop
/// logs and moves on — a client that hung up mid-response is not
/// fatal).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
) -> Result<(), String> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if let Some(after) = response.retry_after {
        head.push_str(&format!("Retry-After: {after}\r\n"));
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    // One coalesced write: head and body in separate small writes
    // interact with Nagle + delayed ACK and cost ~40 ms per response.
    let mut wire = Vec::with_capacity(head.len() + response.body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(response.body.as_bytes());
    stream
        .write_all(&wire)
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

/// One parsed response, as read by [`HttpClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Raw `(name, value)` header pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// First header value with the given case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server asked to close the connection.
    #[must_use]
    pub fn close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Persistent pure-Rust HTTP/1.1 client: one TCP connection reused
/// across requests (keep-alive), `Content-Length` framed responses.
/// Used by the smoke mode, the e2e/stress tests, and `bench_serve`.
///
/// # Examples
///
/// ```no_run
/// use svt_serve::http::HttpClient;
///
/// let mut client = HttpClient::connect("127.0.0.1:9290")?;
/// let (status, body) = client.send("GET", "/healthz", "")?;
/// assert_eq!(status, 200);
/// let (status, _) = client.send("GET", "/metrics", "")?; // same connection
/// assert_eq!(status, 200);
/// # Ok::<(), String>(())
/// ```
pub struct HttpClient {
    addr: String,
    stream: TcpStream,
    rbuf: Vec<u8>,
    closed: bool,
}

impl HttpClient {
    /// Connects with a 10 s connect timeout and 120 s read timeout.
    ///
    /// # Errors
    ///
    /// Returns a message on resolve/connect failure.
    pub fn connect(addr: &str) -> Result<HttpClient, String> {
        let sockaddr = addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("no address for {addr}"))?;
        let stream = TcpStream::connect_timeout(&sockaddr, Duration::from_secs(10))
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .map_err(|e| format!("set timeout: {e}"))?;
        Ok(HttpClient {
            addr: addr.to_string(),
            stream,
            rbuf: Vec::new(),
            closed: false,
        })
    }

    /// Overrides the read timeout (tests use short ones).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), String> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("set timeout: {e}"))
    }

    /// Sends one request on the persistent connection and returns
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure, a malformed response, or when
    /// the server closed the connection on a previous exchange.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        let response = self.send_full(method, path, body)?;
        Ok((response.status, response.body))
    }

    /// [`HttpClient::send`] returning the full parsed response
    /// (status, headers, body) — the stress tests read `Retry-After`.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::send`].
    pub fn send_full(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<HttpResponse, String> {
        if self.closed {
            return Err("connection was closed by the server".to_string());
        }
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        let mut wire = Vec::with_capacity(head.len() + body.len());
        wire.extend_from_slice(head.as_bytes());
        wire.extend_from_slice(body.as_bytes());
        self.stream
            .write_all(&wire)
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send request: {e}"))?;
        let response = read_response(&mut self.stream, &mut self.rbuf)?;
        if response.close() {
            self.closed = true;
        }
        Ok(response)
    }
}

/// Reads one `Content-Length`-framed response from `stream`, buffering
/// across reads in `rbuf` (leftover bytes stay for the next response).
fn read_response(stream: &mut TcpStream, rbuf: &mut Vec<u8>) -> Result<HttpResponse, String> {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_head_end(rbuf) {
            break end;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read response: {e}"))?;
        if n == 0 {
            return Err("connection closed before response head".to_string());
        }
        rbuf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&rbuf[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed response header `{line}`"));
        };
        let value = value.trim().to_string();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| format!("bad response content-length `{value}`"))?;
        }
        headers.push((name.to_string(), value));
    }

    while rbuf.len() < head_end + content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read response body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        rbuf.extend_from_slice(&chunk[..n]);
    }
    let body = std::str::from_utf8(&rbuf[head_end..head_end + content_length])
        .map_err(|_| "response body is not UTF-8".to_string())?
        .to_string();
    rbuf.drain(..head_end + content_length);
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// One-shot pure-Rust HTTP client: sends one request with
/// `Connection: close`, returns `(status, body)`.
///
/// # Errors
///
/// Returns a message on connect/write/read failure or an unparseable
/// response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("no address for {addr}"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut wire = Vec::with_capacity(head.len() + body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(body.as_bytes());
    stream
        .write_all(&wire)
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send request: {e}"))?;
    let mut rbuf = Vec::new();
    let response = read_response(&mut stream, &mut rbuf)?;
    Ok((response.status, response.body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn parse_one(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        let mut p = RequestParser::new();
        p.push(raw);
        p.next_request()
    }

    #[test]
    fn request_and_response_round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut parser = RequestParser::new();
            let mut chunk = [0u8; 1024];
            let req = loop {
                if let Some(req) = parser.next_request().unwrap() {
                    break req;
                }
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "client hung up early");
                parser.push(&chunk[..n]);
            };
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/eco");
            assert_eq!(req.body, "{\"k\":1}");
            write_response(&mut stream, &Response::json("{\"ok\":true}".into()), true).unwrap();
        });
        let (status, body) = http_request(&addr.to_string(), "POST", "/eco", "{\"k\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn pipelined_requests_parse_in_order_from_one_buffer() {
        let mut p = RequestParser::new();
        p.push(b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.0\r\n\r\n");
        let a = p.next_request().unwrap().unwrap();
        assert_eq!((a.method.as_str(), a.path.as_str()), ("GET", "/a"));
        assert!(a.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let b = p.next_request().unwrap().unwrap();
        assert_eq!(b.body, "hi");
        let c = p.next_request().unwrap().unwrap();
        assert_eq!(c.path, "/c");
        assert!(!c.keep_alive, "HTTP/1.0 defaults to close");
        assert!(p.next_request().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn split_boundaries_never_lose_or_corrupt_a_request() {
        let raw = b"POST /eco HTTP/1.1\r\nContent-Length: 7\r\nHost: localhost\r\n\r\n{\"k\":1}";
        for split in 0..raw.len() {
            let mut p = RequestParser::new();
            p.push(&raw[..split]);
            let early = p.next_request().unwrap();
            if let Some(req) = early {
                panic!("complete request from a {split}-byte prefix: {req:?}");
            }
            p.push(&raw[split..]);
            let req = p.next_request().unwrap().expect("complete after push");
            assert_eq!(req.body, "{\"k\":1}", "split at {split}");
        }
    }

    #[test]
    fn malformed_inputs_reject_with_400() {
        for raw in [
            b"GET\r\n\r\n".as_slice(),
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/9\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"G\x01T /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nHost: a\r\n v-fold\r\n\r\n",
        ] {
            let err = parse_one(raw).expect_err(&format!("{}", String::from_utf8_lossy(raw)));
            assert_eq!(err.status, 400, "{}: {err}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn size_limits_reject_with_413() {
        let oversized = format!(
            "POST /eco HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_one(oversized.as_bytes()).unwrap_err().status, 413);

        // A head that never terminates trips the limit too.
        let mut p = RequestParser::new();
        p.push(b"GET /x HTTP/1.1\r\n");
        p.push(&vec![b'a'; MAX_HEAD_BYTES + 2]);
        assert_eq!(p.next_request().unwrap_err().status, 413);
    }

    #[test]
    fn duplicate_identical_content_lengths_are_tolerated() {
        let req =
            parse_one(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok")
                .unwrap()
                .unwrap();
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn connection_header_drives_keep_alive() {
        let close = parse_one(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let ka10 = parse_one(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(ka10.keep_alive);
    }

    #[test]
    fn persistent_client_reuses_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut parser = RequestParser::new();
            let mut chunk = [0u8; 1024];
            for i in 0..3 {
                let _req = loop {
                    if let Some(req) = parser.next_request().unwrap() {
                        break req;
                    }
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0);
                    parser.push(&chunk[..n]);
                };
                let close = i == 2;
                write_response(
                    &mut stream,
                    &Response::json(format!("{{\"i\":{i}}}")),
                    close,
                )
                .unwrap();
            }
            // Only ever one accepted connection: reaching here proves reuse.
        });
        let mut client = HttpClient::connect(&addr.to_string()).unwrap();
        for i in 0..3 {
            let (status, body) = client.send("GET", "/n", "").unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("{{\"i\":{i}}}"));
        }
        assert!(client.send("GET", "/n", "").is_err(), "server closed");
        server.join().unwrap();
    }

    #[test]
    fn retry_after_header_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut parser = RequestParser::new();
            let mut chunk = [0u8; 1024];
            loop {
                if parser.next_request().unwrap().is_some() {
                    break;
                }
                let n = stream.read(&mut chunk).unwrap();
                parser.push(&chunk[..n]);
            }
            write_response(&mut stream, &Response::too_busy(1), true).unwrap();
        });
        let mut client = HttpClient::connect(&addr.to_string()).unwrap();
        let response = client.send_full("GET", "/x", "").unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert!(response.close());
        server.join().unwrap();
    }
}
