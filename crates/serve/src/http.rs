//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! The service plane deliberately avoids external crates (the build
//! environment is offline; see the workspace `vendor/` policy), so this
//! module hand-rolls exactly the subset of RFC 9112 the daemon needs:
//! one request per connection, `Content-Length` bodies, no chunked
//! encoding, no keep-alive. Both the server loop and the pure-Rust smoke
//! client ([`http_request`]) share this framing, which keeps the CI
//! smoke job free of `curl`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest request body the server will buffer, bytes. ECO edit payloads
/// are well under a kilobyte; anything larger is a client bug.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path including any query string, e.g. `/metrics`.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// One response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response with an explicit status.
    #[must_use]
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// A JSON error envelope `{"error": "..."}` with the given status.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: format!("{{\"error\":\"{}\"}}", svt_obs::json::escape_json(message)),
        }
    }
}

/// Canonical reason phrase for the handful of status codes the daemon
/// emits; anything else degrades to a bare numeric status line.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// Returns a human-readable message on malformed request lines, header
/// overflow, bodies past [`MAX_BODY_BYTES`], or I/O failure. The caller
/// turns these into `400` responses.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts
        .next()
        .ok_or("request line missing target")?
        .to_string();
    let version = parts.next().ok_or("request line missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol version `{version}`"));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(format!("malformed header `{header}`"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad content-length `{}`", value.trim()))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

/// Writes one response and flushes; the connection is then closed by the
/// caller dropping the stream (`Connection: close` semantics).
///
/// # Errors
///
/// Propagates socket write failures as a message (the server loop logs
/// and moves on — a client that hung up mid-response is not fatal).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> Result<(), String> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(response.body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

/// Pure-Rust HTTP client for the smoke mode and tests: sends one
/// request, returns `(status, body)`.
///
/// # Errors
///
/// Returns a message on connect/write/read failure or an unparseable
/// status line.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("no address for {addr}"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send request: {e}"))?;

    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .ok_or("response missing header terminator")?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line in `{}`", head.lines().next().unwrap_or("")))?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/eco");
            assert_eq!(req.body, "{\"k\":1}");
            write_response(&mut stream, &Response::json("{\"ok\":true}".into())).unwrap();
        });
        let (status, body) = http_request(&addr.to_string(), "POST", "/eco", "{\"k\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_and_bad_versions_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let err = read_request(&mut stream).unwrap_err();
                write_response(&mut stream, &Response::error(400, &err)).unwrap();
            }
        });

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(
            format!(
                "POST /eco HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        )
        .unwrap();
        s.flush().unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "got: {raw}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / SPDY/9\r\n\r\n").unwrap();
        s.flush().unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.contains("unsupported protocol"), "got: {raw}");

        server.join().unwrap();
    }
}
