//! The multi-tenant session registry: many warm designs, one daemon.
//!
//! Each registered design owns an independent `RwLock`-guarded session
//! slot, so traffic on different designs never serializes: an ECO batch
//! holding `c432`'s write lock cannot delay a timing read on `c7552`.
//! Designs start **cold** (registered by name only) and warm lazily on
//! first use — or eagerly via `POST /designs/{name}/warm` — paying the
//! per-design map/place/sign-off cost exactly once; the expensive
//! library expansion is process-wide and shared
//! (see [`crate::server::warm_session`]).
//!
//! # Locking order (invariant)
//!
//! 1. The registry map lock is only ever held to look up or insert an
//!    `Arc<DesignEntry>` — never across a slot lock acquisition, never
//!    across a warm-up, never across request handling.
//! 2. Slot locks never nest: a request touches exactly one design.
//!
//! With those two rules the plane cannot deadlock and a slow design
//! (warming, or mid-ECO) cannot block any other design's traffic.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use svt_eco::EcoSession;

use crate::server::{warm_session, DesignSpec};

/// Warmth of one design slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotStatus {
    /// Registered, not yet signed off.
    Cold,
    /// Signed off and serving.
    Warm,
    /// Warm-up failed; the message is served to clients.
    Failed(String),
}

impl SlotStatus {
    /// Status keyword as served in JSON (`cold` / `warm` / `failed`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            SlotStatus::Cold => "cold",
            SlotStatus::Warm => "warm",
            SlotStatus::Failed(_) => "failed",
        }
    }
}

enum Slot {
    Cold,
    Warm(Box<EcoSession<'static>>),
    Failed(String),
}

/// One design's slot: the spec it warms from plus the lock every
/// request on this design goes through.
pub struct DesignEntry {
    spec: DesignSpec,
    slot: RwLock<Slot>,
}

/// Errors surfaced by registry access, pre-classified into the HTTP
/// status the router answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The design name was never registered (`404`).
    UnknownDesign(String),
    /// The design's warm-up failed (`503` — retrying won't help until
    /// an operator intervenes, but the design *is* known).
    WarmupFailed(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownDesign(name) => write!(f, "unknown design `{name}`"),
            RegistryError::WarmupFailed(msg) => write!(f, "design warm-up failed: {msg}"),
        }
    }
}

impl DesignEntry {
    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.spec.name()
    }

    /// Current warmth without forcing a warm-up.
    ///
    /// # Panics
    ///
    /// Panics if the slot lock is poisoned (a handler panicked while
    /// holding it; the daemon treats that as fatal state).
    #[must_use]
    pub fn status(&self) -> SlotStatus {
        match &*self.slot.read().expect("design slot poisoned") {
            Slot::Cold => SlotStatus::Cold,
            Slot::Warm(_) => SlotStatus::Warm,
            Slot::Failed(e) => SlotStatus::Failed(e.clone()),
        }
    }

    /// Edits applied so far (0 while cold/failed).
    #[must_use]
    pub fn edits_applied(&self) -> usize {
        match &*self.slot.read().expect("design slot poisoned") {
            Slot::Warm(session) => session.edits().len(),
            _ => 0,
        }
    }

    /// Ensures the slot is warm, paying the sign-off on first call.
    /// Concurrent callers serialize on the write lock; losers find the
    /// slot warm and return immediately. Returns the warm-up wall time
    /// when *this* call did the work.
    ///
    /// # Errors
    ///
    /// [`RegistryError::WarmupFailed`] when the pipeline fails; the
    /// failure is sticky (served to every later request) so a broken
    /// design cannot re-pay a doomed sign-off per request.
    pub fn warm(&self) -> Result<Option<f64>, RegistryError> {
        if matches!(self.status(), SlotStatus::Warm) {
            return Ok(None);
        }
        let mut slot = self.slot.write().expect("design slot poisoned");
        match &*slot {
            Slot::Warm(_) => Ok(None),
            Slot::Failed(e) => Err(RegistryError::WarmupFailed(e.clone())),
            Slot::Cold => {
                let started = Instant::now();
                svt_obs::counter!("serve.warmups").incr();
                match warm_session(&self.spec) {
                    Ok(session) => {
                        *slot = Slot::Warm(Box::new(session));
                        svt_obs::gauge!("serve.designs_warm").add(1);
                        Ok(Some(started.elapsed().as_secs_f64()))
                    }
                    Err(e) => {
                        *slot = Slot::Failed(e.clone());
                        svt_obs::counter!("serve.warmup_failures").incr();
                        Err(RegistryError::WarmupFailed(e))
                    }
                }
            }
        }
    }

    /// Runs `f` under this design's **read** lock (shared with other
    /// readers, excluded from writers), warming lazily first.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignEntry::warm`] failures.
    pub fn read<R>(&self, f: impl FnOnce(&EcoSession<'static>) -> R) -> Result<R, RegistryError> {
        loop {
            {
                let slot = self.slot.read().expect("design slot poisoned");
                match &*slot {
                    Slot::Warm(session) => return Ok(f(session)),
                    Slot::Failed(e) => return Err(RegistryError::WarmupFailed(e.clone())),
                    Slot::Cold => {}
                }
            }
            self.warm()?;
        }
    }

    /// Runs `f` under this design's **write** lock (exclusive), warming
    /// lazily first. ECO batches apply here: the whole batch sits under
    /// one lock hold, so concurrent readers observe either the
    /// pre-batch or post-batch state, never a half-applied one.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignEntry::warm`] failures.
    pub fn write<R>(
        &self,
        f: impl FnOnce(&mut EcoSession<'static>) -> R,
    ) -> Result<R, RegistryError> {
        loop {
            {
                let mut slot = self.slot.write().expect("design slot poisoned");
                match &mut *slot {
                    Slot::Warm(session) => return Ok(f(session)),
                    Slot::Failed(e) => return Err(RegistryError::WarmupFailed(e.clone())),
                    Slot::Cold => {}
                }
            }
            self.warm()?;
        }
    }
}

/// The set of designs this daemon serves.
pub struct SessionRegistry {
    designs: RwLock<HashMap<String, Arc<DesignEntry>>>,
    /// Registration order, for stable `/designs` listings.
    order: RwLock<Vec<String>>,
}

impl Default for SessionRegistry {
    fn default() -> SessionRegistry {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> SessionRegistry {
        SessionRegistry {
            designs: RwLock::new(HashMap::new()),
            order: RwLock::new(Vec::new()),
        }
    }

    /// Registers a design cold; re-registering the same name is a no-op
    /// (the existing slot, warm or not, is kept).
    ///
    /// # Panics
    ///
    /// Panics if the map lock is poisoned.
    pub fn register(&self, spec: &DesignSpec) {
        let mut designs = self.designs.write().expect("registry map poisoned");
        if designs.contains_key(spec.name()) {
            return;
        }
        designs.insert(
            spec.name().to_string(),
            Arc::new(DesignEntry {
                spec: spec.clone(),
                slot: RwLock::new(Slot::Cold),
            }),
        );
        self.order
            .write()
            .expect("registry order poisoned")
            .push(spec.name().to_string());
    }

    /// Looks up a design. The returned `Arc` outlives the map lock, so
    /// callers never hold the map lock while touching the slot.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownDesign`] for unregistered names.
    pub fn entry(&self, name: &str) -> Result<Arc<DesignEntry>, RegistryError> {
        self.designs
            .read()
            .expect("registry map poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownDesign(name.to_string()))
    }

    /// All entries in registration order.
    ///
    /// # Panics
    ///
    /// Panics if a registry lock is poisoned.
    #[must_use]
    pub fn entries(&self) -> Vec<Arc<DesignEntry>> {
        let designs = self.designs.read().expect("registry map poisoned");
        self.order
            .read()
            .expect("registry order poisoned")
            .iter()
            .filter_map(|name| designs.get(name).cloned())
            .collect()
    }

    /// Number of registered designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.designs.read().expect("registry map poisoned").len()
    }

    /// Whether no design is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_designs_and_registration_order() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        assert!(matches!(
            registry.entry("c432"),
            Err(RegistryError::UnknownDesign(name)) if name == "c432"
        ));
        registry.register(&DesignSpec::Builtin);
        registry.register(&DesignSpec::Iscas("c432".into()));
        registry.register(&DesignSpec::Builtin); // duplicate: no-op
        assert_eq!(registry.len(), 2);
        let names: Vec<_> = registry
            .entries()
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        assert_eq!(names, ["builtin", "c432"]);
        assert_eq!(
            registry.entry("builtin").unwrap().status(),
            SlotStatus::Cold
        );
        assert_eq!(registry.entry("builtin").unwrap().edits_applied(), 0);
    }
}
