//! Declarative service-level objectives evaluated as multi-window
//! burn rates.
//!
//! An operator states an objective per route class on the command line
//! (`--slo route=/designs/{name}/eco,p99_ms=5,err_pct=1,window=60`):
//! over any `window`-second interval, at most `err_pct` percent of
//! requests may fail (5xx) **or** exceed the `p99_ms` latency bound.
//! The request path feeds cheap relaxed counters per objective
//! ([`SloEngine::observe`]); the sampler thread drains them once per
//! tick into the embedded TSDB ([`SloEngine::tick`]) and evaluates the
//! classic two-window burn rate from the rings it just wrote:
//!
//! * **burn rate** = (bad-request fraction) / (error budget fraction).
//!   A burn of 1.0 spends the budget exactly at the window boundary;
//!   2.0 exhausts it in half the window.
//! * **fast window** = `window / 12` (floored at 5 s) catches sharp
//!   regressions quickly; the **slow window** = `window` confirms the
//!   regression is sustained, so a single bad scrape cannot page.
//! * A spec is **breached** only while *both* burns exceed 1.0. The
//!   transition into breach increments `serve.slo.breaches` and drops
//!   a flight-recorder post-mortem (reason `slo_breach ...`) so the
//!   capsules from the bad window survive the incident.
//!
//! Current state is surfaced three ways: an `slo` block in `/healthz`
//! (any breach degrades the service to 503), hand-rolled `svt_slo_*`
//! Prometheus families appended to `/metrics`, and the per-tick
//! `slo.<route>.{total,errors,slow}` series queryable via `/query`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use svt_obs::json::escape_json;
use svt_obs::tsdb::Tsdb;

/// One parsed `--slo` objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Route class template the objective applies to (e.g.
    /// `/designs/{name}/eco`), or `*` for every route.
    pub route: String,
    /// Latency bound: a request slower than this is "slow" and spends
    /// error budget.
    pub p99_ms: f64,
    /// Error budget: percent of requests in the window allowed to be
    /// bad (5xx or slow).
    pub err_pct: f64,
    /// Slow (confirming) evaluation window, seconds.
    pub window_s: u64,
}

impl SloSpec {
    /// Parses the `--slo` argument syntax:
    /// `route=PATH[,p99_ms=N][,err_pct=N][,window=N]`.
    /// Unspecified fields default to `p99_ms=50`, `err_pct=1`,
    /// `window=60`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field for an unknown
    /// key, an unparseable number, a non-positive bound, or a missing
    /// `route`.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut route: Option<String> = None;
        let mut p99_ms = 50.0f64;
        let mut err_pct = 1.0f64;
        let mut window_s = 60u64;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("slo spec `{s}`: `{part}` is not key=value"))?;
            match key.trim() {
                "route" => route = Some(value.trim().to_string()),
                "p99_ms" => {
                    p99_ms = value
                        .trim()
                        .parse::<f64>()
                        .map_err(|e| format!("slo spec `{s}`: p99_ms: {e}"))?;
                }
                "err_pct" => {
                    err_pct = value
                        .trim()
                        .parse::<f64>()
                        .map_err(|e| format!("slo spec `{s}`: err_pct: {e}"))?;
                }
                "window" => {
                    window_s = value
                        .trim()
                        .parse::<u64>()
                        .map_err(|e| format!("slo spec `{s}`: window: {e}"))?;
                }
                other => return Err(format!("slo spec `{s}`: unknown key `{other}`")),
            }
        }
        let route = route.ok_or_else(|| format!("slo spec `{s}`: missing route="))?;
        if route.is_empty() {
            return Err(format!("slo spec `{s}`: empty route"));
        }
        if !p99_ms.is_finite() || p99_ms <= 0.0 || !err_pct.is_finite() || err_pct <= 0.0 {
            return Err(format!("slo spec `{s}`: p99_ms and err_pct must be > 0"));
        }
        if window_s == 0 {
            return Err(format!("slo spec `{s}`: window must be > 0 seconds"));
        }
        Ok(SloSpec {
            route,
            p99_ms,
            err_pct,
            window_s,
        })
    }

    /// The fast (paging) window: `window / 12`, floored at 5 s so a
    /// short objective still averages over a few sampler ticks.
    #[must_use]
    pub fn fast_window_s(&self) -> u64 {
        (self.window_s / 12).max(5)
    }

    /// TSDB series stem for this objective: the route template with
    /// every non-alphanumeric run collapsed to one `_`.
    #[must_use]
    pub fn metric_slug(&self) -> String {
        let mut slug = String::with_capacity(self.route.len());
        for c in self.route.chars() {
            if c.is_ascii_alphanumeric() {
                slug.push(c.to_ascii_lowercase());
            } else if !slug.ends_with('_') && !slug.is_empty() {
                slug.push('_');
            }
        }
        while slug.ends_with('_') {
            slug.pop();
        }
        if slug.is_empty() {
            slug.push_str("all");
        }
        slug
    }
}

/// Point-in-time evaluation of one objective, for `/healthz` and
/// `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The objective evaluated.
    pub spec: SloSpec,
    /// Requests observed since boot.
    pub total: u64,
    /// 5xx responses since boot.
    pub errors: u64,
    /// Responses over the latency bound since boot.
    pub slow: u64,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow (full) window.
    pub slow_burn: f64,
    /// Whether both burns currently exceed 1.0.
    pub breached: bool,
    /// Breach transitions since boot.
    pub breaches: u64,
}

impl SloStatus {
    /// Renders the status as one `/healthz` `slo` array element.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"route\":\"{}\",\"p99_ms\":{},\"err_pct\":{},\"window_s\":{},\
             \"total\":{},\"errors\":{},\"slow\":{},\
             \"fast_burn\":{:.4},\"slow_burn\":{:.4},\"breached\":{},\"breaches\":{}}}",
            escape_json(&self.spec.route),
            self.spec.p99_ms,
            self.spec.err_pct,
            self.spec.window_s,
            self.total,
            self.errors,
            self.slow,
            self.fast_burn,
            self.slow_burn,
            self.breached,
            self.breaches
        )
    }
}

struct SloRuntime {
    spec: SloSpec,
    slug: String,
    total: AtomicU64,
    errors: AtomicU64,
    slow: AtomicU64,
    /// Cumulative counts at the previous tick, so each tick ingests
    /// deltas into the TSDB.
    prev: Mutex<(u64, u64, u64)>,
    breached: AtomicBool,
    breaches: AtomicU64,
    burns: Mutex<(f64, f64)>,
}

/// The evaluator shared by the request path (hot, lock-free) and the
/// sampler thread (cold, once per tick).
pub struct SloEngine {
    slos: Vec<SloRuntime>,
    dump_on_breach: bool,
}

impl SloEngine {
    /// Builds the engine from parsed `--slo` specs.
    #[must_use]
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            slos: specs
                .into_iter()
                .map(|spec| SloRuntime {
                    slug: spec.metric_slug(),
                    spec,
                    total: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                    slow: AtomicU64::new(0),
                    prev: Mutex::new((0, 0, 0)),
                    breached: AtomicBool::new(false),
                    breaches: AtomicU64::new(0),
                    burns: Mutex::new((0.0, 0.0)),
                })
                .collect(),
            dump_on_breach: true,
        }
    }

    /// Disables the breach-triggered post-mortem dump (tests share one
    /// process-global dump path; production keeps the default on).
    pub fn set_dump_on_breach(&mut self, on: bool) {
        self.dump_on_breach = on;
    }

    /// True when no objectives are configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Configured objectives, in declaration order.
    #[must_use]
    pub fn specs(&self) -> Vec<SloSpec> {
        self.slos.iter().map(|s| s.spec.clone()).collect()
    }

    /// Request-path hook: three relaxed increments per matching
    /// objective, nothing else. `route` is the class template from the
    /// router; a spec with route `*` matches everything.
    pub fn observe(&self, route: &str, status: u16, latency_ns: u64) {
        for slo in &self.slos {
            if slo.spec.route != "*" && slo.spec.route != route {
                continue;
            }
            slo.total.fetch_add(1, Ordering::Relaxed);
            if status >= 500 {
                slo.errors.fetch_add(1, Ordering::Relaxed);
            }
            let bound_ns = slo.spec.p99_ms * 1e6;
            if latency_ns as f64 > bound_ns {
                slo.slow.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Sampler hook: drains the per-objective counters into the TSDB
    /// as `slo.<route>.{total,errors,slow}` deltas, then re-evaluates
    /// both burn windows from the rings. Returns `true` when any
    /// objective transitioned into breach this tick.
    pub fn tick(&self, store: &Tsdb, now_ms: u64) -> bool {
        let mut newly_breached = false;
        for slo in &self.slos {
            let total = slo.total.load(Ordering::Relaxed);
            let errors = slo.errors.load(Ordering::Relaxed);
            let slow = slo.slow.load(Ordering::Relaxed);
            {
                let mut prev = slo
                    .prev
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let (dt, de, ds) = (
                    total.saturating_sub(prev.0),
                    errors.saturating_sub(prev.1),
                    slow.saturating_sub(prev.2),
                );
                *prev = (total, errors, slow);
                #[allow(clippy::cast_precision_loss)]
                {
                    store.ingest(&format!("slo.{}.total", slo.slug), now_ms, dt as f64);
                    store.ingest(&format!("slo.{}.errors", slo.slug), now_ms, de as f64);
                    store.ingest(&format!("slo.{}.slow", slo.slug), now_ms, ds as f64);
                }
            }
            let budget = slo.spec.err_pct / 100.0;
            let fast = burn_over(
                store,
                &slo.slug,
                slo.spec.fast_window_s() * 1000,
                now_ms,
                budget,
            );
            let slow_burn = burn_over(store, &slo.slug, slo.spec.window_s * 1000, now_ms, budget);
            *slo.burns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = (fast, slow_burn);
            let breached = fast > 1.0 && slow_burn > 1.0;
            let was = slo.breached.swap(breached, Ordering::Relaxed);
            if breached && !was {
                newly_breached = true;
                slo.breaches.fetch_add(1, Ordering::Relaxed);
                svt_obs::counter!("serve.slo.breaches").incr();
                eprintln!(
                    "svtd: SLO breach on {} (fast_burn {fast:.2}, slow_burn {slow_burn:.2})",
                    slo.spec.route
                );
                if self.dump_on_breach {
                    let _ = svt_obs::recorder::post_mortem(&format!(
                        "slo_breach route={} fast_burn={fast:.2} slow_burn={slow_burn:.2}",
                        slo.spec.route
                    ));
                }
            }
        }
        newly_breached
    }

    /// Snapshot of every objective's current evaluation.
    #[must_use]
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.slos
            .iter()
            .map(|slo| {
                let (fast_burn, slow_burn) = *slo
                    .burns
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                SloStatus {
                    spec: slo.spec.clone(),
                    total: slo.total.load(Ordering::Relaxed),
                    errors: slo.errors.load(Ordering::Relaxed),
                    slow: slo.slow.load(Ordering::Relaxed),
                    fast_burn,
                    slow_burn,
                    breached: slo.breached.load(Ordering::Relaxed),
                    breaches: slo.breaches.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// True while any objective is breached — `/healthz` degrades to
    /// 503 on this.
    #[must_use]
    pub fn any_breached(&self) -> bool {
        self.slos.iter().any(|s| s.breached.load(Ordering::Relaxed))
    }

    /// Renders the `svt_slo_*` Prometheus families appended to
    /// `/metrics`: burn rates and breach state as gauges, request
    /// classes and breach transitions as counters.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        if self.slos.is_empty() {
            return String::new();
        }
        let statuses = self.statuses();
        let mut out = String::with_capacity(512);
        out.push_str("# HELP svt_slo_burn_rate Error-budget burn rate per objective window.\n");
        out.push_str("# TYPE svt_slo_burn_rate gauge\n");
        for s in &statuses {
            let route = &s.spec.route;
            out.push_str(&format!(
                "svt_slo_burn_rate{{route=\"{route}\",window=\"fast\"}} {:.6}\n",
                s.fast_burn
            ));
            out.push_str(&format!(
                "svt_slo_burn_rate{{route=\"{route}\",window=\"slow\"}} {:.6}\n",
                s.slow_burn
            ));
        }
        out.push_str("# HELP svt_slo_breached 1 while both burn windows exceed 1.0.\n");
        out.push_str("# TYPE svt_slo_breached gauge\n");
        for s in &statuses {
            out.push_str(&format!(
                "svt_slo_breached{{route=\"{}\"}} {}\n",
                s.spec.route,
                u8::from(s.breached)
            ));
        }
        out.push_str("# HELP svt_slo_requests_total Requests observed per objective and class.\n");
        out.push_str("# TYPE svt_slo_requests_total counter\n");
        for s in &statuses {
            let route = &s.spec.route;
            out.push_str(&format!(
                "svt_slo_requests_total{{route=\"{route}\",class=\"total\"}} {}\n",
                s.total
            ));
            out.push_str(&format!(
                "svt_slo_requests_total{{route=\"{route}\",class=\"error\"}} {}\n",
                s.errors
            ));
            out.push_str(&format!(
                "svt_slo_requests_total{{route=\"{route}\",class=\"slow\"}} {}\n",
                s.slow
            ));
        }
        out.push_str("# HELP svt_slo_breaches_total Breach transitions since boot.\n");
        out.push_str("# TYPE svt_slo_breaches_total counter\n");
        for s in &statuses {
            out.push_str(&format!(
                "svt_slo_breaches_total{{route=\"{}\"}} {}\n",
                s.spec.route, s.breaches
            ));
        }
        out
    }
}

/// Bad-request fraction over the trailing window, divided by the
/// budget fraction. Reads the `slo.<slug>.*` rings the tick just
/// wrote; an empty window burns nothing.
fn burn_over(store: &Tsdb, slug: &str, range_ms: u64, now_ms: u64, budget: f64) -> f64 {
    let sum_of = |metric: &str| -> f64 {
        store
            .query(metric, range_ms, 0, now_ms)
            .map(|r| r.points.iter().map(|p| p.bin.sum).sum())
            .unwrap_or(0.0)
    };
    let total = sum_of(&format!("slo.{slug}.total"));
    if total <= 0.0 {
        return 0.0;
    }
    let bad = sum_of(&format!("slo.{slug}.errors")) + sum_of(&format!("slo.{slug}.slow"));
    (bad / total) / budget.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_obs::tsdb::{TierSpec, TsdbConfig};

    fn test_store() -> Tsdb {
        Tsdb::new(TsdbConfig {
            tiers: vec![
                TierSpec {
                    width_ms: 0,
                    cap: 512,
                },
                TierSpec {
                    width_ms: 60_000,
                    cap: 64,
                },
            ],
        })
    }

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let spec = SloSpec::parse("route=/designs/{name}/eco,p99_ms=5,err_pct=1,window=60")
            .expect("parses");
        assert_eq!(spec.route, "/designs/{name}/eco");
        assert!((spec.p99_ms - 5.0).abs() < 1e-9);
        assert!((spec.err_pct - 1.0).abs() < 1e-9);
        assert_eq!(spec.window_s, 60);
        assert_eq!(spec.fast_window_s(), 5);
        assert_eq!(spec.metric_slug(), "designs_name_eco");
    }

    #[test]
    fn parse_defaults_and_rejects_garbage() {
        let spec = SloSpec::parse("route=*").expect("route alone parses");
        assert!((spec.p99_ms - 50.0).abs() < 1e-9);
        assert!((spec.err_pct - 1.0).abs() < 1e-9);
        assert_eq!(spec.window_s, 60);
        assert_eq!(spec.metric_slug(), "all");
        assert!(SloSpec::parse("p99_ms=5").is_err(), "route is required");
        assert!(SloSpec::parse("route=/x,p99_ms=abc").is_err());
        assert!(SloSpec::parse("route=/x,latency=5").is_err(), "unknown key");
        assert!(SloSpec::parse("route=/x,window=0").is_err());
        assert!(SloSpec::parse("route=/x,err_pct=0").is_err());
        assert!(SloSpec::parse("route").is_err(), "not key=value");
    }

    #[test]
    fn observe_classifies_errors_and_slow_requests() {
        let engine = SloEngine::new(vec![SloSpec::parse(
            "route=/designs/{name}/timing,p99_ms=1",
        )
        .expect("spec")]);
        engine.observe("/designs/{name}/timing", 200, 500_000); // fast ok
        engine.observe("/designs/{name}/timing", 200, 2_000_000); // slow
        engine.observe("/designs/{name}/timing", 503, 500_000); // error
        engine.observe("/other", 503, 500_000); // different route: ignored
        let s = &engine.statuses()[0];
        assert_eq!((s.total, s.errors, s.slow), (3, 1, 1));
    }

    #[test]
    fn wildcard_route_matches_everything() {
        let engine = SloEngine::new(vec![SloSpec::parse("route=*").expect("spec")]);
        engine.observe("/a", 200, 0);
        engine.observe("/b", 200, 0);
        assert_eq!(engine.statuses()[0].total, 2);
    }

    #[test]
    fn tick_breaches_on_sustained_burn_and_recovers() {
        let store = test_store();
        let mut engine = SloEngine::new(vec![SloSpec::parse(
            "route=*,p99_ms=1,err_pct=10,window=60",
        )
        .expect("spec")]);
        engine.set_dump_on_breach(false);
        let mut now = 1_000_000u64;
        // Healthy traffic: no budget spent.
        for _ in 0..5 {
            for _ in 0..20 {
                engine.observe("/x", 200, 100_000);
            }
            assert!(!engine.tick(&store, now), "healthy traffic never breaches");
            now += 1_000;
        }
        assert!(!engine.any_breached());
        // 50% errors against a 10% budget: burn 5x on both windows.
        let mut transitions = 0;
        for _ in 0..5 {
            for i in 0..20 {
                engine.observe("/x", if i % 2 == 0 { 500 } else { 200 }, 100_000);
            }
            if engine.tick(&store, now) {
                transitions += 1;
            }
            now += 1_000;
        }
        assert_eq!(transitions, 1, "breach transition fires exactly once");
        assert!(engine.any_breached());
        let s = &engine.statuses()[0];
        assert!(s.breached && s.breaches == 1);
        assert!(s.fast_burn > 1.0, "fast burn {}", s.fast_burn);
        assert!(s.slow_burn > 1.0, "slow burn {}", s.slow_burn);
        // Long healthy stretch: the fast window clears first, then the
        // slow window; either clears the breach flag.
        for _ in 0..70 {
            for _ in 0..50 {
                engine.observe("/x", 200, 100_000);
            }
            engine.tick(&store, now);
            now += 1_000;
        }
        assert!(
            !engine.any_breached(),
            "burns decay once traffic is healthy"
        );
        assert_eq!(
            engine.statuses()[0].breaches,
            1,
            "recovery does not re-count the old breach"
        );
    }

    #[test]
    fn prometheus_rendering_names_every_family() {
        let store = test_store();
        let mut engine = SloEngine::new(vec![
            SloSpec::parse("route=/healthz,p99_ms=5").expect("spec")
        ]);
        engine.set_dump_on_breach(false);
        engine.observe("/healthz", 200, 1_000);
        engine.tick(&store, 1_000_000);
        let prom = engine.to_prometheus();
        for family in [
            "svt_slo_burn_rate{route=\"/healthz\",window=\"fast\"}",
            "svt_slo_burn_rate{route=\"/healthz\",window=\"slow\"}",
            "svt_slo_breached{route=\"/healthz\"} 0",
            "svt_slo_requests_total{route=\"/healthz\",class=\"total\"} 1",
            "svt_slo_breaches_total{route=\"/healthz\"} 0",
        ] {
            assert!(prom.contains(family), "missing `{family}` in:\n{prom}");
        }
        assert!(
            SloEngine::new(vec![]).to_prometheus().is_empty(),
            "no objectives, no families"
        );
    }

    #[test]
    fn status_json_is_parseable() {
        let engine = SloEngine::new(vec![SloSpec::parse("route=*").expect("spec")]);
        let json = engine.statuses()[0].to_json();
        let doc = svt_obs::json::JsonValue::parse(&json).expect("healthz slo element parses");
        assert_eq!(
            doc.get("route").and_then(svt_obs::json::JsonValue::as_str),
            Some("*")
        );
        assert_eq!(
            doc.get("breached")
                .and_then(svt_obs::json::JsonValue::as_bool),
            Some(false)
        );
    }
}
