//! The warm pipeline state, the request router, and the concurrent
//! connection plane.
//!
//! Startup pays the library expansion once (process-wide, `Box::leak`ed
//! behind a `OnceLock`); every design registered with the daemon then
//! warms lazily — map, place, sign off into an
//! [`EcoSession`] — on first use or an explicit
//! `POST /designs/{name}/warm`. Requests are served by a fixed pool of
//! persistent handler threads ([`svt_exec::service::ServicePool`])
//! behind a bounded accept queue: when the queue is full the accept
//! loop answers `429 Too Many Requests` + `Retry-After` immediately
//! instead of buffering unboundedly, and a drain
//! (`POST /shutdown` / SIGTERM) finishes every accepted request while
//! refusing new ones with `503`.
//!
//! Connections are HTTP/1.1 keep-alive: one handler thread owns a
//! connection for its lifetime, serving up to
//! [`ServerOptions::keep_alive_max_requests`] requests (pipelining
//! included) with an idle timeout between them.
//!
//! Every request is served under a fresh [`svt_obs::RequestContext`]
//! (monotonic trace id + route class + design), measured into labeled
//! metric families (`serve.requests{route,design,status}`,
//! `serve.latency_ns{route,design}`, `serve.response_bytes{route,design}`),
//! optionally logged as one JSONL line ([`crate::access_log`]), and —
//! when it exceeds [`ServerOptions::slow_ms`] — captured into the
//! [`svt_obs::recorder`] flight-recorder ring served at
//! `GET /debug/requests`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::path::Path;

use svt_core::snapshot::{restore_or_fallback, stack_fingerprint, PipelineSnapshot};
use svt_core::{SignoffFlow, SignoffOptions};
use svt_eco::{DeltaReport, EcoEdit, EcoError, EcoSession};
use svt_exec::service::ServicePool;
use svt_litho::Process;
use svt_netlist::{bench, technology_map};
use svt_obs::json::{escape_json, JsonValue};
use svt_place::{place, PlacementOptions};
use svt_stdcell::{expand_library, ExpandOptions, ExpandedLibrary, Library};

use crate::access_log::{AccessEntry, AccessLog};
use crate::http::{write_response, Request, RequestParser, Response};
use crate::registry::{RegistryError, SessionRegistry, SlotStatus};

/// The built-in warm-up design: small enough to sign off in well under a
/// second, rich enough to have multi-corner endpoint deltas. The smoke
/// client rebuilds its mirror session from this same source, so the text
/// here is part of the differential contract.
pub const BUILTIN_NETLIST: &str = "# svtd warm design\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(y)\nc = NAND(a, b)\nd = NOT(c)\nz = NOT(d)\ny = NAND(c, d)\n";

/// Name reported for the built-in design.
pub const BUILTIN_NAME: &str = "builtin";

/// Which design the daemon keeps warm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignSpec {
    /// The tiny [`BUILTIN_NETLIST`].
    Builtin,
    /// One of the paper's ISCAS85 testcases (`c432` …).
    Iscas(String),
}

impl DesignSpec {
    /// Parses a `--design` argument: `builtin` or a paper testcase name.
    ///
    /// # Errors
    ///
    /// Returns the list of accepted names on anything else.
    pub fn parse(name: &str) -> Result<DesignSpec, String> {
        if name == BUILTIN_NAME {
            return Ok(DesignSpec::Builtin);
        }
        if svt_bench::PAPER_TESTCASES.contains(&name) {
            return Ok(DesignSpec::Iscas(name.to_string()));
        }
        Err(format!(
            "unknown design `{name}`; expected `{BUILTIN_NAME}` or one of {:?}",
            svt_bench::PAPER_TESTCASES
        ))
    }

    /// The design name used in routes and reports.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            DesignSpec::Builtin => BUILTIN_NAME,
            DesignSpec::Iscas(n) => n,
        }
    }
}

/// The leaked library/expanded/flow stack shared by every session in
/// this process (daemon sessions, test mirrors, smoke mirrors).
struct WarmStack {
    library: &'static Library,
    expanded: &'static ExpandedLibrary,
    flow: &'static SignoffFlow<'static>,
    /// [`stack_fingerprint`] of this process's engines/options — the
    /// gate every snapshot load and save goes through.
    fingerprint: u64,
}

/// How this process's warm stack came to be, surfaced on `/healthz` and
/// as the `svt_snapshot_info` metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotStatus {
    /// `"disabled"` (no `--snapshot`), `"restored"` (warm boot from the
    /// file), or `"cold"` (configured but rebuilt — first boot, stale
    /// fingerprint, or corruption; the fallback reason is on the
    /// `snap.restore_fallback{reason}` counter family).
    pub mode: &'static str,
    /// Configured snapshot path, when any.
    pub path: Option<String>,
    /// Milliseconds spent restoring (parse + preload), `0.0` unless
    /// `mode == "restored"`.
    pub restore_ms: f64,
    /// Size of the snapshot file consumed or produced, when known.
    pub size_bytes: u64,
    /// The stack fingerprint of this process (0 until the stack warms).
    pub fingerprint: u64,
}

fn snapshot_path_slot() -> &'static OnceLock<Option<String>> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    &PATH
}

fn snapshot_status_slot() -> &'static Mutex<SnapshotStatus> {
    static STATUS: OnceLock<Mutex<SnapshotStatus>> = OnceLock::new();
    STATUS.get_or_init(|| {
        Mutex::new(SnapshotStatus {
            mode: "disabled",
            path: None,
            restore_ms: 0.0,
            size_bytes: 0,
            fingerprint: 0,
        })
    })
}

/// Configures the warm-start snapshot path (`svtd --snapshot PATH`).
/// Must be called before the first session warms; once the stack is
/// built the path is frozen. Returns whether this call set the path.
pub fn configure_snapshot(path: Option<String>) -> bool {
    snapshot_path_slot().set(path).is_ok()
}

/// The current snapshot status (mode, path, restore time, size).
#[must_use]
pub fn snapshot_status() -> SnapshotStatus {
    snapshot_status_slot()
        .lock()
        .expect("snapshot status poisoned")
        .clone()
}

fn warm_stack() -> &'static WarmStack {
    static STACK: OnceLock<WarmStack> = OnceLock::new();
    STACK.get_or_init(|| {
        let _span = svt_obs::span("serve.warmup.library");
        let library: &'static Library = Box::leak(Box::new(Library::svt90()));
        let sim = Process::nm90().simulator();
        let options = ExpandOptions::fast();
        let fingerprint = stack_fingerprint(&sim, library, &options);
        let path = snapshot_path_slot().get_or_init(|| None).clone();

        let mut status = SnapshotStatus {
            mode: "disabled",
            path: path.clone(),
            restore_ms: 0.0,
            size_bytes: 0,
            fingerprint,
        };
        let mut restored: Option<PipelineSnapshot> = None;
        if let Some(p) = &path {
            status.mode = "cold";
            let t0 = Instant::now();
            if let Some(snap) = restore_or_fallback(Path::new(p), fingerprint) {
                snap.preload_expand_caches();
                status.mode = "restored";
                status.restore_ms = t0.elapsed().as_secs_f64() * 1e3;
                status.size_bytes = std::fs::metadata(p).map_or(0, |m| m.len());
                restored = Some(snap);
            }
        }

        let expanded = match &restored {
            Some(snap) => snap.expanded.clone(),
            None => expand_library(library, &sim, &options)
                .expect("expanding the svt90 library with the calibrated simulator succeeds"),
        };
        let expanded = Box::leak(Box::new(expanded));
        let flow = Box::leak(Box::new(SignoffFlow::new(
            library,
            expanded,
            SignoffOptions::default(),
        )));
        if let Some(snap) = &restored {
            let t0 = Instant::now();
            snap.preload_flow(flow);
            status.restore_ms += t0.elapsed().as_secs_f64() * 1e3;
        }
        svt_obs::gauge!("snap.restore_ms").set(status.restore_ms as i64);
        *snapshot_status_slot()
            .lock()
            .expect("snapshot status poisoned") = status;
        WarmStack {
            library,
            expanded,
            flow,
            fingerprint,
        }
    })
}

/// Captures the current warm stack (expanded library plus both memo
/// cache layers) into the configured snapshot file. Called by `svtd`
/// after a cold warm-up and by `POST /snapshot/save`.
///
/// # Errors
///
/// Returns a message when no `--snapshot` path is configured or the
/// write fails; the daemon keeps serving either way.
pub fn save_snapshot() -> Result<(String, u64), String> {
    let Some(path) = snapshot_path_slot().get_or_init(|| None).clone() else {
        return Err("no snapshot path configured (start svtd with --snapshot PATH)".to_string());
    };
    let _span = svt_obs::span("serve.snapshot.save");
    let stack = warm_stack();
    let snap = PipelineSnapshot::capture(stack.expanded, None, Some(stack.flow));
    let size = snap
        .write_file(Path::new(&path), stack.fingerprint)
        .map_err(|e| format!("writing snapshot `{path}`: {e}"))?;
    snapshot_status_slot()
        .lock()
        .expect("snapshot status poisoned")
        .size_bytes = size;
    svt_obs::counter!("snap.saves").incr();
    Ok((path, size))
}

/// Builds a fully signed-off session for the given design.
///
/// The expensive library expansion is shared process-wide; only the
/// per-design mapping, placement, and sign-off run per call, so a test
/// or smoke mirror is much cheaper than the first warm-up.
///
/// # Errors
///
/// Returns a message when parsing, mapping, placement, or the initial
/// sign-off fails.
///
/// # Panics
///
/// Panics if the one-time svt90 library expansion itself fails — that is
/// a broken build, not a recoverable request error.
pub fn warm_session(spec: &DesignSpec) -> Result<EcoSession<'static>, String> {
    let _span = svt_obs::span("serve.warmup.session");
    let stack = warm_stack();
    let (mapped, placement) = match spec {
        DesignSpec::Builtin => {
            let netlist =
                bench::parse(BUILTIN_NETLIST).map_err(|e| format!("builtin netlist: {e}"))?;
            let mapped = technology_map(&netlist, stack.library)
                .map_err(|e| format!("mapping builtin design: {e}"))?;
            let placement = place(&mapped, stack.library, &PlacementOptions::default())
                .map_err(|e| format!("placing builtin design: {e}"))?;
            (mapped, placement)
        }
        DesignSpec::Iscas(name) => {
            let design = svt_bench::build_design(stack.library, name);
            (design.mapped, design.placement)
        }
    };
    EcoSession::new(stack.flow, &mapped, &placement)
        .map_err(|e| format!("initial sign-off of `{}`: {e}", spec.name()))
}

/// Tunables of the connection plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerOptions {
    /// Persistent handler threads.
    pub workers: usize,
    /// Bounded accept-queue capacity; a full queue answers `429`.
    pub queue_capacity: usize,
    /// Requests served on one keep-alive connection before it is closed.
    pub keep_alive_max_requests: usize,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Fault injection for the stress tests: an artificial delay before
    /// each request is handled. `None` in production.
    pub fault_delay: Option<Duration>,
    /// Structured JSONL access log path (`--access-log`); `None`
    /// disables request logging.
    pub access_log_path: Option<String>,
    /// Flight-recorder threshold (`--slow-ms`): requests at or above
    /// this latency are captured as [`svt_obs::recorder`] capsules.
    /// `Some(0)` captures every request; `None` disables the recorder.
    pub slow_ms: Option<u64>,
    /// Rotated access-log generations kept on disk
    /// (`--access-log-rotate`).
    pub access_log_rotate: usize,
    /// Declarative objectives (`--slo`, repeatable) evaluated by the
    /// [`crate::slo::SloEngine`] against the embedded TSDB.
    pub slo_specs: Vec<crate::slo::SloSpec>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 4,
            queue_capacity: 64,
            keep_alive_max_requests: 100,
            idle_timeout: Duration::from_secs(5),
            fault_delay: None,
            access_log_path: None,
            slow_ms: None,
            access_log_rotate: crate::access_log::DEFAULT_GENERATIONS,
            slo_specs: Vec::new(),
        }
    }
}

/// Most scraper identities whose previous-scrape snapshots are
/// retained for per-interval delta series; the least recently seen
/// scraper is evicted beyond this.
pub const SCRAPE_LRU_CAPACITY: usize = 8;

/// Shared state behind the router: the design registry plus the
/// previous scrape per scraper identity, used to derive per-interval
/// rate/delta series.
///
/// Keying the delta state per scraper matters: with one global slot,
/// two Prometheus instances scraping concurrently would each see
/// deltas against the *other's* last scrape — intervals halve and
/// series jitter. Identity is the `?scraper=NAME` query parameter when
/// present, else the peer IP, else `default`; the map is a bounded LRU
/// ([`SCRAPE_LRU_CAPACITY`]) so an open endpoint cannot grow state
/// unboundedly.
pub struct ServiceState {
    registry: SessionRegistry,
    default_design: String,
    started: Instant,
    draining: AtomicBool,
    options: ServerOptions,
    scrapes: Mutex<Vec<(String, Instant, svt_obs::Snapshot)>>,
    access_log: Option<AccessLog>,
    slo: crate::slo::SloEngine,
}

impl ServiceState {
    /// Registers `specs` (all cold — warm-up is lazy, or explicit via
    /// [`ServiceState::warm`] / `POST /designs/{name}/warm`). The first
    /// spec becomes the default design that bare `POST /eco` targets.
    ///
    /// # Errors
    ///
    /// Returns a message when `specs` is empty or the configured access
    /// log cannot be opened.
    pub fn new(specs: &[DesignSpec], options: ServerOptions) -> Result<ServiceState, String> {
        let first = specs.first().ok_or("at least one design is required")?;
        let registry = SessionRegistry::new();
        for spec in specs {
            registry.register(spec);
        }
        let access_log = match &options.access_log_path {
            Some(path) => Some(AccessLog::open_with_generations(
                path,
                crate::access_log::DEFAULT_MAX_BYTES,
                options.access_log_rotate,
            )?),
            None => None,
        };
        let slo = crate::slo::SloEngine::new(options.slo_specs.clone());
        Ok(ServiceState {
            registry,
            default_design: first.name().to_string(),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            options,
            scrapes: Mutex::new(Vec::new()),
            access_log,
            slo,
        })
    }

    /// Warms one design eagerly, returning its warm-up seconds when this
    /// call paid them.
    ///
    /// # Errors
    ///
    /// Propagates registry lookup / warm-up failures.
    pub fn warm(&self, name: &str) -> Result<Option<f64>, RegistryError> {
        self.registry.entry(name)?.warm()
    }

    /// The design registry.
    #[must_use]
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// Name of the default (first registered) design.
    #[must_use]
    pub fn default_design(&self) -> &str {
        &self.default_design
    }

    /// The connection-plane tunables.
    #[must_use]
    pub fn options(&self) -> &ServerOptions {
        &self.options
    }

    /// The SLO evaluator. The request path feeds it; the sampler
    /// thread calls [`crate::slo::SloEngine::tick`] through this.
    #[must_use]
    pub fn slo(&self) -> &crate::slo::SloEngine {
        &self.slo
    }

    /// Whether a graceful shutdown is in progress.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: new work is refused with `503`, current
    /// work completes. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// Formats an `f64` so it survives a JSON round-trip bit-exactly: `{:?}`
/// is Rust's shortest-round-trip form and the shared
/// [`svt_obs::json`] parser reads exponent notation. Non-finite values
/// (never produced by the flow) degrade to `null`.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Renders a [`DeltaReport`] as the single-edit `POST /eco` response
/// body. Floats are serialized in shortest-round-trip form, so they
/// parse back bit-exactly; the differential smoke check relies on that.
#[must_use]
pub fn render_delta_report(report: &DeltaReport) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"edit\":\"");
    out.push_str(&escape_json(&report.edit));
    out.push_str("\",\"rows_extracted\":[");
    for (i, row) in report.rows_extracted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&row.to_string());
    }
    out.push_str("],\"recharacterized\":");
    out.push_str(&report.recharacterized.len().to_string());
    out.push_str(",\"pitch_rows_invalidated\":");
    out.push_str(&report.pitch_rows_invalidated.to_string());
    out.push_str(",\"forward_instances\":");
    out.push_str(&report.forward_instances.to_string());
    out.push_str(",\"backward_nets\":");
    out.push_str(&report.backward_nets.to_string());
    out.push_str(",\"spread_gap_delta_ns\":");
    out.push_str(&fmt_f64(report.spread_gap_delta_ns()));
    out.push_str(",\"uncertainty_reduction_delta_pct\":");
    out.push_str(&fmt_f64(report.uncertainty_reduction_delta_pct()));
    out.push_str(",\"timing_noop\":");
    out.push_str(if report.is_timing_noop() {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"endpoint_deltas\":[");
    for (i, d) in report.endpoint_deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"endpoint\":\"");
        out.push_str(&escape_json(&d.endpoint));
        out.push_str("\",\"corner\":\"");
        out.push_str(&escape_json(&d.corner));
        out.push_str("\",\"arrival_before_ns\":");
        out.push_str(&fmt_f64(d.arrival_before_ns));
        out.push_str(",\"arrival_after_ns\":");
        out.push_str(&fmt_f64(d.arrival_after_ns));
        out.push_str(",\"slack_delta_ns\":");
        out.push_str(&fmt_f64(d.slack_delta_ns()));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a batched `POST /eco` response: the per-edit reports plus
/// the batch-level endpoint deltas (first-seen `before` to last-seen
/// `after` per endpoint/corner, in first-appearance order). Bit-exact
/// float serialization, same as [`render_delta_report`] — the
/// concurrency differential test replays batches through a local
/// session and compares these bodies byte-for-byte.
#[must_use]
pub fn render_batch_report(reports: &[DeltaReport]) -> String {
    let mut merged: Vec<(String, String, f64, f64)> = Vec::new();
    for report in reports {
        for d in &report.endpoint_deltas {
            if let Some(slot) = merged
                .iter_mut()
                .find(|(e, c, _, _)| *e == d.endpoint && *c == d.corner)
            {
                slot.3 = d.arrival_after_ns;
            } else {
                merged.push((
                    d.endpoint.clone(),
                    d.corner.clone(),
                    d.arrival_before_ns,
                    d.arrival_after_ns,
                ));
            }
        }
    }
    let mut out = String::with_capacity(1024);
    out.push_str("{\"edits\":");
    out.push_str(&reports.len().to_string());
    out.push_str(",\"reports\":[");
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_delta_report(report));
    }
    out.push_str("],\"endpoint_deltas\":[");
    for (i, (endpoint, corner, before, after)) in merged.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"endpoint\":\"");
        out.push_str(&escape_json(endpoint));
        out.push_str("\",\"corner\":\"");
        out.push_str(&escape_json(corner));
        out.push_str("\",\"arrival_before_ns\":");
        out.push_str(&fmt_f64(*before));
        out.push_str(",\"arrival_after_ns\":");
        out.push_str(&fmt_f64(*after));
        out.push_str(",\"slack_delta_ns\":");
        out.push_str(&fmt_f64(before - after));
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn edit_from_json(v: &JsonValue) -> Result<EcoEdit, String> {
    let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field `{name}`"));
    let string_field = |name: &str| {
        field(name).and_then(|f| {
            f.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field `{name}` must be a string"))
        })
    };
    let number_field = |name: &str| {
        field(name).and_then(|f| {
            f.as_f64()
                .ok_or_else(|| format!("field `{name}` must be a number"))
        })
    };
    let kind = string_field("type")?;
    match kind.as_str() {
        "swap_cell" => Ok(EcoEdit::SwapCell {
            instance: string_field("instance")?,
            new_cell: string_field("new_cell")?,
        }),
        "resize_cell" => Ok(EcoEdit::ResizeCell {
            instance: string_field("instance")?,
            new_cell: string_field("new_cell")?,
        }),
        "adjust_spacing" => Ok(EcoEdit::AdjustSpacing {
            instance: string_field("instance")?,
            dx_nm: number_field("dx_nm")?,
        }),
        "move_instance" => Ok(EcoEdit::MoveInstance {
            instance: string_field("instance")?,
            row: field("row")?
                .as_u64()
                .ok_or("field `row` must be a non-negative integer")?
                as usize,
            x_nm: number_field("x_nm")?,
        }),
        other => Err(format!(
            "unknown edit type `{other}`; expected swap_cell, resize_cell, adjust_spacing, or move_instance"
        )),
    }
}

/// Parses a single-edit `POST /eco` body into a typed edit.
///
/// The shape is one flat object selected by `type`:
///
/// ```json
/// {"type": "resize_cell",    "instance": "g3", "new_cell": "INVX2"}
/// {"type": "swap_cell",      "instance": "g3", "new_cell": "INVX2"}
/// {"type": "adjust_spacing", "instance": "g3", "dx_nm": -120.0}
/// {"type": "move_instance",  "instance": "g3", "row": 1, "x_nm": 940.0}
/// ```
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn parse_edit(body: &str) -> Result<EcoEdit, String> {
    let v = JsonValue::parse(body).map_err(|e| format!("body is not JSON: {e}"))?;
    edit_from_json(&v)
}

/// How a `POST /eco` body was shaped, so single-edit responses keep
/// their original schema while batches get the batch schema.
#[derive(Debug, Clone, PartialEq)]
pub enum EcoRequest {
    /// A single flat edit object.
    Single(EcoEdit),
    /// A JSON array of edit objects, applied atomically under one write
    /// lock hold.
    Batch(Vec<EcoEdit>),
}

/// Parses a `POST /eco` body: one flat edit object, or a JSON array of
/// them (the batched form).
///
/// # Errors
///
/// Returns a message naming the offending element/field; an empty batch
/// is rejected.
pub fn parse_eco_request(body: &str) -> Result<EcoRequest, String> {
    let v = JsonValue::parse(body).map_err(|e| format!("body is not JSON: {e}"))?;
    if let Some(items) = v.as_array() {
        if items.is_empty() {
            return Err("edit batch is empty".to_string());
        }
        let edits = items
            .iter()
            .enumerate()
            .map(|(i, item)| edit_from_json(item).map_err(|e| format!("edit[{i}]: {e}")))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(EcoRequest::Batch(edits))
    } else {
        Ok(EcoRequest::Single(edit_from_json(&v)?))
    }
}

fn registry_error_response(e: &RegistryError) -> Response {
    match e {
        RegistryError::UnknownDesign(_) => Response::error(404, &e.to_string()),
        RegistryError::WarmupFailed(_) => Response::error(503, &e.to_string()),
    }
}

fn eco_error_response(e: &EcoError) -> Response {
    match e {
        EcoError::InvalidEdit { .. } | EcoError::Netlist(_) | EcoError::Place(_) => {
            Response::error(400, &e.to_string())
        }
        _ => Response::error(500, &e.to_string()),
    }
}

fn healthz(state: &ServiceState) -> Response {
    let wd = svt_exec::watchdog::status();
    let mut designs = String::new();
    let mut total_edits = 0usize;
    for (i, entry) in state.registry.entries().iter().enumerate() {
        if i > 0 {
            designs.push(',');
        }
        let edits = entry.edits_applied();
        total_edits += edits;
        designs.push_str(&format!(
            "{{\"name\":\"{}\",\"status\":\"{}\",\"edits_applied\":{edits}}}",
            escape_json(entry.name()),
            entry.status().as_str()
        ));
    }
    let slo_breached = state.slo.any_breached();
    let status = if !wd.healthy() {
        "stalled"
    } else if slo_breached {
        "degraded"
    } else if state.draining() {
        "draining"
    } else {
        "ok"
    };
    let slo_block = state
        .slo
        .statuses()
        .iter()
        .map(crate::slo::SloStatus::to_json)
        .collect::<Vec<_>>()
        .join(",");
    let occ = svt_obs::tsdb::global().occupancy();
    let tsdb_tiers = occ
        .tiers
        .iter()
        .map(|(width, cap, len)| format!("{{\"width_ms\":{width},\"cap\":{cap},\"points\":{len}}}"))
        .collect::<Vec<_>>()
        .join(",");
    let snap = snapshot_status();
    let snap_path = snap
        .path
        .as_ref()
        .map_or_else(|| "null".to_string(), |p| format!("\"{}\"", escape_json(p)));
    let body = format!(
        "{{\"status\":\"{status}\",\"design\":\"{}\",\"designs\":[{designs}],\"uptime_seconds\":{},\"edits_applied\":{total_edits},\"queue_depth\":{},\"in_flight\":{},\"snapshot\":{{\"mode\":\"{}\",\"path\":{snap_path},\"restore_ms\":{},\"size_bytes\":{}}},\"watchdog\":{{\"armed\":{},\"deadline_ms\":{},\"stalled_now\":{},\"stall_events\":{},\"healthy\":{}}},\"slo\":[{slo_block}],\"tsdb\":{{\"series\":{},\"memory_bound_bytes\":{},\"tiers\":[{tsdb_tiers}]}}}}",
        escape_json(&state.default_design),
        fmt_f64(state.started.elapsed().as_secs_f64()),
        svt_obs::registry().gauge("serve.pool.queue_depth").get(),
        svt_obs::registry().gauge("serve.pool.in_flight").get(),
        snap.mode,
        fmt_f64(snap.restore_ms),
        snap.size_bytes,
        wd.armed,
        wd.deadline.as_millis(),
        wd.stalled_now,
        wd.stall_events,
        wd.healthy(),
        occ.series,
        occ.memory_bound_bytes
    );
    Response {
        status: if wd.healthy() && !slo_breached {
            200
        } else {
            503
        },
        content_type: "application/json",
        body,
        retry_after: None,
    }
}

/// Which delta-state slot a `/metrics` request addresses: the
/// `?scraper=NAME` query parameter when present, else the peer IP, else
/// `default`. Two concurrent scrapers with distinct identities get
/// independent previous-scrape snapshots and therefore correct
/// per-interval deltas.
fn scraper_identity(req_path: &str, peer: Option<&str>) -> String {
    if let Some((_, query)) = req_path.split_once('?') {
        for pair in query.split('&') {
            if let Some(name) = pair.strip_prefix("scraper=") {
                if !name.is_empty() {
                    return name.to_string();
                }
            }
        }
    }
    peer.map_or_else(|| "default".to_string(), str::to_string)
}

fn metrics(state: &ServiceState, scraper: &str) -> Response {
    // Refresh the pull-style sources right before snapshotting so the
    // scrape reflects this instant, not the last request.
    svt_obs::alloc::publish_gauges();
    svt_obs::rss::publish_gauges();
    let now = Instant::now();
    let snap = svt_obs::registry().snapshot();
    let mut body = svt_obs::build_info_prometheus(state.started.elapsed().as_secs_f64());
    body.push_str(&snapshot_info_prometheus());
    body.push_str(&state.slo.to_prometheus());
    body.push_str(&snap.to_prometheus());
    let mut scrapes = state.scrapes.lock().expect("scrape slots poisoned");
    if let Some(pos) = scrapes.iter().position(|(id, _, _)| id == scraper) {
        let (_, prev_at, prev) = scrapes.remove(pos);
        body.push_str(&snap.delta_prometheus(&prev, now.duration_since(prev_at).as_secs_f64()));
    } else if scrapes.len() >= SCRAPE_LRU_CAPACITY {
        // Front is least recently seen: entries re-push on every scrape.
        scrapes.remove(0);
        svt_obs::counter!("serve.scrape_evictions").incr();
    }
    scrapes.push((scraper.to_string(), now, snap));
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body,
        retry_after: None,
    }
}

/// The `svt_snapshot_info` exposition block: one always-1 gauge whose
/// labels carry the warm-start mode and path (the `svt_build_info`
/// idiom), plus the restore time as its own series when a restore
/// happened.
#[must_use]
pub fn snapshot_info_prometheus() -> String {
    let snap = snapshot_status();
    let path = snap
        .path
        .as_deref()
        .unwrap_or("")
        .replace('\\', "\\\\")
        .replace('"', "\\\"");
    let mut out = format!(
        "# HELP svt_snapshot_info Warm-start snapshot status of this process (value is always 1).\n\
         # TYPE svt_snapshot_info gauge\n\
         svt_snapshot_info{{mode=\"{}\",path=\"{path}\",fingerprint=\"{:016x}\"}} 1\n",
        snap.mode, snap.fingerprint
    );
    if snap.mode == "restored" {
        out.push_str(&format!(
            "# HELP svt_snapshot_restore_ms Milliseconds the warm boot spent restoring the snapshot.\n\
             # TYPE svt_snapshot_restore_ms gauge\n\
             svt_snapshot_restore_ms {}\n",
            fmt_f64(snap.restore_ms)
        ));
    }
    out
}

fn snapshot_save(state: &ServiceState) -> Response {
    if state.draining() {
        return Response::error(503, "draining");
    }
    match save_snapshot() {
        Ok((path, size)) => Response::json(format!(
            "{{\"status\":\"saved\",\"path\":\"{}\",\"size_bytes\":{size}}}",
            escape_json(&path)
        )),
        Err(e) if e.starts_with("no snapshot path") => Response::error(409, &e),
        Err(e) => Response::error(500, &e),
    }
}

fn designs_index(state: &ServiceState) -> Response {
    let mut out = String::from("{\"default\":\"");
    out.push_str(&escape_json(&state.default_design));
    out.push_str("\",\"designs\":[");
    for (i, entry) in state.registry.entries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let status = entry.status();
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"status\":\"{}\",\"edits_applied\":{}",
            escape_json(entry.name()),
            status.as_str(),
            entry.edits_applied()
        ));
        if let SlotStatus::Failed(e) = &status {
            out.push_str(&format!(",\"error\":\"{}\"", escape_json(e)));
        }
        out.push('}');
    }
    out.push_str("]}");
    Response::json(out)
}

fn design_detail(state: &ServiceState, name: &str) -> Response {
    let entry = match state.registry.entry(name) {
        Ok(entry) => entry,
        Err(e) => return registry_error_response(&e),
    };
    let status = entry.status();
    let mut out = format!(
        "{{\"name\":\"{}\",\"status\":\"{}\",\"edits_applied\":{}",
        escape_json(entry.name()),
        status.as_str(),
        entry.edits_applied()
    );
    if let SlotStatus::Failed(e) = &status {
        out.push_str(&format!(",\"error\":\"{}\"", escape_json(e)));
    }
    out.push('}');
    Response::json(out)
}

fn design_warm(state: &ServiceState, name: &str) -> Response {
    let entry = match state.registry.entry(name) {
        Ok(entry) => entry,
        Err(e) => return registry_error_response(&e),
    };
    match entry.warm() {
        Ok(seconds) => Response::json(format!(
            "{{\"name\":\"{}\",\"status\":\"warm\",\"warmed_now\":{},\"warm_seconds\":{}}}",
            escape_json(name),
            seconds.is_some(),
            seconds.map_or("null".to_string(), fmt_f64)
        )),
        Err(e) => registry_error_response(&e),
    }
}

/// Renders the read-path timing summary of one design (served under the
/// design's read lock, so it never waits on other designs' writes).
#[must_use]
pub fn render_timing(session: &EcoSession<'_>) -> String {
    let c = session.comparison();
    let corners = |t: &svt_core::CornerTiming| {
        format!(
            "{{\"bc_ns\":{},\"nom_ns\":{},\"wc_ns\":{},\"spread_ns\":{}}}",
            fmt_f64(t.bc_ns),
            fmt_f64(t.nom_ns),
            fmt_f64(t.wc_ns),
            fmt_f64(t.spread_ns())
        )
    };
    format!(
        "{{\"testcase\":\"{}\",\"gates\":{},\"traditional\":{},\"aware\":{},\"uncertainty_reduction_pct\":{},\"edits_applied\":{}}}",
        escape_json(&c.testcase),
        c.gates,
        corners(&c.traditional),
        corners(&c.aware),
        fmt_f64(c.uncertainty_reduction_pct()),
        session.edits().len()
    )
}

fn design_timing(state: &ServiceState, name: &str) -> Response {
    let entry = match state.registry.entry(name) {
        Ok(entry) => entry,
        Err(e) => return registry_error_response(&e),
    };
    match entry.read(|session| render_timing(session)) {
        Ok(body) => Response::json(body),
        Err(e) => registry_error_response(&e),
    }
}

fn design_eco(state: &ServiceState, name: &str, req: &Request) -> Response {
    let request = match parse_eco_request(&req.body) {
        Ok(request) => request,
        Err(e) => return Response::error(400, &e),
    };
    let entry = match state.registry.entry(name) {
        Ok(entry) => entry,
        Err(e) => return registry_error_response(&e),
    };
    let _span = svt_obs::span("serve.eco");
    let applied = entry.write(|session| match &request {
        EcoRequest::Single(edit) => session.apply(edit).map(|report| vec![report]),
        EcoRequest::Batch(edits) => {
            // The whole batch applies under this one write-lock hold:
            // readers see pre- or post-batch state, nothing in between.
            // Edits validate before they mutate, so a rejected edit
            // leaves the session exactly at the previous edit's state;
            // the error names how many were applied.
            let mut reports = Vec::with_capacity(edits.len());
            for (i, edit) in edits.iter().enumerate() {
                match session.apply(edit) {
                    Ok(report) => reports.push(report),
                    Err(e) => {
                        return Err(EcoError::InvalidEdit {
                            reason: format!(
                                "edit[{i}] failed after {} applied: {e}",
                                reports.len()
                            ),
                        })
                    }
                }
            }
            Ok(reports)
        }
    });
    match applied {
        Ok(Ok(reports)) => match request {
            EcoRequest::Single(_) => Response::json(render_delta_report(&reports[0])),
            EcoRequest::Batch(_) => Response::json(render_batch_report(&reports)),
        },
        Ok(Err(e)) => eco_error_response(&e),
        Err(e) => registry_error_response(&e),
    }
}

/// Per-endpoint in-flight gauge, static names so the telemetry
/// registry interns once per endpoint class.
fn inflight_guard(method: &str, path: &str) -> svt_obs::InflightGuard {
    let gauge = match (method, path) {
        (_, "/healthz") => svt_obs::gauge!("serve.inflight.healthz"),
        (_, "/metrics") => svt_obs::gauge!("serve.inflight.metrics"),
        (_, "/snapshot.json") => svt_obs::gauge!("serve.inflight.snapshot"),
        (_, "/timeline.json") => svt_obs::gauge!("serve.inflight.timeline"),
        (_, "/query") => svt_obs::gauge!("serve.inflight.query"),
        (_, "/dashboard") => svt_obs::gauge!("serve.inflight.dashboard"),
        (_, "/debug/profile") => svt_obs::gauge!("serve.inflight.profile"),
        (_, p) if p == "/eco" || p.ends_with("/eco") => svt_obs::gauge!("serve.inflight.eco"),
        (_, p) if p.ends_with("/timing") => svt_obs::gauge!("serve.inflight.timing"),
        (_, p) if p.ends_with("/warm") => svt_obs::gauge!("serve.inflight.warm"),
        (_, p) if p == "/designs" || p.starts_with("/designs/") => {
            svt_obs::gauge!("serve.inflight.designs")
        }
        _ => svt_obs::gauge!("serve.inflight.other"),
    };
    gauge.inflight()
}

/// Serves the flight-recorder surface under `/debug/requests`:
/// the capsule index, one capsule by trace id, or its per-request
/// Chrome trace (`.../{trace_id}/trace.json`).
fn debug_requests(rest: &str) -> Response {
    if rest.is_empty() {
        return Response::json(svt_obs::recorder::render_index(
            &svt_obs::recorder::capsules(),
        ));
    }
    let (id, want_trace) = match rest.strip_suffix("/trace.json") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Ok(trace_id) = id.parse::<u64>() else {
        return Response::error(404, &format!("`{id}` is not a trace id"));
    };
    let Some(capsule) = svt_obs::recorder::find(trace_id) else {
        return Response::error(
            404,
            &format!("no capsule for trace id {trace_id} (evicted, or never slow enough)"),
        );
    };
    if want_trace {
        Response::json(svt_obs::recorder::chrome_trace(&capsule))
    } else {
        Response::json(svt_obs::recorder::render_capsule(&capsule))
    }
}

/// One query-string parameter from a raw request path, or `None` when
/// absent/empty. Values are taken verbatim (no percent-decoding): every
/// value this server accepts — metric names, ranges, formats — is
/// URL-safe already.
fn query_param(req_path: &str, key: &str) -> Option<String> {
    let (_, query) = req_path.split_once('?')?;
    for pair in query.split('&') {
        if let Some((k, v)) = pair.split_once('=') {
            if k == key && !v.is_empty() {
                return Some(v.to_string());
            }
        }
    }
    None
}

/// `GET /query?metric=NAME[&range=SECS][&step=SECS]`: a range query
/// against the embedded TSDB. `range` defaults to 300 s; `step=0` (the
/// default) returns the answering tier's native resolution.
fn tsdb_query(req_path: &str) -> Response {
    let Some(metric) = query_param(req_path, "metric") else {
        return Response::error(400, "missing ?metric= parameter");
    };
    let range_s = query_param(req_path, "range")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    let step_s = query_param(req_path, "step")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let store = svt_obs::tsdb::global();
    match store.query(
        &metric,
        range_s.saturating_mul(1000),
        step_s.saturating_mul(1000),
        svt_obs::tsdb::unix_ms(),
    ) {
        Some(result) => Response::json(result.to_json()),
        None => Response::error(
            404,
            &format!(
                "no series named `{metric}` (the sampler names {} series; try /dashboard)",
                store.names().len()
            ),
        ),
    }
}

/// `GET /debug/profile?format=collapsed|json|svg`: the continuous
/// profiler's aggregated stacks, as folded text (default), JSON, or a
/// self-contained flame-graph SVG.
fn debug_profile(req_path: &str) -> Response {
    let format = query_param(req_path, "format").unwrap_or_else(|| "collapsed".to_string());
    if !svt_obs::profile::enabled() {
        return Response::error(
            503,
            "profiler disabled (set SVT_PROFILE=1 or run under svtd, which enables it)",
        );
    }
    let entries = svt_obs::profile::snapshot();
    match format.as_str() {
        "collapsed" => Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: svt_obs::profile::render_collapsed(&entries),
            retry_after: None,
        },
        "json" => Response::json(svt_obs::profile::to_json(&entries)),
        "svg" => Response {
            status: 200,
            content_type: "image/svg+xml",
            body: svt_obs::profile::render_flame_svg(&entries),
            retry_after: None,
        },
        other => Response::error(
            400,
            &format!("unknown format `{other}` (collapsed|json|svg)"),
        ),
    }
}

/// Picks a display value per point for the dashboard sparklines: the
/// bin average, which is exact at raw resolution and the
/// count-weighted mean after downsampling.
fn series_values(store: &svt_obs::tsdb::Tsdb, metric: &str, range_s: u64) -> Vec<(u64, f64)> {
    store
        .query(
            metric,
            range_s.saturating_mul(1000),
            0,
            svt_obs::tsdb::unix_ms(),
        )
        .map(|r| r.points.iter().map(|p| (p.ts_ms, p.bin.avg())).collect())
        .unwrap_or_default()
}

/// Successive-difference transform for cumulative series (alloc bytes),
/// yielding a per-second rate between neighbouring samples.
fn rate_of(values: &[(u64, f64)]) -> Vec<(u64, f64)> {
    values
        .windows(2)
        .map(|w| {
            #[allow(clippy::cast_precision_loss)]
            let dt = (w[1].0.saturating_sub(w[0].0) as f64 / 1e3).max(1e-6);
            (w[1].0, ((w[1].1 - w[0].1) / dt).max(0.0))
        })
        .collect()
}

/// Compact human form for sparkline value labels.
fn fmt_compact(v: f64) -> String {
    let a = v.abs();
    if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// A dependency-free inline-SVG sparkline for one series.
fn sparkline_svg(values: &[(u64, f64)]) -> String {
    const W: f64 = 560.0;
    const H: f64 = 64.0;
    const PAD: f64 = 4.0;
    if values.len() < 2 {
        return "<p class=\"empty\">collecting\u{2026}</p>".to_string();
    }
    let t0 = values[0].0;
    let t1 = values[values.len() - 1].0;
    #[allow(clippy::cast_precision_loss)]
    let t_span = (t1.saturating_sub(t0) as f64).max(1.0);
    let v_min = values.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    let v_max = values
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let v_span = (v_max - v_min).max(1e-12);
    let mut pts = String::with_capacity(values.len() * 12);
    for (t, v) in values {
        #[allow(clippy::cast_precision_loss)]
        let x = PAD + (t.saturating_sub(t0) as f64) / t_span * (W - 2.0 * PAD);
        let y = H - PAD - (v - v_min) / v_span * (H - 2.0 * PAD);
        if !pts.is_empty() {
            pts.push(' ');
        }
        pts.push_str(&format!("{x:.1},{y:.1}"));
    }
    let last = values[values.len() - 1].1;
    format!(
        "<svg width=\"{W:.0}\" height=\"{H:.0}\" viewBox=\"0 0 {W:.0} {H:.0}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <polyline points=\"{pts}\" fill=\"none\" stroke=\"#2a6f97\" stroke-width=\"1.5\"/>\
         <text x=\"{:.0}\" y=\"12\" font-size=\"11\" fill=\"#444\" text-anchor=\"end\" \
         font-family=\"monospace\">now {} \u{00b7} min {} \u{00b7} max {}</text></svg>",
        W - PAD,
        fmt_compact(last),
        fmt_compact(v_min),
        fmt_compact(v_max)
    )
}

/// `GET /dashboard`: a self-contained HTML page — no scripts, no
/// external assets — with sparklines for the headline series, the SLO
/// table, and the TSDB's ring occupancy. Everything is rendered
/// server-side from the same rings `/query` serves.
fn dashboard(state: &ServiceState) -> Response {
    const RANGE_S: u64 = 600;
    let store = svt_obs::tsdb::global();
    let mut panels = String::new();
    let mut panel = |title: &str, svg: String| {
        panels.push_str(&format!("<div class=\"panel\"><h2>{title}</h2>{svg}</div>"));
    };
    panel(
        "requests / s",
        sparkline_svg(&series_values(store, "serve.requests.rate", RANGE_S)),
    );
    let p99_ms: Vec<(u64, f64)> = series_values(store, "serve.latency_all_ns.p99", RANGE_S)
        .into_iter()
        .map(|(t, v)| (t, v / 1e6))
        .collect();
    panel("p99 latency (ms)", sparkline_svg(&p99_ms));
    panel(
        "queue depth",
        sparkline_svg(&series_values(store, "serve.pool.queue_depth", RANGE_S)),
    );
    let rss_mib: Vec<(u64, f64)> = series_values(store, "proc.rss_kb", RANGE_S)
        .into_iter()
        .map(|(t, v)| (t, v / 1024.0))
        .collect();
    panel("RSS (MiB)", sparkline_svg(&rss_mib));
    let alloc_rate: Vec<(u64, f64)> = rate_of(&series_values(store, "alloc.total.bytes", RANGE_S))
        .into_iter()
        .map(|(t, v)| (t, v / (1024.0 * 1024.0)))
        .collect();
    panel("alloc rate (MiB/s)", sparkline_svg(&alloc_rate));
    panel(
        "pool stalls / s",
        sparkline_svg(&series_values(store, "pool.stall_events.rate", RANGE_S)),
    );
    panel(
        "reaped connections / s",
        sparkline_svg(&series_values(store, "serve.conn_reaped.rate", RANGE_S)),
    );
    let mut slo_rows = String::new();
    for s in state.slo.statuses() {
        slo_rows.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}%</td><td>{}s</td>\
             <td>{:.2}</td><td>{:.2}</td><td class=\"{}\">{}</td><td>{}</td></tr>",
            html_escape(&s.spec.route),
            s.spec.p99_ms,
            s.spec.err_pct,
            s.spec.window_s,
            s.fast_burn,
            s.slow_burn,
            if s.breached { "bad" } else { "ok" },
            if s.breached { "BREACHED" } else { "ok" },
            s.breaches
        ));
    }
    let slo_table = if slo_rows.is_empty() {
        "<p class=\"empty\">no objectives configured (start svtd with --slo \
         route=...,p99_ms=...,err_pct=...,window=...)</p>"
            .to_string()
    } else {
        format!(
            "<table><tr><th>route</th><th>p99 bound (ms)</th><th>budget</th><th>window</th>\
             <th>fast burn</th><th>slow burn</th><th>state</th><th>breaches</th></tr>{slo_rows}</table>"
        )
    };
    let occ = store.occupancy();
    let mut tier_rows = String::new();
    for (width, cap, len) in &occ.tiers {
        tier_rows.push_str(&format!(
            "<tr><td>{}</td><td>{len} / {cap}</td></tr>",
            if *width == 0 {
                "raw".to_string()
            } else {
                format!("{width} ms")
            }
        ));
    }
    let body = format!(
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>svtd dashboard</title><style>\
         body{{font-family:system-ui,sans-serif;margin:24px;color:#222;max-width:1200px}}\
         h1{{font-size:20px}}h2{{font-size:13px;margin:2px 0;color:#555;font-weight:600}}\
         .panel{{display:inline-block;margin:8px 16px 8px 0;vertical-align:top}}\
         table{{border-collapse:collapse;font-size:13px}}\
         td,th{{border:1px solid #ccc;padding:3px 8px;text-align:left}}\
         .bad{{color:#b00;font-weight:700}}.ok{{color:#2a7}}\
         .empty{{color:#999;font-size:12px}}\
         a{{color:#2a6f97}}</style></head><body>\
         <h1>svtd \u{2014} long-horizon observability</h1>\
         <p>design <code>{}</code> \u{00b7} trailing {RANGE_S}s at the finest covering tier \u{00b7} \
         <a href=\"/healthz\">healthz</a> \u{00b7} <a href=\"/metrics\">metrics</a> \u{00b7} \
         <a href=\"/debug/profile?format=svg\">flame graph</a> \u{00b7} \
         <a href=\"/query?metric=serve.requests.rate&range=600\">query API</a></p>\
         {panels}\
         <h2>service-level objectives</h2>{slo_table}\
         <h2>time-series store</h2>\
         <p class=\"empty\">{} series \u{00b7} resident bound {} KiB</p>\
         <table><tr><th>tier</th><th>points</th></tr>{tier_rows}</table>\
         </body></html>",
        html_escape(&state.default_design),
        occ.series,
        occ.memory_bound_bytes / 1024,
    );
    Response {
        status: 200,
        content_type: "text/html; charset=utf-8",
        body,
        retry_after: None,
    }
}

/// Minimal HTML text escaping for server-rendered dashboard strings.
fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// The route-class template and target design of one request, for
/// metric labels, access-log lines, and capsules. Templates keep label
/// cardinality bounded: concrete design names collapse into `{name}`
/// on the route axis and appear only on the closed `design` axis.
fn classify(state: &ServiceState, method: &str, path: &str) -> (&'static str, String) {
    match (method, path) {
        ("GET", "/healthz") => ("/healthz", "-".to_string()),
        ("GET", "/metrics") => ("/metrics", "-".to_string()),
        ("GET", "/snapshot.json") => ("/snapshot.json", "-".to_string()),
        ("GET", "/timeline.json") => ("/timeline.json", "-".to_string()),
        ("GET", "/designs") => ("/designs", "-".to_string()),
        ("GET", "/query") => ("/query", "-".to_string()),
        ("GET", "/dashboard") => ("/dashboard", "-".to_string()),
        ("GET", "/debug/profile") => ("/debug/profile", "-".to_string()),
        ("POST", "/eco") => ("/eco", state.default_design.clone()),
        ("POST", "/snapshot/save") => ("/snapshot/save", "-".to_string()),
        ("POST", "/shutdown") => ("/shutdown", "-".to_string()),
        (_, p) if p == "/debug/requests" || p.starts_with("/debug/requests/") => {
            ("/debug/requests", "-".to_string())
        }
        (_, p) if p.starts_with("/designs/") => {
            let rest = &p["/designs/".len()..];
            let (name, action) = rest.split_once('/').unwrap_or((rest, ""));
            // Only registered designs become label values — an open
            // endpoint must not mint unbounded design labels.
            let design = state
                .registry
                .entry(name)
                .map_or_else(|_| "-".to_string(), |entry| entry.name().to_string());
            match action {
                "" => ("/designs/{name}", design),
                "warm" => ("/designs/{name}/warm", design),
                "timing" => ("/designs/{name}/timing", design),
                "eco" => ("/designs/{name}/eco", design),
                _ => ("other", design),
            }
        }
        _ => ("other", "-".to_string()),
    }
}

/// The undecorated dispatch: maps one request to its endpoint handler.
fn dispatch(state: &ServiceState, req: &Request, path: &str, peer: Option<&str>) -> Response {
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state, &scraper_identity(&req.path, peer)),
        ("GET", "/snapshot.json") => Response::json(svt_obs::registry().snapshot().to_json()),
        ("GET", "/timeline.json") => Response::json(svt_obs::chrome::render_chrome_trace(
            &svt_obs::timeline::snapshot_all(),
        )),
        ("GET", "/designs") => designs_index(state),
        ("GET", "/query") => tsdb_query(&req.path),
        ("GET", "/dashboard") => dashboard(state),
        ("GET", "/debug/profile") => debug_profile(&req.path),
        ("GET", "/debug/requests") => debug_requests(""),
        ("GET", p) if p.starts_with("/debug/requests/") => {
            debug_requests(&p["/debug/requests/".len()..])
        }
        ("POST", "/eco") => design_eco(state, &state.default_design, req),
        ("POST", "/snapshot/save") => snapshot_save(state),
        ("POST", "/shutdown") => {
            state.begin_drain();
            Response::json("{\"status\":\"draining\"}".to_string())
        }
        (method, p) if p.starts_with("/designs/") => {
            let rest = &p["/designs/".len()..];
            let (name, action) = match rest.split_once('/') {
                Some((name, action)) => (name, action),
                None => (rest, ""),
            };
            if name.is_empty() {
                return Response::error(404, "missing design name");
            }
            match (method, action) {
                ("GET", "") => design_detail(state, name),
                ("POST", "warm") => design_warm(state, name),
                ("GET", "timing") => design_timing(state, name),
                ("POST", "eco") => design_eco(state, name, req),
                (_, "" | "warm" | "timing" | "eco") => Response::error(405, "method not allowed"),
                _ => Response::error(404, "no such design endpoint"),
            }
        }
        (
            _,
            "/healthz" | "/metrics" | "/snapshot.json" | "/timeline.json" | "/eco" | "/designs"
            | "/shutdown" | "/snapshot/save" | "/query" | "/dashboard" | "/debug/profile",
        ) => Response::error(405, "method not allowed"),
        (_, p) if p == "/debug/requests" || p.starts_with("/debug/requests/") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Routes one request. Pure with respect to the connection: all I/O
/// stays in the caller, which keeps every endpoint unit-testable without
/// sockets. Equivalent to [`route_with_peer`] with no peer identity.
#[must_use]
pub fn route(state: &ServiceState, req: &Request) -> Response {
    route_with_peer(state, req, None)
}

/// [`route`] with the connection's peer IP, and the full per-request
/// observability decoration around the dispatch:
///
/// 1. a fresh [`svt_obs::RequestContext`] (monotonic trace id, route
///    class, design) entered for the handler's duration, so every span,
///    pool hop, and log line downstream shares the request's identity;
/// 2. the `serve.request` span plus the labeled metric families
///    `serve.requests{route,design,status}`,
///    `serve.latency_ns{route,design}`, and
///    `serve.response_bytes{route,design}`;
/// 3. one JSONL access-log line when the state carries a log;
/// 4. a flight-recorder capsule (this thread's timeline slice over the
///    request window, alloc delta, queue wait) when latency reaches
///    [`ServerOptions::slow_ms`].
#[must_use]
pub fn route_with_peer(state: &ServiceState, req: &Request, peer: Option<&str>) -> Response {
    svt_obs::registry().counter("serve.requests").incr();
    let path = req.path.split('?').next().unwrap_or("");
    let _inflight = inflight_guard(&req.method, path);
    let (route_class, design) = classify(state, req.method.as_str(), path);
    let trace_id = svt_obs::context::next_trace_id();
    let _ctx = svt_obs::context::enter(svt_obs::RequestContext {
        trace_id,
        route: route_class.to_string(),
        design: design.clone(),
    });
    let started = Instant::now();
    let start_ns = svt_obs::timeline::now_ns();
    let (alloc_count_0, alloc_bytes_0) = svt_obs::alloc::totals();
    let response = {
        let _span = svt_obs::span("serve.request");
        dispatch(state, req, path, peer)
    };
    let latency = started.elapsed();
    let latency_ns = latency.as_nanos() as u64;
    let end_ns = svt_obs::timeline::now_ns();
    let (alloc_count_1, alloc_bytes_1) = svt_obs::alloc::totals();
    let labels = [route_class, design.as_str()];
    svt_obs::family_counter!("serve.requests_by", &["route", "design", "status"])
        .with(&[route_class, &design, status_class(response.status)])
        .incr();
    svt_obs::family_histogram!("serve.latency_ns", &["route", "design"])
        .with(&labels)
        .record(latency_ns);
    // Plain (unlabeled) latency histogram: the sampler derives the
    // dashboard's p50/p99 series from its bucket deltas.
    svt_obs::histogram!("serve.latency_all_ns").record(latency_ns);
    state.slo.observe(route_class, response.status, latency_ns);
    svt_obs::family_histogram!("serve.response_bytes", &["route", "design"])
        .with(&labels)
        .record(response.body.len() as u64);
    let queue_wait_ns = svt_exec::service::current_queue_wait_ns();
    if let Some(log) = &state.access_log {
        log.log(&AccessEntry {
            ts_ms: crate::access_log::unix_ms(),
            trace_id,
            method: req.method.clone(),
            path: req.path.clone(),
            route: route_class.to_string(),
            design: design.clone(),
            status: response.status,
            latency_us: latency.as_micros() as u64,
            queue_wait_us: queue_wait_ns / 1_000,
            alloc_bytes: alloc_bytes_1.saturating_sub(alloc_bytes_0),
            bytes_out: response.body.len() as u64,
        });
    }
    if state
        .options
        .slow_ms
        .is_some_and(|slow| latency >= Duration::from_millis(slow))
    {
        // Outside Chrome trace mode there is no per-thread ring; the
        // capsule still records identity, latency, and alloc deltas.
        let timeline = svt_obs::timeline::snapshot_current().map_or(
            svt_obs::timeline::ThreadTimeline {
                tid: 0,
                events: Vec::new(),
                dropped: 0,
            },
            |tl| svt_obs::recorder::slice_window(&tl, start_ns, end_ns),
        );
        svt_obs::recorder::record(svt_obs::RequestCapsule {
            trace_id,
            method: req.method.clone(),
            path: req.path.clone(),
            route: route_class.to_string(),
            design,
            status: response.status,
            latency_ns,
            queue_wait_ns,
            alloc_count: alloc_count_1.saturating_sub(alloc_count_0),
            alloc_bytes: alloc_bytes_1.saturating_sub(alloc_bytes_0),
            start_ns,
            end_ns,
            timeline,
        });
    }
    response
}

/// Collapses status codes into the bounded label set `2xx`/`3xx`/`4xx`/
/// `5xx` so the status axis cannot grow past four values.
fn status_class(status: u16) -> &'static str {
    match status / 100 {
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        _ => "5xx",
    }
}

/// Serves one connection: a keep-alive loop feeding the incremental
/// parser, bounded by the request cap and the idle timeout, responsive
/// to drain within one poll tick.
fn serve_connection(mut stream: TcpStream, state: &ServiceState) {
    let opts = state.options();
    let peer = stream.peer_addr().ok().map(|a| a.ip().to_string());
    // Poll in short ticks so drains are noticed promptly even while the
    // connection idles between keep-alive requests.
    let tick = opts
        .idle_timeout
        .clamp(Duration::from_millis(1), Duration::from_millis(100));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 8192];
    let mut served = 0usize;
    let mut idled = Duration::ZERO;
    loop {
        // Drain everything already buffered (pipelined requests) before
        // touching the socket again.
        match parser.next_request() {
            Ok(Some(req)) => {
                idled = Duration::ZERO;
                served += 1;
                if let Some(delay) = opts.fault_delay {
                    std::thread::sleep(delay);
                }
                let draining = state.draining();
                let response = if draining {
                    svt_obs::registry().counter("serve.drained_refusals").incr();
                    Response::error(503, "server is draining, no new work accepted")
                } else {
                    // Heartbeat only the bounded handler section — idle
                    // keep-alive reads are not stalls.
                    svt_exec::watchdog::task_begin();
                    let response = route_with_peer(state, &req, peer.as_deref());
                    svt_exec::watchdog::task_end();
                    response
                };
                let close = draining || !req.keep_alive || served >= opts.keep_alive_max_requests;
                if write_response(&mut stream, &response, close).is_err() {
                    svt_obs::registry().counter("serve.write_errors").incr();
                    return;
                }
                if close {
                    return;
                }
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                svt_obs::registry().counter("serve.bad_requests").incr();
                let _ = write_response(&mut stream, &Response::error(e.status, &e.message), true);
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                idled = Duration::ZERO;
                parser.push(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                idled += tick;
                // Mid-drain, idle connections close immediately; a
                // half-received request gets until the idle timeout.
                if state.draining() && parser.buffered() == 0 {
                    return;
                }
                if idled >= opts.idle_timeout {
                    svt_obs::registry().counter("serve.idle_closes").incr();
                    // A reap with bytes buffered means a half-sent head
                    // never completed — the slow-loris signature; an
                    // empty buffer is ordinary keep-alive idleness.
                    let reason = if parser.buffered() > 0 {
                        "slow_loris"
                    } else {
                        "idle"
                    };
                    svt_obs::family_counter!("serve.conn_reaped", &["reason"])
                        .with(&[reason])
                        .incr();
                    svt_obs::instant("serve.conn_reaped");
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

use std::io::Read;

/// A running daemon: the bound address plus the accept loop feeding the
/// persistent handler pool.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), starts
    /// [`ServerOptions::workers`] persistent handler threads behind a
    /// bounded queue of [`ServerOptions::queue_capacity`] connections,
    /// and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Returns a message when the bind fails.
    pub fn spawn(addr: &str, state: ServiceState) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let state = Arc::new(state);
        let stop = Arc::new(AtomicBool::new(false));
        let loop_state = Arc::clone(&state);
        let loop_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("svtd-accept".into())
            .spawn(move || accept_loop(&listener, &loop_state, &loop_stop))
            .map_err(|e| format!("spawn accept loop: {e}"))?;
        Ok(Server {
            addr: local,
            state,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process differential checks and drain
    /// polling.
    #[must_use]
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Graceful shutdown: begins the drain (current requests finish,
    /// new ones are refused with `503`), stops the accept loop, waits
    /// for every accepted connection to be answered, and joins all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.state.begin_drain();
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServiceState>, stop: &AtomicBool) {
    let opts = state.options().clone();
    let handler_state = Arc::clone(state);
    // The pool is owned by this loop: when the loop exits, dropping the
    // pool drains it — every accepted connection is answered first.
    let pool: ServicePool<TcpStream> = ServicePool::spawn(
        "serve.pool",
        opts.workers,
        opts.queue_capacity,
        move |stream| serve_connection(stream, &handler_state),
    );
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        svt_obs::registry().counter("serve.connections").incr();
        if state.draining() {
            svt_obs::registry().counter("serve.drained_refusals").incr();
            let _ = write_response(
                &mut stream,
                &Response::error(503, "server is draining, no new connections accepted"),
                true,
            );
            continue;
        }
        if let Err(rejected) = pool.try_submit(stream) {
            let full = rejected.is_full();
            let mut stream = rejected.into_job();
            let response = if full {
                svt_obs::registry().counter("serve.rejected_busy").incr();
                Response::too_busy(1)
            } else {
                Response::error(503, "server is draining, no new connections accepted")
            };
            let _ = write_response(&mut stream, &response, true);
        }
    }
    pool.drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_bodies_parse_into_each_typed_variant() {
        assert_eq!(
            parse_edit("{\"type\":\"resize_cell\",\"instance\":\"g1\",\"new_cell\":\"INVX2\"}")
                .unwrap(),
            EcoEdit::ResizeCell {
                instance: "g1".into(),
                new_cell: "INVX2".into()
            }
        );
        assert_eq!(
            parse_edit("{\"type\":\"swap_cell\",\"instance\":\"g1\",\"new_cell\":\"NAND2X2\"}")
                .unwrap(),
            EcoEdit::SwapCell {
                instance: "g1".into(),
                new_cell: "NAND2X2".into()
            }
        );
        assert_eq!(
            parse_edit("{\"type\":\"adjust_spacing\",\"instance\":\"g1\",\"dx_nm\":-120.5}")
                .unwrap(),
            EcoEdit::AdjustSpacing {
                instance: "g1".into(),
                dx_nm: -120.5
            }
        );
        assert_eq!(
            parse_edit("{\"type\":\"move_instance\",\"instance\":\"g1\",\"row\":2,\"x_nm\":940.0}")
                .unwrap(),
            EcoEdit::MoveInstance {
                instance: "g1".into(),
                row: 2,
                x_nm: 940.0
            }
        );
    }

    #[test]
    fn malformed_edits_name_the_offending_field() {
        assert!(parse_edit("not json").unwrap_err().contains("not JSON"));
        assert!(parse_edit("{\"instance\":\"g1\"}")
            .unwrap_err()
            .contains("`type`"));
        assert!(parse_edit("{\"type\":\"resize_cell\",\"instance\":\"g1\"}")
            .unwrap_err()
            .contains("`new_cell`"));
        assert!(parse_edit(
            "{\"type\":\"move_instance\",\"instance\":\"g1\",\"row\":-1,\"x_nm\":0}"
        )
        .unwrap_err()
        .contains("`row`"));
        assert!(parse_edit("{\"type\":\"delete_all\"}")
            .unwrap_err()
            .contains("unknown edit type"));
    }

    #[test]
    fn batched_bodies_parse_into_ordered_edit_lists() {
        let batch = parse_eco_request(
            "[{\"type\":\"resize_cell\",\"instance\":\"g1\",\"new_cell\":\"INVX2\"},\
             {\"type\":\"adjust_spacing\",\"instance\":\"g2\",\"dx_nm\":-40.0}]",
        )
        .unwrap();
        let EcoRequest::Batch(edits) = batch else {
            panic!("array bodies parse as batches");
        };
        assert_eq!(edits.len(), 2);
        assert_eq!(
            edits[1],
            EcoEdit::AdjustSpacing {
                instance: "g2".into(),
                dx_nm: -40.0
            }
        );

        // Element errors carry their index; empty batches are rejected.
        let err = parse_eco_request("[{\"type\":\"resize_cell\"}]").unwrap_err();
        assert!(err.contains("edit[0]"), "{err}");
        assert!(parse_eco_request("[]").unwrap_err().contains("empty"));

        // Objects still parse as singles.
        assert!(matches!(
            parse_eco_request(
                "{\"type\":\"resize_cell\",\"instance\":\"g1\",\"new_cell\":\"INVX2\"}"
            ),
            Ok(EcoRequest::Single(_))
        ));
    }

    #[test]
    fn design_specs_accept_builtin_and_paper_testcases_only() {
        assert_eq!(DesignSpec::parse("builtin").unwrap(), DesignSpec::Builtin);
        assert_eq!(
            DesignSpec::parse("c432").unwrap(),
            DesignSpec::Iscas("c432".into())
        );
        assert!(DesignSpec::parse("c17").is_err());
    }

    #[test]
    fn floats_render_shortest_round_trip_and_nonfinite_degrade_to_null() {
        for x in [0.1 + 0.2, 1.0e-7, -0.0, 12345.678901234567] {
            let rendered = fmt_f64(x);
            let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "round-trip of {rendered}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    // The recorder ring and telemetry registry are process-global;
    // tests that assert on ring contents serialize here.
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn test_state(options: ServerOptions) -> ServiceState {
        ServiceState::new(&[DesignSpec::Builtin], options).expect("state")
    }

    #[test]
    fn scraper_identity_prefers_query_param_then_peer() {
        assert_eq!(
            scraper_identity("/metrics?scraper=prom-a", Some("10.0.0.9")),
            "prom-a"
        );
        assert_eq!(scraper_identity("/metrics?other=1&scraper=b", None), "b");
        assert_eq!(scraper_identity("/metrics", Some("10.0.0.9")), "10.0.0.9");
        assert_eq!(scraper_identity("/metrics?scraper=", None), "default");
        assert_eq!(scraper_identity("/metrics", None), "default");
    }

    #[test]
    fn routes_classify_into_bounded_templates() {
        let state = test_state(ServerOptions::default());
        assert_eq!(classify(&state, "GET", "/healthz").0, "/healthz");
        assert_eq!(
            classify(&state, "POST", "/eco"),
            ("/eco", "builtin".to_string())
        );
        assert_eq!(
            classify(&state, "POST", "/designs/builtin/eco"),
            ("/designs/{name}/eco", "builtin".to_string())
        );
        assert_eq!(
            classify(&state, "GET", "/designs/nope/timing"),
            ("/designs/{name}/timing", "-".to_string()),
            "unregistered names must not mint design labels"
        );
        assert_eq!(
            classify(&state, "GET", "/debug/requests/42/trace.json").0,
            "/debug/requests"
        );
        assert_eq!(classify(&state, "GET", "/made/up/path").0, "other");
    }

    #[test]
    fn status_classes_are_a_closed_set() {
        assert_eq!(status_class(200), "2xx");
        assert_eq!(status_class(301), "3xx");
        assert_eq!(status_class(404), "4xx");
        assert_eq!(status_class(429), "4xx");
        assert_eq!(status_class(500), "5xx");
        assert_eq!(status_class(503), "5xx");
    }

    #[test]
    fn concurrent_scrapers_keep_independent_delta_state() {
        let state = test_state(ServerOptions::default());
        let probe = svt_obs::registry().counter("serve.scrape_lru_probe");
        // A's first scrape seeds its slot; B interleaves with its own.
        let _ = metrics(&state, "prom-a");
        probe.add(5);
        let _ = metrics(&state, "prom-b");
        probe.add(3);
        // A's second scrape must delta against A's previous snapshot —
        // +8 total since A1 — unperturbed by B's scrape in between (the
        // old single-slot design would have reported only +3 here).
        let body = metrics(&state, "prom-a").body;
        let samples = svt_obs::parse_prometheus(&body).expect("scrape parses");
        let delta = samples
            .iter()
            .find(|s| s.name == "svt_serve_scrape_lru_probe_delta")
            .expect("delta series for the probe counter");
        assert_eq!(delta.value as u64, 8, "A deltas against A's own slot");
        // And B deltas only what happened since B's own scrape.
        let body = metrics(&state, "prom-b").body;
        let samples = svt_obs::parse_prometheus(&body).expect("scrape parses");
        let delta = samples
            .iter()
            .find(|s| s.name == "svt_serve_scrape_lru_probe_delta")
            .expect("delta series for the probe counter");
        assert_eq!(delta.value as u64, 3, "B deltas against B's own slot");
    }

    #[test]
    fn scrape_lru_evicts_the_least_recent_scraper() {
        let state = test_state(ServerOptions::default());
        let _ = metrics(&state, "evict-me");
        for i in 0..SCRAPE_LRU_CAPACITY {
            let _ = metrics(&state, &format!("filler-{i}"));
        }
        // A retained filler still deltas normally.
        let body = metrics(&state, "filler-0").body;
        let samples = svt_obs::parse_prometheus(&body).expect("scrape parses");
        assert!(
            samples
                .iter()
                .any(|s| s.name == "svt_scrape_interval_seconds"),
            "retained scraper keeps its delta state"
        );
        // `evict-me` fell out of the LRU, so its re-scrape is a first
        // scrape again: no interval/delta series.
        let body = metrics(&state, "evict-me").body;
        let samples = svt_obs::parse_prometheus(&body).expect("scrape parses");
        assert!(
            !samples
                .iter()
                .any(|s| s.name == "svt_scrape_interval_seconds"),
            "evicted scraper must be treated as new"
        );
    }

    #[test]
    fn metrics_exposition_carries_build_info_and_uptime() {
        let state = test_state(ServerOptions::default());
        let body = metrics(&state, "build-info-probe").body;
        let samples = svt_obs::parse_prometheus(&body).expect("scrape parses");
        let build = samples
            .iter()
            .find(|s| s.name == "svt_build_info")
            .expect("svt_build_info gauge");
        assert_eq!(build.value, 1.0);
        assert!(build.labels.iter().any(|(k, _)| k == "version"));
        assert!(samples.iter().any(|s| s.name == "svt_uptime_seconds"));
    }

    #[test]
    fn slow_requests_are_captured_as_capsules_with_the_request_trace_id() {
        let _guard = recorder_lock();
        svt_obs::recorder::clear();
        let log_path = std::env::temp_dir()
            .join(format!("svt_server_access_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .to_string();
        let _ = std::fs::remove_file(&log_path);
        let state = test_state(ServerOptions {
            slow_ms: Some(0),
            access_log_path: Some(log_path.clone()),
            ..ServerOptions::default()
        });
        let req = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            body: String::new(),
            keep_alive: true,
        };
        let response = route(&state, &req);
        assert_eq!(response.status, 200);
        let capsule = svt_obs::recorder::capsules()
            .pop()
            .expect("slow-ms 0 captures every request");
        assert_eq!(capsule.route, "/healthz");
        assert_eq!(capsule.status, 200);
        assert!(capsule.latency_ns > 0);
        // The capsule is addressable through the debug surface…
        let index = debug_requests("");
        assert!(index
            .body
            .contains(&format!("\"trace_id\": {}", capsule.trace_id)));
        let one = debug_requests(&capsule.trace_id.to_string());
        assert_eq!(one.status, 200);
        let trace = debug_requests(&format!("{}/trace.json", capsule.trace_id));
        assert_eq!(trace.status, 200);
        let stats =
            svt_obs::chrome::validate_chrome_trace(&trace.body).expect("capsule trace validates");
        assert!(stats
            .events
            .iter()
            .filter(|e| matches!(e.ph.as_str(), "B" | "E" | "i"))
            .all(|e| e.trace_id == Some(capsule.trace_id)));
        // …and the access log line carries the same trace id.
        let log = std::fs::read_to_string(&log_path).expect("access log written");
        let line = log.lines().last().expect("one line per request");
        let doc = JsonValue::parse(line).expect("JSONL line parses");
        assert_eq!(
            doc.get("trace_id").and_then(JsonValue::as_u64),
            Some(capsule.trace_id)
        );
        assert_eq!(
            doc.get("route").and_then(JsonValue::as_str),
            Some("/healthz")
        );
        let _ = std::fs::remove_file(&log_path);
        svt_obs::recorder::clear();
    }

    #[test]
    fn debug_requests_unknown_ids_are_404s() {
        let _guard = recorder_lock();
        svt_obs::recorder::clear();
        assert_eq!(debug_requests("not-a-number").status, 404);
        assert_eq!(debug_requests("12345").status, 404);
        assert_eq!(debug_requests("12345/trace.json").status, 404);
        let index = debug_requests("");
        assert_eq!(index.status, 200);
        let doc = JsonValue::parse(&index.body).expect("index parses");
        assert_eq!(doc.get("count").and_then(JsonValue::as_u64), Some(0));
    }

    #[test]
    fn batch_render_merges_endpoint_deltas_first_before_last_after() {
        use svt_core::CornerTiming;
        let comparison = svt_core::SignoffComparison {
            testcase: "t".into(),
            gates: 1,
            traditional: CornerTiming {
                bc_ns: 1.0,
                nom_ns: 2.0,
                wc_ns: 3.0,
            },
            aware: CornerTiming {
                bc_ns: 1.5,
                nom_ns: 2.0,
                wc_ns: 2.5,
            },
        };
        let report = |before: f64, after: f64| DeltaReport {
            edit: "e".into(),
            rows_extracted: vec![],
            recharacterized: vec![],
            pitch_rows_invalidated: 0,
            forward_instances: 0,
            backward_nets: 0,
            endpoint_deltas: vec![svt_eco::EndpointDelta {
                endpoint: "z".into(),
                corner: "aware-wc".into(),
                arrival_before_ns: before,
                arrival_after_ns: after,
            }],
            before: comparison.clone(),
            after: comparison.clone(),
            delta_audit: svt_obs::audit::DeltaAudit {
                testcase: "t".into(),
                baseline_instances: 0,
                baseline_paths: 0,
                edits: vec![],
                corner_delays: vec![],
                changed_instances: vec![],
                changed_paths: vec![],
            },
        };
        let rendered = render_batch_report(&[report(1.25, 1.5), report(1.5, 1.125)]);
        let parsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(parsed.get("edits").and_then(JsonValue::as_u64), Some(2));
        let merged = parsed
            .get("endpoint_deltas")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(merged.len(), 1, "same endpoint/corner merges");
        let delta = &merged[0];
        assert_eq!(
            delta.get("arrival_before_ns").and_then(JsonValue::as_f64),
            Some(1.25),
            "before comes from the first report"
        );
        assert_eq!(
            delta.get("arrival_after_ns").and_then(JsonValue::as_f64),
            Some(1.125),
            "after comes from the last report"
        );
    }
}
