//! The warm pipeline state and the request router.
//!
//! Startup pays the full cost once — expanding the svt90 library through
//! litho simulation, mapping and placing the design, and signing it off
//! into an [`EcoSession`] — and every request after that is served from
//! the warm state: scrapes read the global telemetry registry, ECO posts
//! run the *incremental* re-sign-off. The library/expanded-library/flow
//! stack is interned with `Box::leak` behind a `OnceLock`, giving the
//! session a `'static` lifetime without self-referential types; the leak
//! is intentional and bounded (one stack per process).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use svt_core::{SignoffFlow, SignoffOptions};
use svt_eco::{DeltaReport, EcoEdit, EcoError, EcoSession};
use svt_litho::Process;
use svt_netlist::{bench, technology_map};
use svt_obs::json::{escape_json, JsonValue};
use svt_place::{place, PlacementOptions};
use svt_stdcell::{expand_library, ExpandOptions, Library};

use crate::http::{read_request, write_response, Request, Response};

/// The built-in warm-up design: small enough to sign off in well under a
/// second, rich enough to have multi-corner endpoint deltas. The smoke
/// client rebuilds its mirror session from this same source, so the text
/// here is part of the differential contract.
pub const BUILTIN_NETLIST: &str = "# svtd warm design\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(y)\nc = NAND(a, b)\nd = NOT(c)\nz = NOT(d)\ny = NAND(c, d)\n";

/// Name reported for the built-in design.
pub const BUILTIN_NAME: &str = "builtin";

/// Which design the daemon keeps warm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignSpec {
    /// The tiny [`BUILTIN_NETLIST`].
    Builtin,
    /// One of the paper's ISCAS85 testcases (`c432` …).
    Iscas(String),
}

impl DesignSpec {
    /// Parses a `--design` argument: `builtin` or a paper testcase name.
    ///
    /// # Errors
    ///
    /// Returns the list of accepted names on anything else.
    pub fn parse(name: &str) -> Result<DesignSpec, String> {
        if name == BUILTIN_NAME {
            return Ok(DesignSpec::Builtin);
        }
        if svt_bench::PAPER_TESTCASES.contains(&name) {
            return Ok(DesignSpec::Iscas(name.to_string()));
        }
        Err(format!(
            "unknown design `{name}`; expected `{BUILTIN_NAME}` or one of {:?}",
            svt_bench::PAPER_TESTCASES
        ))
    }

    /// The design name reported by `/healthz`.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            DesignSpec::Builtin => BUILTIN_NAME,
            DesignSpec::Iscas(n) => n,
        }
    }
}

/// The leaked library/expanded/flow stack shared by every session in
/// this process (daemon session, test mirrors, smoke mirrors).
struct WarmStack {
    library: &'static Library,
    flow: &'static SignoffFlow<'static>,
}

fn warm_stack() -> &'static WarmStack {
    static STACK: OnceLock<WarmStack> = OnceLock::new();
    STACK.get_or_init(|| {
        let _span = svt_obs::span("serve.warmup.library");
        let library: &'static Library = Box::leak(Box::new(Library::svt90()));
        let sim = Process::nm90().simulator();
        let expanded = expand_library(library, &sim, &ExpandOptions::fast())
            .expect("expanding the svt90 library with the calibrated simulator succeeds");
        let expanded = Box::leak(Box::new(expanded));
        let flow = Box::leak(Box::new(SignoffFlow::new(
            library,
            expanded,
            SignoffOptions::default(),
        )));
        WarmStack { library, flow }
    })
}

/// Builds a fully signed-off session for the given design.
///
/// The expensive library expansion is shared process-wide; only the
/// per-design mapping, placement, and sign-off run per call, so a test
/// or smoke mirror is much cheaper than the first warm-up.
///
/// # Errors
///
/// Returns a message when parsing, mapping, placement, or the initial
/// sign-off fails.
///
/// # Panics
///
/// Panics if the one-time svt90 library expansion itself fails — that is
/// a broken build, not a recoverable request error.
pub fn warm_session(spec: &DesignSpec) -> Result<EcoSession<'static>, String> {
    let _span = svt_obs::span("serve.warmup.session");
    let stack = warm_stack();
    let (mapped, placement) = match spec {
        DesignSpec::Builtin => {
            let netlist =
                bench::parse(BUILTIN_NETLIST).map_err(|e| format!("builtin netlist: {e}"))?;
            let mapped = technology_map(&netlist, stack.library)
                .map_err(|e| format!("mapping builtin design: {e}"))?;
            let placement = place(&mapped, stack.library, &PlacementOptions::default())
                .map_err(|e| format!("placing builtin design: {e}"))?;
            (mapped, placement)
        }
        DesignSpec::Iscas(name) => {
            let design = svt_bench::build_design(stack.library, name);
            (design.mapped, design.placement)
        }
    };
    EcoSession::new(stack.flow, &mapped, &placement)
        .map_err(|e| format!("initial sign-off of `{}`: {e}", spec.name()))
}

/// Shared state behind the router: the warm session plus the previous
/// scrape used to derive per-interval rate/delta series.
pub struct ServiceState {
    design: String,
    started: Instant,
    session: Mutex<EcoSession<'static>>,
    scrape: Mutex<Option<(Instant, svt_obs::Snapshot)>>,
}

impl ServiceState {
    /// Warms the pipeline for `spec` and wraps it for serving.
    ///
    /// # Errors
    ///
    /// Propagates [`warm_session`] failures.
    pub fn new(spec: &DesignSpec) -> Result<ServiceState, String> {
        let session = warm_session(spec)?;
        Ok(ServiceState {
            design: spec.name().to_string(),
            started: Instant::now(),
            session: Mutex::new(session),
            scrape: Mutex::new(None),
        })
    }

    /// Applies one edit directly to the warm session (the same code path
    /// `POST /eco` takes, without HTTP in between).
    ///
    /// # Errors
    ///
    /// Propagates [`EcoSession::apply`] failures.
    ///
    /// # Panics
    ///
    /// Panics if a previous request panicked while holding the session
    /// lock.
    pub fn apply(&self, edit: &EcoEdit) -> Result<DeltaReport, EcoError> {
        self.session.lock().unwrap().apply(edit)
    }

    /// Design name served by `/healthz`.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.design
    }
}

/// Formats an `f64` so it survives a JSON round-trip bit-exactly: `{:?}`
/// is Rust's shortest-round-trip form and the shared
/// [`svt_obs::json`] parser reads exponent notation. Non-finite values
/// (never produced by the flow) degrade to `null`.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Renders a [`DeltaReport`] as the `POST /eco` response body. Floats
/// are serialized in shortest-round-trip form, so they parse back
/// bit-exactly; the differential smoke check relies on that.
#[must_use]
pub fn render_delta_report(report: &DeltaReport) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"edit\":\"");
    out.push_str(&escape_json(&report.edit));
    out.push_str("\",\"rows_extracted\":[");
    for (i, row) in report.rows_extracted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&row.to_string());
    }
    out.push_str("],\"recharacterized\":");
    out.push_str(&report.recharacterized.len().to_string());
    out.push_str(",\"pitch_rows_invalidated\":");
    out.push_str(&report.pitch_rows_invalidated.to_string());
    out.push_str(",\"forward_instances\":");
    out.push_str(&report.forward_instances.to_string());
    out.push_str(",\"backward_nets\":");
    out.push_str(&report.backward_nets.to_string());
    out.push_str(",\"spread_gap_delta_ns\":");
    out.push_str(&fmt_f64(report.spread_gap_delta_ns()));
    out.push_str(",\"uncertainty_reduction_delta_pct\":");
    out.push_str(&fmt_f64(report.uncertainty_reduction_delta_pct()));
    out.push_str(",\"timing_noop\":");
    out.push_str(if report.is_timing_noop() {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"endpoint_deltas\":[");
    for (i, d) in report.endpoint_deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"endpoint\":\"");
        out.push_str(&escape_json(&d.endpoint));
        out.push_str("\",\"corner\":\"");
        out.push_str(&escape_json(&d.corner));
        out.push_str("\",\"arrival_before_ns\":");
        out.push_str(&fmt_f64(d.arrival_before_ns));
        out.push_str(",\"arrival_after_ns\":");
        out.push_str(&fmt_f64(d.arrival_after_ns));
        out.push_str(",\"slack_delta_ns\":");
        out.push_str(&fmt_f64(d.slack_delta_ns()));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parses the `POST /eco` body into a typed edit.
///
/// The shape is one flat object selected by `type`:
///
/// ```json
/// {"type": "resize_cell",    "instance": "g3", "new_cell": "INVX2"}
/// {"type": "swap_cell",      "instance": "g3", "new_cell": "INVX2"}
/// {"type": "adjust_spacing", "instance": "g3", "dx_nm": -120.0}
/// {"type": "move_instance",  "instance": "g3", "row": 1, "x_nm": 940.0}
/// ```
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn parse_edit(body: &str) -> Result<EcoEdit, String> {
    let v = JsonValue::parse(body).map_err(|e| format!("body is not JSON: {e}"))?;
    let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field `{name}`"));
    let string_field = |name: &str| {
        field(name).and_then(|f| {
            f.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field `{name}` must be a string"))
        })
    };
    let number_field = |name: &str| {
        field(name).and_then(|f| {
            f.as_f64()
                .ok_or_else(|| format!("field `{name}` must be a number"))
        })
    };
    let kind = string_field("type")?;
    match kind.as_str() {
        "swap_cell" => Ok(EcoEdit::SwapCell {
            instance: string_field("instance")?,
            new_cell: string_field("new_cell")?,
        }),
        "resize_cell" => Ok(EcoEdit::ResizeCell {
            instance: string_field("instance")?,
            new_cell: string_field("new_cell")?,
        }),
        "adjust_spacing" => Ok(EcoEdit::AdjustSpacing {
            instance: string_field("instance")?,
            dx_nm: number_field("dx_nm")?,
        }),
        "move_instance" => Ok(EcoEdit::MoveInstance {
            instance: string_field("instance")?,
            row: field("row")?
                .as_u64()
                .ok_or("field `row` must be a non-negative integer")?
                as usize,
            x_nm: number_field("x_nm")?,
        }),
        other => Err(format!(
            "unknown edit type `{other}`; expected swap_cell, resize_cell, adjust_spacing, or move_instance"
        )),
    }
}

fn healthz(state: &ServiceState) -> Response {
    let wd = svt_exec::watchdog::status();
    let edits = state.session.lock().unwrap().edits().len();
    let body = format!(
        "{{\"status\":\"{}\",\"design\":\"{}\",\"uptime_seconds\":{},\"edits_applied\":{edits},\"watchdog\":{{\"armed\":{},\"deadline_ms\":{},\"stalled_now\":{},\"stall_events\":{},\"healthy\":{}}}}}",
        if wd.healthy() { "ok" } else { "stalled" },
        escape_json(&state.design),
        fmt_f64(state.started.elapsed().as_secs_f64()),
        wd.armed,
        wd.deadline.as_millis(),
        wd.stalled_now,
        wd.stall_events,
        wd.healthy()
    );
    Response {
        status: if wd.healthy() { 200 } else { 503 },
        content_type: "application/json",
        body,
    }
}

fn metrics(state: &ServiceState) -> Response {
    // Refresh the pull-style sources right before snapshotting so the
    // scrape reflects this instant, not the last request.
    svt_obs::alloc::publish_gauges();
    svt_obs::rss::publish_gauges();
    let now = Instant::now();
    let snap = svt_obs::registry().snapshot();
    let mut body = snap.to_prometheus();
    let mut scrape = state.scrape.lock().unwrap();
    if let Some((prev_at, prev)) = scrape.as_ref() {
        body.push_str(&snap.delta_prometheus(prev, now.duration_since(*prev_at).as_secs_f64()));
    }
    *scrape = Some((now, snap));
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body,
    }
}

fn eco(state: &ServiceState, req: &Request) -> Response {
    let edit = match parse_edit(&req.body) {
        Ok(edit) => edit,
        Err(e) => return Response::error(400, &e),
    };
    match state.apply(&edit) {
        Ok(report) => Response::json(render_delta_report(&report)),
        Err(e @ (EcoError::InvalidEdit { .. } | EcoError::Netlist(_) | EcoError::Place(_))) => {
            Response::error(400, &e.to_string())
        }
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// Routes one request. Pure with respect to the connection: all I/O
/// stays in the caller, which keeps every endpoint unit-testable without
/// sockets.
#[must_use]
pub fn route(state: &ServiceState, req: &Request) -> Response {
    svt_obs::registry().counter("serve.requests").incr();
    match (
        req.method.as_str(),
        req.path.split('?').next().unwrap_or(""),
    ) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/snapshot.json") => Response::json(svt_obs::registry().snapshot().to_json()),
        ("GET", "/timeline.json") => Response::json(svt_obs::chrome::render_chrome_trace(
            &svt_obs::timeline::snapshot_all(),
        )),
        ("POST", "/eco") => {
            let _span = svt_obs::span("serve.eco");
            eco(state, req)
        }
        (_, "/healthz" | "/metrics" | "/snapshot.json" | "/timeline.json" | "/eco") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// A running daemon: the bound address plus the accept-loop thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread. Connections are served
    /// sequentially — the session is a single shared resource and the
    /// endpoints are all sub-second, so a one-lane loop keeps responses
    /// deterministic under concurrent scrapes and edits.
    ///
    /// # Errors
    ///
    /// Returns a message when the bind fails.
    pub fn spawn(addr: &str, state: ServiceState) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let state = Arc::new(state);
        let stop = Arc::new(AtomicBool::new(false));
        let loop_state = Arc::clone(&state);
        let loop_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("svtd-accept".into())
            .spawn(move || accept_loop(&listener, &loop_state, &loop_stop))
            .map_err(|e| format!("spawn accept loop: {e}"))?;
        Ok(Server {
            addr: local,
            state,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process differential checks.
    #[must_use]
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Blocks until the accept loop exits (it only exits on
    /// [`Server::shutdown`] from another thread).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, state: &ServiceState, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let response = match read_request(&mut stream) {
            Ok(req) => route(state, &req),
            Err(e) => {
                svt_obs::registry().counter("serve.bad_requests").incr();
                Response::error(400, &e)
            }
        };
        if write_response(&mut stream, &response).is_err() {
            svt_obs::registry().counter("serve.write_errors").incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_bodies_parse_into_each_typed_variant() {
        assert_eq!(
            parse_edit("{\"type\":\"resize_cell\",\"instance\":\"g1\",\"new_cell\":\"INVX2\"}")
                .unwrap(),
            EcoEdit::ResizeCell {
                instance: "g1".into(),
                new_cell: "INVX2".into()
            }
        );
        assert_eq!(
            parse_edit("{\"type\":\"swap_cell\",\"instance\":\"g1\",\"new_cell\":\"NAND2X2\"}")
                .unwrap(),
            EcoEdit::SwapCell {
                instance: "g1".into(),
                new_cell: "NAND2X2".into()
            }
        );
        assert_eq!(
            parse_edit("{\"type\":\"adjust_spacing\",\"instance\":\"g1\",\"dx_nm\":-120.5}")
                .unwrap(),
            EcoEdit::AdjustSpacing {
                instance: "g1".into(),
                dx_nm: -120.5
            }
        );
        assert_eq!(
            parse_edit("{\"type\":\"move_instance\",\"instance\":\"g1\",\"row\":2,\"x_nm\":940.0}")
                .unwrap(),
            EcoEdit::MoveInstance {
                instance: "g1".into(),
                row: 2,
                x_nm: 940.0
            }
        );
    }

    #[test]
    fn malformed_edits_name_the_offending_field() {
        assert!(parse_edit("not json").unwrap_err().contains("not JSON"));
        assert!(parse_edit("{\"instance\":\"g1\"}")
            .unwrap_err()
            .contains("`type`"));
        assert!(parse_edit("{\"type\":\"resize_cell\",\"instance\":\"g1\"}")
            .unwrap_err()
            .contains("`new_cell`"));
        assert!(parse_edit(
            "{\"type\":\"move_instance\",\"instance\":\"g1\",\"row\":-1,\"x_nm\":0}"
        )
        .unwrap_err()
        .contains("`row`"));
        assert!(parse_edit("{\"type\":\"delete_all\"}")
            .unwrap_err()
            .contains("unknown edit type"));
    }

    #[test]
    fn design_specs_accept_builtin_and_paper_testcases_only() {
        assert_eq!(DesignSpec::parse("builtin").unwrap(), DesignSpec::Builtin);
        assert_eq!(
            DesignSpec::parse("c432").unwrap(),
            DesignSpec::Iscas("c432".into())
        );
        assert!(DesignSpec::parse("c17").is_err());
    }

    #[test]
    fn floats_render_shortest_round_trip_and_nonfinite_degrade_to_null() {
        for x in [0.1 + 0.2, 1.0e-7, -0.0, 12345.678901234567] {
            let rendered = fmt_f64(x);
            let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "round-trip of {rendered}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
